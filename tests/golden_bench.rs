//! Golden-file regression test for the perfsuite report schema: the
//! normalized form of a smoke-scale suite run — every wall time and
//! cache counter zeroed, every deterministic field (digests, cycle
//! counts, point counts) kept — is pinned byte for byte.
//!
//! This locks three things at once: the report's structure (key order,
//! bench names, groups), the determinism of every `deterministic` field
//! at smoke scale, and the agreement between `perfsuite::normalize` and
//! the golden produced by `benchcheck --normalize`. If a deliberate
//! change moves these bytes, regenerate:
//!
//! ```text
//! cargo run --release --bin repro -- --bench-out /tmp/bench.json --bench-smoke
//! cargo run --release --bin benchcheck -- --normalize /tmp/bench.json \
//!   > tests/golden/bench_schema.json
//! ```

use memcomm_bench::perfsuite;

#[test]
fn normalized_smoke_suite_matches_the_golden_file() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/bench_schema.json"
    ))
    .expect("golden file present");

    let doc = perfsuite::run(&perfsuite::PerfOptions::smoke()).expect("smoke suite runs");
    perfsuite::validate(&doc).expect("raw report conforms to the schema");

    let normalized = perfsuite::normalize(&doc);
    perfsuite::validate(&normalized).expect("normalized report still conforms");
    assert_eq!(
        normalized.render(),
        golden,
        "normalized smoke perfsuite output drifted from tests/golden/bench_schema.json \
         (see the module docs for the regeneration commands)"
    );
}

#[test]
fn golden_file_itself_validates() {
    // The golden is a full report in its own right — benchcheck must keep
    // accepting it, so CI can diff `benchcheck --normalize` output against
    // it without a schema escape hatch.
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/bench_schema.json"
    ))
    .expect("golden file present");
    let doc = memcomm_util::json::Json::parse(&golden).expect("golden parses");
    perfsuite::validate(&doc).expect("golden conforms to the perfsuite schema");
}
