//! Property-based integration tests over the whole stack.

use memcomm::commops::{run_exchange, ExchangeConfig, Style};
use memcomm::kernels::distribution::Distribution;
use memcomm::kernels::schedule::{classify, redistribution};
use memcomm::machines::{microbench, Machine};
use memcomm::model::AccessPattern;
use memcomm_util::check::forall;
use memcomm_util::rng::Rng;

fn random_pattern(rng: &mut Rng) -> AccessPattern {
    match rng.range_u32(0, 3) {
        0 => AccessPattern::Contiguous,
        1 => AccessPattern::strided(rng.range_u32(2, 200)).unwrap(),
        _ => AccessPattern::Indexed,
    }
}

/// Any pattern pair, any style: the exchange terminates, delivers correct
/// data, and its rate is positive and bounded by the wire.
#[test]
fn exchanges_always_verify_and_stay_physical() {
    forall("exchanges_always_verify_and_stay_physical", 12, |rng| {
        let x = random_pattern(rng);
        let y = random_pattern(rng);
        let style = if rng.bool() {
            Style::Chained
        } else {
            Style::BufferPacking
        };
        let words = rng.range_u64(64, 1024);
        let machine = Machine::t3d();
        let cfg = ExchangeConfig {
            words,
            ..ExchangeConfig::default()
        };
        let r = run_exchange(&machine, x, y, style, &cfg).expect("simulates");
        assert!(r.verified);
        let rate = r.per_node(machine.clock()).as_mbps();
        assert!(rate > 0.0);
        // One direction's payload can never beat the congested wire's
        // data-only bandwidth.
        assert!(rate < 80.0, "rate {rate} exceeds the congested wire");
    });
}

/// Larger strides are never *dramatically* faster. (They can be somewhat
/// faster: a stride whose line deltas alternate defeats the memory
/// controller's posted-write pipelining while a larger uniform stride keeps
/// it — the same kind of wiggle the paper's Figure 4 curves show.)
#[test]
fn stride_rates_do_not_improve_with_distance() {
    forall("stride_rates_do_not_improve_with_distance", 24, |rng| {
        let s1 = rng.range_u32(2, 32);
        let mult = rng.range_u32(2, 4);
        let machine = Machine::t3d();
        let s2 = s1 * mult;
        let r = |s: u32| {
            let t = memcomm::model::BasicTransfer::copy(
                AccessPattern::Contiguous,
                AccessPattern::strided(s).unwrap(),
            );
            microbench::measure_rate(&machine, t, 2048)
                .expect("simulates")
                .expect("T3D copies any pattern")
                .as_mbps()
        };
        assert!(r(s2) <= r(s1) * 1.6, "stride {s2} beat stride {s1}");
    });
}

/// Redistribution schedules conserve elements and produce classifiable
/// patterns for every (from, to) distribution pair.
#[test]
fn redistributions_conserve_and_classify() {
    forall("redistributions_conserve_and_classify", 64, |rng| {
        let n_blocks = rng.range_u64(2, 8);
        let p = rng.range_u64(2, 6);
        let from_cyclic = rng.bool();
        let block = rng.range_u32(1, 5);
        let n = n_blocks * p * u64::from(block);
        let from = if from_cyclic {
            Distribution::Cyclic
        } else {
            Distribution::Block
        };
        let to = Distribution::BlockCyclic(block);
        let specs = redistribution(n, p, from, to);
        let moved: usize = specs.iter().map(|t| t.len()).sum();
        let kept = (0..n)
            .filter(|&i| from.owner(i, n, p) == to.owner(i, n, p))
            .count();
        assert_eq!(moved + kept, n as usize);
        for spec in &specs {
            // Classification must describe the actual index lists.
            let (x, y) = spec.patterns();
            match x {
                AccessPattern::Contiguous if spec.len() > 1 => {
                    assert!(spec.src_locals.windows(2).all(|w| w[1] == w[0] + 1));
                }
                AccessPattern::Strided(s) => {
                    assert!(spec
                        .src_locals
                        .windows(2)
                        .all(|w| w[1] - w[0] == u64::from(s)));
                }
                _ => {}
            }
            let _ = y;
        }
    });
}

/// A resilient transfer is a pure function of its fault plan: replaying
/// the same seeded plan gives the same full `Result` — identical timing,
/// retransmission count and degradation, or the identical typed error.
#[test]
fn resilient_transfers_replay_identically() {
    use memcomm::commops::{run_resilient_transfer, ProtocolConfig};
    use memcomm::memsim::fault::{FaultConfig, FaultPlan};
    forall("resilient_transfers_replay_identically", 12, |rng| {
        let machine = if rng.bool() {
            Machine::t3d()
        } else {
            Machine::paragon()
        };
        let x = random_pattern(rng);
        let y = random_pattern(rng);
        let style = if rng.bool() {
            Style::Chained
        } else {
            Style::BufferPacking
        };
        let plan = FaultPlan::new(FaultConfig {
            seed: rng.range_u64(0, u64::MAX - 1),
            rate: f64::from(rng.range_u32(0, 30)) / 1000.0,
            outage_rate: f64::from(rng.range_u32(0, 10)) / 1000.0,
            ..FaultConfig::default()
        });
        let cfg = ProtocolConfig {
            words: rng.range_u64(64, 512),
            ..ProtocolConfig::default()
        };
        let a = run_resilient_transfer(&machine, x, y, style, plan, &cfg);
        let b = run_resilient_transfer(&machine, x, y, style, plan, &cfg);
        assert_eq!(a, b, "same plan, same outcome");
        if let Ok(report) = a {
            assert!(report.verified, "recovered transfers deliver correct data");
        }
    });
}

/// `classify` round-trips constructed sequences.
#[test]
fn classify_identifies_constructed_sequences() {
    forall("classify_identifies_constructed_sequences", 256, |rng| {
        let start = rng.range_u64(0, 1000);
        let stride = rng.range_u32(1, 500);
        let len = rng.range_usize(2, 40);
        let seq: Vec<u64> = (0..len as u64)
            .map(|i| start + i * u64::from(stride))
            .collect();
        let got = classify(&seq);
        if stride == 1 {
            assert_eq!(got, AccessPattern::Contiguous);
        } else {
            assert_eq!(got, AccessPattern::Strided(stride));
        }
    });
}
