//! Property-based integration tests over the whole stack.

use memcomm::commops::{run_exchange, ExchangeConfig, Style};
use memcomm::kernels::distribution::Distribution;
use memcomm::kernels::schedule::{classify, redistribution};
use memcomm::machines::{microbench, Machine};
use memcomm::model::AccessPattern;
use proptest::prelude::*;

fn pattern_strategy() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::Contiguous),
        (2u32..200).prop_map(|s| AccessPattern::strided(s).unwrap()),
        Just(AccessPattern::Indexed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any pattern pair, any style: the exchange terminates, delivers
    /// correct data, and its rate is positive and bounded by the wire.
    #[test]
    fn exchanges_always_verify_and_stay_physical(
        x in pattern_strategy(),
        y in pattern_strategy(),
        chained in proptest::bool::ANY,
        words in 64u64..1024,
    ) {
        let machine = Machine::t3d();
        let style = if chained { Style::Chained } else { Style::BufferPacking };
        let cfg = ExchangeConfig { words, ..ExchangeConfig::default() };
        let r = run_exchange(&machine, x, y, style, &cfg);
        prop_assert!(r.verified);
        let rate = r.per_node(machine.clock()).as_mbps();
        prop_assert!(rate > 0.0);
        // One direction's payload can never beat the congested wire's
        // data-only bandwidth.
        prop_assert!(rate < 80.0, "rate {rate} exceeds the congested wire");
    }

    /// Larger strides are never *dramatically* faster. (They can be
    /// somewhat faster: a stride whose line deltas alternate defeats the
    /// memory controller's posted-write pipelining while a larger uniform
    /// stride keeps it — the same kind of wiggle the paper's Figure 4
    /// curves show.)
    #[test]
    fn stride_rates_do_not_improve_with_distance(s1 in 2u32..32, mult in 2u32..4) {
        let machine = Machine::t3d();
        let s2 = s1 * mult;
        let r = |s: u32| {
            let t = memcomm::model::BasicTransfer::copy(
                AccessPattern::Contiguous,
                AccessPattern::strided(s).unwrap(),
            );
            microbench::measure_rate(&machine, t, 2048).unwrap().as_mbps()
        };
        prop_assert!(r(s2) <= r(s1) * 1.6, "stride {s2} beat stride {s1}");
    }

    /// Redistribution schedules conserve elements and produce classifiable
    /// patterns for every (from, to) distribution pair.
    #[test]
    fn redistributions_conserve_and_classify(
        n_blocks in 2u64..8,
        p in 2u64..6,
        from_cyclic in proptest::bool::ANY,
        block in 1u32..5,
    ) {
        let n = n_blocks * p * u64::from(block);
        let from = if from_cyclic { Distribution::Cyclic } else { Distribution::Block };
        let to = Distribution::BlockCyclic(block);
        let specs = redistribution(n, p, from, to);
        let moved: usize = specs.iter().map(|t| t.len()).sum();
        let kept = (0..n)
            .filter(|&i| from.owner(i, n, p) == to.owner(i, n, p))
            .count();
        prop_assert_eq!(moved + kept, n as usize);
        for spec in &specs {
            // Classification must describe the actual index lists.
            let (x, y) = spec.patterns();
            match x {
                AccessPattern::Contiguous if spec.len() > 1 => {
                    prop_assert!(spec.src_locals.windows(2).all(|w| w[1] == w[0] + 1));
                }
                AccessPattern::Strided(s) => {
                    prop_assert!(spec
                        .src_locals
                        .windows(2)
                        .all(|w| w[1] - w[0] == u64::from(s)));
                }
                _ => {}
            }
            let _ = y;
        }
    }

    /// `classify` round-trips constructed sequences.
    #[test]
    fn classify_identifies_constructed_sequences(
        start in 0u64..1000,
        stride in 1u32..500,
        len in 2usize..40,
    ) {
        let seq: Vec<u64> = (0..len as u64).map(|i| start + i * u64::from(stride)).collect();
        let got = classify(&seq);
        if stride == 1 {
            prop_assert_eq!(got, AccessPattern::Contiguous);
        } else {
            prop_assert_eq!(got, AccessPattern::Strided(stride));
        }
    }
}
