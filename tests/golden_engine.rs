//! Golden-file regression test for the discrete-event network engine: the
//! Table 6 kernels are pinned row by row at several scales — congestion
//! factors, cycle counts, flit-hops, window counts, and the event-stream
//! digest — from the 8-node smoke torus up to a 256-node (8×8×4) run.
//!
//! The engine is deterministic and its results are independent of both the
//! worker count and the shard count (the runs here deliberately use the
//! process-wide defaults for both), so integers and digests must match
//! exactly; floats only absorb the decimal round-trip of the golden file.
//! If a deliberate engine change moves these numbers, regenerate:
//!
//! ```text
//! cargo test --release --test golden_engine regenerate -- --ignored --nocapture \
//!   > tests/golden/engine_table6.json  # then trim the test-harness lines
//! ```
//!
//! (or copy the JSON block the `regenerate` test prints into
//! `tests/golden/engine_table6.json`).

use memcomm_bench::experiments::{engine_table6, EngineSettings};
use memcomm_util::json::Json;

const REL_TOL: f64 = 1e-9;

fn f64_field(row: &Json, key: &str) -> f64 {
    row.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("golden row missing {key}"))
}

fn entry_settings(entry: &Json) -> EngineSettings {
    EngineSettings {
        nodes: f64_field(entry, "nodes") as usize,
        transpose_n: f64_field(entry, "transpose_n") as u64,
        sor_n: f64_field(entry, "sor_n") as u64,
        // Defaults on purpose: the golden digests must not depend on the
        // worker or shard count, so every regeneration environment — any
        // core count — must reproduce them.
        jobs: 0,
        shards: 0,
    }
}

#[test]
fn engine_table6_matches_the_golden_file() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/engine_table6.json"
    ))
    .expect("golden file present");
    let golden = Json::parse(&text).expect("golden file parses");
    let entries = golden
        .get("entries")
        .and_then(Json::as_arr)
        .expect("entries");
    assert!(!entries.is_empty(), "golden file has at least one entry");

    for entry in entries {
        let settings = entry_settings(entry);
        let scale = format!("{} nodes", settings.nodes);
        let rows = engine_table6(&settings).expect("engine reproduces");

        let golden_rows = entry.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(
            golden_rows.len(),
            rows.len(),
            "{scale}: engine kernel × machine set changed"
        );
        for (want, got) in golden_rows.iter().zip(&rows) {
            let kernel = want.get("kernel").and_then(Json::as_str).expect("kernel");
            let machine = want.get("machine").and_then(Json::as_str).expect("machine");
            assert_eq!(got.kernel, kernel);
            assert_eq!(got.machine, machine);
            let ctx = format!("{kernel} on {machine} at {scale}");

            for (key, have) in [
                ("engine_congestion", got.engine_congestion),
                ("analytic_congestion", got.analytic_congestion),
                ("engine_chained", got.engine_chained),
                ("analytic_chained", got.analytic_chained),
            ] {
                let expect = f64_field(want, key);
                assert!(
                    (have - expect).abs() <= REL_TOL * expect.abs().max(1.0),
                    "{ctx}: {key} {have} vs golden {expect}"
                );
            }
            assert_eq!(
                got.cycles,
                f64_field(want, "cycles") as u64,
                "{ctx}: cycles"
            );
            assert_eq!(
                got.flit_hops,
                f64_field(want, "flit_hops") as u64,
                "{ctx}: flit_hops"
            );
            assert_eq!(
                got.windows,
                f64_field(want, "windows") as u64,
                "{ctx}: windows"
            );
            let digest = want.get("digest").and_then(Json::as_str).expect("digest");
            assert_eq!(got.digest, digest, "{ctx}: event-stream digest drifted");
        }
    }
}

/// Prints a fresh golden file body for the pinned scales. Ignored by
/// default; run explicitly when a deliberate engine change moves the
/// numbers (see the module docs).
#[test]
#[ignore]
fn regenerate() {
    let scales: &[(usize, u64, u64)] = &[(8, 256, 256), (256, 512, 256)];
    let mut out = String::from("{\n  \"entries\": [\n");
    for (i, &(nodes, transpose_n, sor_n)) in scales.iter().enumerate() {
        let settings = EngineSettings {
            nodes,
            transpose_n,
            sor_n,
            jobs: 0,
            shards: 0,
        };
        let rows = engine_table6(&settings).expect("engine runs");
        out.push_str(&format!(
            "    {{\n      \"nodes\": {nodes},\n      \"transpose_n\": {transpose_n},\n      \"sor_n\": {sor_n},\n      \"rows\": [\n"
        ));
        for (j, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "        {{\n",
                    "          \"kernel\": \"{}\",\n",
                    "          \"machine\": \"{}\",\n",
                    "          \"engine_congestion\": {},\n",
                    "          \"analytic_congestion\": {},\n",
                    "          \"engine_chained\": {},\n",
                    "          \"analytic_chained\": {},\n",
                    "          \"cycles\": {},\n",
                    "          \"flit_hops\": {},\n",
                    "          \"windows\": {},\n",
                    "          \"digest\": \"{}\"\n",
                    "        }}{}\n"
                ),
                r.kernel,
                r.machine,
                r.engine_congestion,
                r.analytic_congestion,
                r.engine_chained,
                r.analytic_chained,
                r.cycles,
                r.flit_hops,
                r.windows,
                r.digest,
                if j + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if i + 1 < scales.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    println!("{out}");
}
