//! Golden-file regression test for the discrete-event network engine: an
//! 8-node engine reproduction of the Table 6 kernels is pinned row by row
//! — congestion factors, cycle counts, flit-hops, window counts, and the
//! event-stream digest.
//!
//! The engine is deterministic, so integers and digests must match
//! exactly; floats only absorb the decimal round-trip of the golden file.
//! If a deliberate engine change moves these numbers, regenerate:
//!
//! ```text
//! # rebuild tests/golden/engine_table6.json from the rows of
//! cargo run --release --bin repro -- --engine event --nodes 8 \
//!   --engine-transpose-n 256 --engine-sor-n 256 --calibration \
//!   --jobs 1 --json out.json
//! ```

use memcomm_bench::experiments::{engine_table6, EngineSettings};
use memcomm_util::json::Json;

const REL_TOL: f64 = 1e-9;

fn f64_field(row: &Json, key: &str) -> f64 {
    row.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("golden row missing {key}"))
}

#[test]
fn engine_table6_matches_the_golden_file() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/engine_table6.json"
    ))
    .expect("golden file present");
    let golden = Json::parse(&text).expect("golden file parses");

    let settings = EngineSettings {
        nodes: f64_field(&golden, "nodes") as usize,
        transpose_n: f64_field(&golden, "transpose_n") as u64,
        sor_n: f64_field(&golden, "sor_n") as u64,
        jobs: 1,
    };
    let rows = engine_table6(&settings).expect("engine reproduces");

    let golden_rows = golden.get("rows").and_then(Json::as_arr).expect("rows");
    assert_eq!(
        golden_rows.len(),
        rows.len(),
        "engine kernel × machine set changed"
    );
    for (want, got) in golden_rows.iter().zip(&rows) {
        let kernel = want.get("kernel").and_then(Json::as_str).expect("kernel");
        let machine = want.get("machine").and_then(Json::as_str).expect("machine");
        assert_eq!(got.kernel, kernel);
        assert_eq!(got.machine, machine);
        let ctx = format!("{kernel} on {machine}");

        for (key, have) in [
            ("engine_congestion", got.engine_congestion),
            ("analytic_congestion", got.analytic_congestion),
            ("engine_chained", got.engine_chained),
            ("analytic_chained", got.analytic_chained),
        ] {
            let expect = f64_field(want, key);
            assert!(
                (have - expect).abs() <= REL_TOL * expect.abs().max(1.0),
                "{ctx}: {key} {have} vs golden {expect}"
            );
        }
        assert_eq!(
            got.cycles,
            f64_field(want, "cycles") as u64,
            "{ctx}: cycles"
        );
        assert_eq!(
            got.flit_hops,
            f64_field(want, "flit_hops") as u64,
            "{ctx}: flit_hops"
        );
        assert_eq!(
            got.windows,
            f64_field(want, "windows") as u64,
            "{ctx}: windows"
        );
        let digest = want.get("digest").and_then(Json::as_str).expect("digest");
        assert_eq!(got.digest, digest, "{ctx}: event-stream digest drifted");
    }
}
