//! Golden-file regression test for the adversarial-resilience scenario:
//! the seeded 256-node incast under the default fault storm (2% drops +
//! transient link-outage windows, retry budget 4 with exponential
//! backoff) is pinned byte for byte — the full resilience ledger, the
//! event digest, and the per-class p50/p99/p999 latency quantiles.
//!
//! The scenario is deterministic and independent of the worker and shard
//! counts; the test proves that too by re-running at pinned fan-outs. If
//! a deliberate engine or generator change moves these bytes, regenerate:
//!
//! ```text
//! cargo run --release --bin repro -- --adversary incast --nodes 256 \
//!   --json tests/golden/adversary.json
//! ```

use memcomm_bench::adversary::{run_scenario, scenario_json, ScenarioOptions};
use memcomm_netsim::AdversaryKind;

fn golden_options() -> ScenarioOptions {
    ScenarioOptions {
        nodes: Some(256),
        ..ScenarioOptions::new(AdversaryKind::Incast)
    }
}

#[test]
fn incast_storm_scenario_matches_the_golden_file() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/adversary.json"
    ))
    .expect("golden file present");

    let opts = golden_options();
    let scenario = run_scenario(&opts).expect("scenario runs");
    let out = &scenario.run.outcome;
    assert!(out.dropped > 0, "the storm must actually drop words");
    assert_eq!(
        out.dropped,
        out.retried + out.abandoned,
        "every drop is retransmitted or accounted as abandoned"
    );
    assert_eq!(
        scenario_json(&opts, &scenario).render(),
        golden,
        "adversary scenario drifted from tests/golden/adversary.json \
         (see the module docs for the regeneration command)"
    );
}

#[test]
fn golden_scenario_is_partition_invariant() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/adversary.json"
    ))
    .expect("golden file present");

    for (jobs, shards) in [(1, 1), (4, 0)] {
        let opts = ScenarioOptions {
            jobs,
            shards,
            ..golden_options()
        };
        let scenario = run_scenario(&opts).expect("scenario runs");
        assert_eq!(
            scenario_json(&opts, &scenario).render(),
            golden,
            "jobs {jobs} x shards {shards} changed the golden scenario bytes"
        );
    }
}
