//! Differential test: the discrete-event network engine against the
//! closed-form congestion model, on every Table 6 kernel × machine.
//!
//! The engine executes each kernel's communication rounds word by word on
//! the full 64-node topology; the analytic path reduces the same rounds to
//! a congestion factor by flow analysis. Neither is derived from the
//! other, so agreement is evidence both are right. The tolerance is the
//! paper's own: for each kernel, Table 6 records how far the paper's model
//! was from the machine (model ÷ measured chained throughput); the engine
//! is held to that band around the analytic prediction, with a small
//! margin for the engine's pipeline-fill accounting.

use memcomm::kernels::mesh::PartitionedMesh;
use memcomm::kernels::netrun::{self, EngineOptions, Table6Kernel};
use memcomm::kernels::{FemKernel, SorKernel, TransposeKernel};
use memcomm::machines::{reference, Machine};

/// Margin on top of the paper's own band: the engine subtracts an
/// estimated pipeline fill before normalizing, which wobbles the factor a
/// few percent at paper-size instances.
const MARGIN: f64 = 1.10;

fn paper_band(kernel: &str) -> f64 {
    let row = reference::table6()
        .into_iter()
        .find(|r| r.kernel == kernel)
        .unwrap_or_else(|| panic!("{kernel} missing from the paper's Table 6"));
    let ratio = row.model_chained.as_mbps() / row.measured_chained.as_mbps();
    ratio.max(1.0 / ratio) * MARGIN
}

#[test]
fn engine_agrees_with_the_analytic_model_on_table6() {
    let kernels = || {
        vec![
            Table6Kernel::Transpose(TransposeKernel {
                n: 1024,
                words_per_element: 2,
            }),
            Table6Kernel::Fem(FemKernel {
                mesh: PartitionedMesh::synthetic_valley([48, 48, 48], [4, 4, 4], 1995),
            }),
            Table6Kernel::Sor(SorKernel { n: 256 }),
        ]
    };

    println!(
        "kernel     machine         engine-c  analytic-c  engine-MB/s  analytic-MB/s  ratio  band"
    );
    for machine in [Machine::t3d(), Machine::paragon()] {
        let topo = netrun::engine_topology(&machine, Some(64)).expect("64 nodes scale");
        assert_eq!(topo.len(), 64);
        let p = topo.len() as u64;
        for kernel in kernels() {
            let rounds = kernel.rounds(&topo).expect("kernel decomposes");
            let analytic = kernel
                .analytic_congestion(&machine, &topo)
                .expect("analytic factor");
            let opts = EngineOptions {
                nodes: Some(64),
                jobs: 0,
                shards: 0,
                record_events: false,
                sample_every: 0,
                reference_scheduler: false,
            };
            let run = netrun::run_rounds(&machine, &topo, &rounds, &opts).expect("engine runs");

            // Words must be conserved: the engine delivered exactly the
            // schedule's payload.
            let scheduled: u64 = rounds
                .iter()
                .flatten()
                .filter(|f| f.src != f.dst)
                .map(|f| f.bytes.div_ceil(8))
                .sum();
            assert_eq!(run.words, scheduled, "{}: words lost", kernel.name());

            let engine_m = kernel
                .measure_at(
                    &machine,
                    memcomm::kernels::apps::CommMethod::Chained,
                    p,
                    run.factor,
                )
                .expect("engine-priced exchange");
            let analytic_m = kernel
                .measure_at(
                    &machine,
                    memcomm::kernels::apps::CommMethod::Chained,
                    p,
                    analytic,
                )
                .expect("analytic-priced exchange");
            assert!(engine_m.verified && analytic_m.verified);

            let ratio = engine_m.per_node.as_mbps() / analytic_m.per_node.as_mbps();
            let band = paper_band(kernel.name());
            println!(
                "{:10} {:15} {:8.2}  {:10.2}  {:11.1}  {:13.1}  {:5.2}  {:4.2}",
                kernel.name(),
                machine.name,
                run.factor,
                analytic,
                engine_m.per_node.as_mbps(),
                analytic_m.per_node.as_mbps(),
                ratio,
                band,
            );
            assert!(
                (1.0 / band..=band).contains(&ratio),
                "{} on {}: engine/analytic throughput ratio {ratio:.3} outside the \
                 paper's accuracy band {:.3}..={band:.3} (engine factor {:.2}, analytic {:.2})",
                kernel.name(),
                machine.name,
                1.0 / band,
                run.factor,
                analytic,
            );
            // The factors themselves stay in the same band (a stronger
            // statement than throughput, which compresses factor error).
            let f_ratio = run.factor / analytic;
            assert!(
                (1.0 / band..=band).contains(&f_ratio),
                "{} on {}: factor ratio {f_ratio:.3} outside band {band:.3}",
                kernel.name(),
                machine.name,
            );
        }
    }
}

/// The engine honours the paper's machine asymmetry: the T3D's shared
/// ports floor its congestion at 2, the Paragon's private ports let
/// nearest-neighbour kernels reach factor 1.
#[test]
fn port_sharing_shapes_the_emergent_congestion() {
    let t3d = Machine::t3d();
    let paragon = Machine::paragon();
    let sor = Table6Kernel::Sor(SorKernel { n: 256 });
    let opts = EngineOptions {
        nodes: Some(64),
        jobs: 0,
        shards: 0,
        record_events: false,
        sample_every: 0,
        reference_scheduler: false,
    };

    let t3d_topo = netrun::engine_topology(&t3d, Some(64)).unwrap();
    let t3d_run =
        netrun::run_rounds(&t3d, &t3d_topo, &sor.rounds(&t3d_topo).unwrap(), &opts).unwrap();
    assert!(
        t3d_run.factor >= 1.8,
        "shared ports must serialize the halo shift: {}",
        t3d_run.factor
    );

    let par_topo = netrun::engine_topology(&paragon, Some(64)).unwrap();
    let par_run =
        netrun::run_rounds(&paragon, &par_topo, &sor.rounds(&par_topo).unwrap(), &opts).unwrap();
    assert!(
        par_run.factor < 1.2,
        "private ports keep the halo shift uncongested: {}",
        par_run.factor
    );
}
