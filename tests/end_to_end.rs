//! Model-vs-simulation agreement: the paper's central claim is that the
//! copy-transfer model predicts measured end-to-end throughput. Here the
//! model is fed the *simulated* rate table and compared against the
//! co-simulated exchanges — closing the loop entirely inside this
//! repository.

use memcomm::commops::{run_exchange, ExchangeConfig, Style};
use memcomm::machines::{microbench, Machine};
use memcomm::model::RateTable;
use memcomm_bench::experiments::{bp_plan, chained_plan, parse_q};

const MICRO_WORDS: u64 = 8192;
const EXCHANGE_WORDS: u64 = 4096;

fn check_agreement(machine: &Machine, rates: &RateTable, op: &str, style: Style, tolerance: f64) {
    let (x, y) = parse_q(op);
    let expr = match style {
        Style::BufferPacking => {
            memcomm::model::buffer_packing_expr(x, y, bp_plan(machine)).expect("valid op")
        }
        Style::Chained => {
            memcomm::model::chained_expr(x, y, chained_plan(machine)).expect("valid op")
        }
    };
    let estimate = expr.estimate(rates).expect("rates cover the op").as_mbps();
    let cfg = memcomm_bench::experiments::paper_exchange_cfg(machine, EXCHANGE_WORDS);
    let run = run_exchange(machine, x, y, style, &cfg).expect("simulates");
    assert!(run.verified, "{op} moved wrong data");
    let simulated = run.per_node(machine.clock()).as_mbps();
    let ratio = simulated / estimate;
    assert!(
        (ratio - 1.0).abs() < tolerance,
        "{} {op} {style:?}: model {estimate:.1} vs simulated {simulated:.1} (ratio {ratio:.2})",
        machine.name
    );
}

#[test]
fn t3d_buffer_packing_matches_its_model() {
    let m = Machine::t3d();
    let rates = microbench::measure_table(&m, MICRO_WORDS).expect("simulates");
    // Buffer packing is the model's home turf: the reciprocal-sum rule is
    // exact for a time-shared processor.
    for op in ["1Q1", "1Q64", "64Q1", "wQw", "1Q16"] {
        check_agreement(&m, &rates, op, Style::BufferPacking, 0.20);
    }
}

#[test]
fn paragon_buffer_packing_matches_its_model() {
    let m = Machine::paragon();
    let rates = microbench::measure_table(&m, MICRO_WORDS).expect("simulates");
    for op in ["1Q1", "1Q64", "wQw"] {
        check_agreement(&m, &rates, op, Style::BufferPacking, 0.25);
    }
}

#[test]
fn chained_contiguous_matches_its_model() {
    // For contiguous chained transfers no memory contention couples sender
    // and receiver, so the min rule holds well.
    let m = Machine::t3d();
    let rates = microbench::measure_table(&m, MICRO_WORDS).expect("simulates");
    check_agreement(&m, &rates, "1Q1", Style::Chained, 0.20);
}

#[test]
fn chained_noncontiguous_runs_below_the_min_rule_as_the_paper_measured() {
    // The paper's own Figure 7 shows measured chained strided transfers
    // below the model's min-rule estimate (Table 5: model 38 vs measured
    // 27.4) because send and receive share each node's memory system. Our
    // simulation reproduces that one-sided gap.
    let m = Machine::t3d();
    let rates = microbench::measure_table(&m, MICRO_WORDS).expect("simulates");
    let (x, y) = parse_q("64Q1");
    let est = memcomm::model::chained_expr(x, y, chained_plan(&m))
        .unwrap()
        .estimate(&rates)
        .unwrap()
        .as_mbps();
    let cfg = ExchangeConfig {
        words: EXCHANGE_WORDS,
        ..ExchangeConfig::default()
    };
    let sim = run_exchange(&m, x, y, Style::Chained, &cfg)
        .expect("simulates")
        .per_node(m.clock())
        .as_mbps();
    assert!(
        sim < est,
        "memory contention must cost something: {sim} < {est}"
    );
    assert!(
        sim > 0.5 * est,
        "but not more than the paper saw: {sim} vs {est}"
    );
}

#[test]
fn section_341_reproduces_the_worked_example_shape() {
    let t3d = Machine::t3d();
    let rates = microbench::measure_table(&t3d, MICRO_WORDS).expect("simulates");
    let s = memcomm_bench::experiments::section341(&rates).expect("simulates");
    // The paper: estimate 25.0, measured 20.0 — the estimate is higher, and
    // both land in the same band. Our absolute values run ~25% above the
    // 1995 hardware; the *relationship* must match.
    assert!(s.model_estimate > s.simulated * 0.9);
    assert!(
        s.simulated > 15.0 && s.simulated < 45.0,
        "simulated {}",
        s.simulated
    );
    assert!(
        (s.model_estimate / s.paper_estimate - 1.0).abs() < 0.45,
        "estimate {} vs paper {}",
        s.model_estimate,
        s.paper_estimate
    );
}

/// Section 3.4.1's resource constraint `(2 × |xQy|) < |0Cx|`: a symmetric
/// exchange, where every node sends and receives, must fit twice over in
/// the raw memory stream bandwidths. The simulated exchanges satisfy the
/// constraint (so the model's caps never bind on these machines, exactly
/// as in the paper, where the constraint is a sanity check rather than the
/// binding limit), and applying the caps never raises an estimate.
#[test]
fn symmetric_resource_constraints_hold() {
    use memcomm::model::{buffer_packing_expr, symmetric_exchange_caps, BasicTransfer};
    for m in [Machine::t3d(), Machine::paragon()] {
        let rates = microbench::measure_table(&m, MICRO_WORDS).expect("simulates");
        for op in ["1Q1", "1Q64", "wQw"] {
            let (x, y) = parse_q(op);
            let expr = buffer_packing_expr(x, y, bp_plan(&m)).unwrap();
            let plain = expr.clone().estimate(&rates).unwrap();
            let capped = expr
                .capped(symmetric_exchange_caps(x, y))
                .estimate(&rates)
                .unwrap();
            assert!(capped <= plain, "{op}: caps can only lower estimates");
            // The constraint itself, checked against raw stream rates.
            let store = rates.rate(BasicTransfer::store_stream(y)).unwrap();
            let load = rates.rate(BasicTransfer::load_stream(x)).unwrap();
            let cfg = memcomm_bench::experiments::paper_exchange_cfg(&m, EXCHANGE_WORDS);
            let sim = run_exchange(&m, x, y, Style::BufferPacking, &cfg)
                .expect("simulates")
                .per_node(m.clock())
                .as_mbps();
            assert!(
                2.0 * sim <= store.as_mbps() && 2.0 * sim <= load.as_mbps(),
                "{} {op}: 2x{sim:.1} violates streams ({store}, {load})",
                m.name
            );
        }
    }
}

#[test]
fn every_pattern_combination_delivers_correct_data() {
    use memcomm::model::AccessPattern as P;
    let patterns = [P::Contiguous, P::Strided(7), P::Strided(64), P::Indexed];
    for m in [Machine::t3d(), Machine::paragon()] {
        for &x in &patterns {
            for &y in &patterns {
                for style in [Style::BufferPacking, Style::Chained] {
                    let cfg = ExchangeConfig {
                        words: 512,
                        ..ExchangeConfig::default()
                    };
                    let r = run_exchange(&m, x, y, style, &cfg).expect("simulates");
                    assert!(
                        r.verified,
                        "{} {x}Q{y} {style:?} corrupted the exchanged data",
                        m.name
                    );
                }
            }
        }
    }
}
