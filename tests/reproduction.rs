//! The paper's headline results, asserted as integration tests across the
//! whole stack (DESIGN.md Section 5's success criteria).

use memcomm::commops::{run_exchange, ExchangeConfig, Style};
use memcomm::machines::calibrate::{calibration_report, mean_log_error};
use memcomm::machines::{microbench, Machine};
use memcomm::model::{AccessPattern, BasicTransfer};
use memcomm::netsim::link::measure_wire_rate;

const WORDS: u64 = 4096;

fn rate(machine: &Machine, op: &str) -> f64 {
    let t = BasicTransfer::parse(op).expect("notation");
    microbench::measure_rate(machine, t, WORDS)
        .expect("simulates")
        .unwrap_or_else(|| panic!("{} lacks {op}", machine.name))
        .as_mbps()
}

#[test]
fn local_copies_order_contiguous_strided_indexed() {
    for m in [Machine::t3d(), Machine::paragon()] {
        let c = rate(&m, "1C1");
        let s = rate(&m, "1C64").max(rate(&m, "64C1"));
        let w = rate(&m, "wC1").min(rate(&m, "1Cw"));
        assert!(c > s, "{}: contiguous {c} > strided {s}", m.name);
        assert!(s > w * 0.85, "{}: strided {s} vs indexed {w}", m.name);
    }
}

#[test]
fn stride_preference_flips_between_machines() {
    // T3D: strided stores beat strided loads (write-back queue).
    let t3d = Machine::t3d();
    assert!(rate(&t3d, "1C64") > rate(&t3d, "64C1"));
    // Paragon: strided loads beat strided stores (pipelined loads).
    let paragon = Machine::paragon();
    assert!(rate(&paragon, "64C1") > rate(&paragon, "1C64"));
}

#[test]
fn figure4_crossover_shows_in_the_stride_sweep() {
    let strides = [2u32, 8, 32, 128];
    let t3d_loads = microbench::stride_sweep(
        &Machine::t3d(),
        &strides,
        WORDS,
        microbench::StrideSide::Loads,
    )
    .expect("simulates");
    let t3d_stores = microbench::stride_sweep(
        &Machine::t3d(),
        &strides,
        WORDS,
        microbench::StrideSide::Stores,
    )
    .expect("simulates");
    for ((_, l), (_, s)) in t3d_loads.iter().zip(&t3d_stores).skip(1) {
        assert!(s > l, "T3D strided stores win at every large stride");
    }
}

#[test]
fn address_data_pairs_cost_roughly_half_the_bandwidth() {
    for m in [Machine::t3d(), Machine::paragon()] {
        let nd = measure_wire_rate(m.link(1.0), WORDS, false).throughput(m.clock());
        let nadp = measure_wire_rate(m.link(1.0), WORDS, true).throughput(m.clock());
        let ratio = nd.as_mbps() / nadp.as_mbps();
        assert!(
            (1.8..2.6).contains(&ratio),
            "{}: Nd/Nadp ratio {ratio}",
            m.name
        );
    }
}

#[test]
fn congestion_divides_network_bandwidth() {
    let m = Machine::t3d();
    let c1 = measure_wire_rate(m.link(1.0), WORDS, false).cycles as f64;
    let c2 = measure_wire_rate(m.link(2.0), WORDS, false).cycles as f64;
    let c4 = measure_wire_rate(m.link(4.0), WORDS, false).cycles as f64;
    assert!((c2 / c1 - 2.0).abs() < 0.05);
    assert!((c4 / c1 - 4.0).abs() < 0.05);
}

#[test]
fn chained_beats_buffer_packing_by_the_papers_factors() {
    // "these tests confirm that chained communication results in 40-60%
    // higher performance for access patterns other than contiguous" — allow
    // a generous band around that.
    let t3d = Machine::t3d();
    let cfg = ExchangeConfig {
        words: WORDS,
        ..ExchangeConfig::default()
    };
    for op in [("1Q64", 1.1, 2.4), ("64Q1", 1.1, 2.4), ("wQw", 1.2, 2.4)] {
        let (name, lo, hi) = op;
        let (x, y) = memcomm_bench::experiments::parse_q(name);
        let bp = run_exchange(&t3d, x, y, Style::BufferPacking, &cfg).expect("simulates");
        let ch = run_exchange(&t3d, x, y, Style::Chained, &cfg).expect("simulates");
        assert!(bp.verified && ch.verified);
        let factor = ch.per_node(t3d.clock()).as_mbps() / bp.per_node(t3d.clock()).as_mbps();
        assert!(
            (lo..hi).contains(&factor),
            "{name}: chained/bp factor {factor:.2} outside [{lo}, {hi})"
        );
    }
}

#[test]
fn contiguous_chaining_wins_big_by_skipping_copies() {
    let t3d = Machine::t3d();
    let cfg = ExchangeConfig {
        words: WORDS,
        ..ExchangeConfig::default()
    };
    let bp = run_exchange(
        &t3d,
        AccessPattern::Contiguous,
        AccessPattern::Contiguous,
        Style::BufferPacking,
        &cfg,
    )
    .expect("simulates");
    let ch = run_exchange(
        &t3d,
        AccessPattern::Contiguous,
        AccessPattern::Contiguous,
        Style::Chained,
        &cfg,
    )
    .expect("simulates");
    let factor = ch.per_node(t3d.clock()).as_mbps() / bp.per_node(t3d.clock()).as_mbps();
    // The paper predicts 70 vs 27.9 — about 2.5x.
    assert!((1.8..3.2).contains(&factor), "factor {factor:.2}");
}

#[test]
fn calibration_stays_tight() {
    for m in [Machine::t3d(), Machine::paragon()] {
        let rows = calibration_report(&m, WORDS).expect("simulates");
        let err = mean_log_error(&rows);
        assert!(
            err < 0.30,
            "{}: mean log error {err:.3} (typical deviation {:.0}%)",
            m.name,
            (err.exp() - 1.0) * 100.0
        );
    }
}

#[test]
fn paragon_dma_outruns_its_processor_send() {
    let paragon = Machine::paragon();
    assert!(rate(&paragon, "1F0") > 2.0 * rate(&paragon, "1S0"));
}

#[test]
fn t3d_deposit_engine_serves_any_pattern_paragon_does_not() {
    let t3d = Machine::t3d();
    let dw = BasicTransfer::parse("0Dw").expect("notation");
    assert!(microbench::measure_basic(&t3d, dw, 512).unwrap().is_some());
    let paragon = Machine::paragon();
    assert!(microbench::measure_basic(&paragon, dw, 512)
        .unwrap()
        .is_none());
}
