//! Scale-sweep differential tier for the sharded discrete-event engine:
//! the transpose exchange on 4×4, 8×8, 16×16, and 16×8×8 tori (16 to 1024
//! nodes), each size checked two ways:
//!
//! 1. **Accuracy**: the engine's emergent congestion factor must agree
//!    with the closed-form [`scheduled_congestion`] analysis of the same
//!    rounds, within the paper's own Table 6 accuracy band for the
//!    transpose (model ÷ measured chained throughput, plus a small margin
//!    for the engine's pipeline-fill accounting).
//! 2. **Determinism**: the FNV event-stream digest — and every other
//!    outcome field — must be byte-identical across worker counts
//!    `jobs ∈ {1, 2, 8}` and across shard counts `{1, 3, 16, auto}`.
//!    The stage-major window fold makes partitioning unobservable.
//!
//! The kilo-node case runs a truncated prefix of the XOR schedule with a
//! substantial payload per pair: enough words that steady-state contention
//! dominates the pipeline fill (tiny patches collapse the emergent factor
//! to 1), few enough rounds that the sweep stays inside the CI wall-clock
//! budget. A successful run is also a watchdog-clean drain: the engine
//! errors out if any round stalls.

use memcomm::kernels::netrun::{self, EngineOptions};
use memcomm::machines::{reference, Machine};
use memcomm::netsim::congestion::scheduled_congestion;
use memcomm::netsim::topology::Topology;
use memcomm::netsim::traffic::aapc_xor_schedule;

/// Margin on top of the paper's Table 6 transpose band (same rationale as
/// `tests/engine_vs_model.rs`: the fill subtraction wobbles the factor a
/// few percent, more at small instances).
const MARGIN: f64 = 1.10;

fn transpose_band() -> f64 {
    let row = reference::table6()
        .into_iter()
        .find(|r| r.kernel == "Transpose")
        .expect("Transpose missing from the paper's Table 6");
    let ratio = row.model_chained.as_mbps() / row.measured_chained.as_mbps();
    ratio.max(1.0 / ratio) * MARGIN
}

struct ScaleCase {
    dims: &'static [u32],
    /// Words exchanged per pair and per round.
    words_per_pair: u64,
    /// XOR-schedule prefix length (of the full `n − 1` rounds).
    rounds: usize,
}

const CASES: &[ScaleCase] = &[
    ScaleCase {
        dims: &[4, 4],
        words_per_pair: 64,
        rounds: 6,
    },
    ScaleCase {
        dims: &[8, 8],
        words_per_pair: 64,
        rounds: 6,
    },
    ScaleCase {
        dims: &[16, 16],
        words_per_pair: 48,
        rounds: 5,
    },
    ScaleCase {
        dims: &[16, 8, 8],
        words_per_pair: 32,
        rounds: 4,
    },
];

fn truncated_transpose(
    n: usize,
    words_per_pair: u64,
    rounds: usize,
) -> Vec<Vec<memcomm::netsim::traffic::Flow>> {
    let mut all = aapc_xor_schedule(n, words_per_pair * 8);
    all.truncate(rounds);
    all
}

fn opts(jobs: usize, shards: usize) -> EngineOptions {
    EngineOptions {
        nodes: None,
        jobs,
        shards,
        record_events: false,
        sample_every: 0,
        reference_scheduler: false,
    }
}

#[test]
fn engine_tracks_the_analytic_model_from_16_to_1024_nodes() {
    let machine = Machine::t3d();
    let band = transpose_band();
    println!("dims           nodes  engine-c  analytic-c  ratio  band {band:.3}");
    for case in CASES {
        let topo = Topology::torus(case.dims);
        let n = topo.len();
        let rounds = truncated_transpose(n, case.words_per_pair, case.rounds);
        let analytic = scheduled_congestion(&topo, &rounds, machine.nodes_per_port).factor;

        let run =
            netrun::run_rounds(&machine, &topo, &rounds, &opts(0, 0)).expect("watchdog-clean run");

        // Flit-hop/word conservation: the engine delivered exactly the
        // truncated schedule's payload, nothing dropped or duplicated.
        let scheduled: u64 = rounds
            .iter()
            .flatten()
            .filter(|f| f.src != f.dst)
            .map(|f| f.bytes.div_ceil(8))
            .sum();
        assert_eq!(run.words, scheduled, "{:?}: words lost", case.dims);

        let ratio = run.factor / analytic;
        println!(
            "{:12?}  {:5}  {:8.3}  {:10.3}  {:5.3}",
            case.dims, n, run.factor, analytic, ratio
        );
        assert!(
            (1.0 / band..=band).contains(&ratio),
            "{:?} ({n} nodes): engine factor {:.3} vs analytic {:.3} — ratio {ratio:.3} \
             outside the paper's accuracy band {:.3}..={band:.3}",
            case.dims,
            run.factor,
            analytic,
            1.0 / band,
        );
    }
}

#[test]
fn digests_are_byte_identical_across_jobs_and_shards_at_every_scale() {
    let machine = Machine::t3d();
    for case in CASES {
        let topo = Topology::torus(case.dims);
        let n = topo.len();
        let rounds = truncated_transpose(n, case.words_per_pair, case.rounds);

        let base =
            netrun::run_rounds(&machine, &topo, &rounds, &opts(1, 1)).expect("baseline runs");
        assert!(base.words > 0 && base.flit_hops > 0, "{n}-node run is real");

        // jobs sweep (auto shards) and shards sweep (fixed jobs): the
        // baseline is single-threaded on a single shard, so any
        // partitioning artifact shows up as a digest mismatch here.
        for (jobs, shards) in [(2, 0), (8, 0), (2, 1), (2, 3), (2, 16), (8, 16)] {
            let run = netrun::run_rounds(&machine, &topo, &rounds, &opts(jobs, shards))
                .expect("variant runs");
            let ctx = format!("{n} nodes, jobs={jobs}, shards={shards}");
            assert_eq!(run.digest, base.digest, "{ctx}: digest drifted");
            assert_eq!(run.cycles, base.cycles, "{ctx}: cycles drifted");
            assert_eq!(run.flit_hops, base.flit_hops, "{ctx}: flit-hops drifted");
            assert_eq!(run.windows, base.windows, "{ctx}: windows drifted");
            assert_eq!(run.words, base.words, "{ctx}: words drifted");
            assert!(
                (run.factor - base.factor).abs() < 1e-12,
                "{ctx}: factor drifted"
            );
        }
    }
}
