//! Trace-driven validation of the model's premises (Section 3.1).

use memcomm::machines::{microbench, Machine};
use memcomm::memsim::scenario;
use memcomm::model::AccessPattern;

/// "Temporal locality plays only a small role in the memory accesses for
/// communication" — a gather copy's source stream touches each line once.
#[test]
fn communication_streams_have_no_temporal_locality() {
    let m = Machine::t3d();
    let mut node = microbench::make_node(&m);
    let src = microbench::alloc_pattern_walk(&mut node, AccessPattern::Indexed, 4096, 7).unwrap();
    let dst =
        microbench::alloc_pattern_walk(&mut node, AccessPattern::Contiguous, 4096, 8).unwrap();
    node.path.enable_tracing();
    scenario::run_local_copy(&mut node, &src, &dst).expect("simulates");
    let trace = node.path.take_trace().expect("tracing was on");
    assert!(!trace.is_empty());
    // Look at the gather's data loads over the operand region only (the
    // index array itself is re-read, two entries per word — that is the
    // overhead stream, not the operand stream).
    let span = src.region();
    let loads = trace.filter(|e| {
        e.op == memcomm::memsim::trace::TraceOp::Load && e.addr >= span.base && e.addr < span.end()
    });
    // Operand (word-granularity) reuse: each element is read exactly once.
    let reuse = loads.reuse_fraction(8);
    assert!(
        reuse < 0.01,
        "communication stream showed temporal locality: {reuse:.2}"
    );
}

/// "Spatial locality is an important factor": contiguous copies switch DRAM
/// rows rarely, strided copies almost always.
#[test]
fn spatial_locality_separates_patterns_in_the_trace() {
    let m = Machine::t3d();
    let row_bytes = m.node.path.dram.row_bytes;
    let trace_of = |pattern: AccessPattern| {
        let mut node = microbench::make_node(&m);
        let src = microbench::alloc_pattern_walk(&mut node, pattern, 4096, 7).unwrap();
        let dst =
            microbench::alloc_pattern_walk(&mut node, AccessPattern::Contiguous, 4096, 8).unwrap();
        node.path.enable_tracing();
        scenario::run_local_copy(&mut node, &src, &dst).expect("simulates");
        node.path.take_trace().expect("tracing was on")
    };
    // Compare the *load streams*: the full trace interleaves loads, posted
    // stores and drains, which is a different (and also interesting)
    // question.
    let loads = |t: &memcomm::memsim::trace::Trace| {
        t.filter(|e| e.op == memcomm::memsim::trace::TraceOp::Load)
    };
    let contiguous = loads(&trace_of(AccessPattern::Contiguous));
    let strided = loads(&trace_of(AccessPattern::strided(512).unwrap()));
    let c = contiguous.row_switch_fraction(row_bytes);
    let s = strided.row_switch_fraction(row_bytes);
    assert!(
        s > 2.0 * c,
        "strided stream must switch rows far more often: {s:.2} vs {c:.2}"
    );
}

/// A chained exchange's trace interleaves the processor and the deposit
/// engine — the port switching the Paragon's bus arbitration punished.
#[test]
fn chained_exchanges_interleave_requesters() {
    use memcomm::commops::{ExchangeConfig, Style};
    // Use the machinery end to end but trace one node by rebuilding the
    // relevant agents here: the send microbenchmark plus deposit traffic is
    // enough to show interleaving, so use the simpler receive path.
    let m = Machine::t3d();
    let mut node = microbench::make_node(&m);
    let dst =
        microbench::alloc_pattern_walk(&mut node, AccessPattern::strided(8).unwrap(), 1024, 3)
            .unwrap();
    node.path.enable_tracing();
    scenario::run_receive_deposit(&mut node, &dst, true, 8).expect("simulates");
    let trace = node.path.take_trace().expect("tracing was on");
    let engine_refs = trace
        .entries()
        .iter()
        .filter(|e| e.port == memcomm::memsim::path::Port::Deposit)
        .count();
    assert!(
        engine_refs > 0,
        "the deposit engine must appear in the trace"
    );

    // And a full exchange still verifies with tracing untouched (tracing is
    // an observer, not a participant).
    let r = memcomm::commops::run_exchange(
        &m,
        AccessPattern::Contiguous,
        AccessPattern::Contiguous,
        Style::Chained,
        &ExchangeConfig {
            words: 512,
            ..ExchangeConfig::default()
        },
    );
    assert!(r.expect("simulates").verified);
}
