//! Golden-file regression test: re-derives the calibrated basic-transfer
//! rates behind Tables 1–4 and compares them against checked-in reference
//! values.
//!
//! The simulator is deterministic, so the tolerance is tight — it only has
//! to absorb float-formatting round-trips, not measurement noise. If a
//! deliberate simulator change moves the rates, regenerate the golden file:
//!
//! ```text
//! cargo run --release --bin repro -- --calibration --words 8192 --json out.json
//! # then rebuild tests/golden/calibration.json from out.json's
//! # "calibration" array (transfer → simulated MB/s per machine, plus the
//! # per-machine mean of |ln ratio|).
//! ```

use memcomm::machines::{calibrate, Machine};
use memcomm_util::json::Json;

/// Relative tolerance: deterministic rates only drift through the
/// decimal round-trip of the golden file itself.
const REL_TOL: f64 = 1e-9;

#[test]
fn calibrated_rates_match_the_golden_file() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/calibration.json"
    ))
    .expect("golden file present");
    let golden = Json::parse(&text).expect("golden file parses");
    let words = golden
        .get("words")
        .and_then(Json::as_f64)
        .expect("words field") as u64;

    let machines = golden
        .get("machines")
        .and_then(Json::as_arr)
        .expect("machines array");
    assert_eq!(machines.len(), 2, "both machines are golden");

    for entry in machines {
        let name = entry
            .get("machine")
            .and_then(Json::as_str)
            .expect("machine name");
        let machine = match name {
            "Cray T3D" => Machine::t3d(),
            "Intel Paragon" => Machine::paragon(),
            other => panic!("unknown golden machine {other:?}"),
        };
        let report = calibrate::calibration_report(&machine, words).expect("simulates");

        let rows = entry.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(
            rows.len(),
            report.len(),
            "{name}: calibrated transfer set changed"
        );
        for row in rows {
            let transfer = row
                .get("transfer")
                .and_then(Json::as_str)
                .expect("transfer");
            let want = row.get("mbps").and_then(Json::as_f64).expect("mbps");
            let got = report
                .iter()
                .find(|r| r.transfer.to_string() == transfer)
                .unwrap_or_else(|| panic!("{name}: {transfer} missing from report"))
                .simulated
                .as_mbps();
            assert!(
                (got - want).abs() <= REL_TOL * want.abs().max(1.0),
                "{name} {transfer}: simulated {got} vs golden {want}"
            );
        }

        let want_mle = entry
            .get("mean_log_error")
            .and_then(Json::as_f64)
            .expect("mean_log_error");
        let got_mle = calibrate::mean_log_error(&report);
        assert!(
            (got_mle - want_mle).abs() <= 1e-9,
            "{name}: mean log error {got_mle} vs golden {want_mle}"
        );
        // And the headline claim the README makes: calibration stays within
        // a typical deviation of ~15%.
        assert!(got_mle < 0.15, "{name}: calibration drifted to {got_mle}");
    }
}
