//! Robustness: fuzzed inputs never panic, simulations are deterministic.

use memcomm::commops::{run_exchange, ExchangeConfig, Style};
use memcomm::machines::{microbench, Machine};
use memcomm::model::BasicTransfer;
use memcomm_util::check::forall;
use memcomm_util::rng::Rng;

/// The notation parser returns `Err` (never panics) on arbitrary input.
#[test]
fn notation_parser_never_panics() {
    forall("notation_parser_never_panics", 256, |rng| {
        let len = rng.range_usize(0, 13);
        let s: String = (0..len)
            .map(|_| {
                // Printable ASCII plus a few multi-byte characters.
                match rng.range_u32(0, 20) {
                    0 => 'µ',
                    1 => '→',
                    _ => char::from(rng.range_u32(0x20, 0x7f) as u8),
                }
            })
            .collect();
        let _ = BasicTransfer::parse(&s);
    });
}

/// Near-miss notation strings (pattern-ish + letter + pattern-ish) also
/// never panic and round-trip when they do parse.
#[test]
fn notation_near_misses() {
    fn pattern_ish(rng: &mut Rng) -> String {
        match rng.range_u32(0, 4) {
            0 => "0".to_string(),
            1 => "1".to_string(),
            2 => "w".to_string(),
            _ => rng.range_u64(0, 10_000).to_string(),
        }
    }
    forall("notation_near_misses", 256, |rng| {
        let a = pattern_ish(rng);
        let e = char::from(b'A' + rng.range_u32(0, 26) as u8);
        let b = pattern_ish(rng);
        let s = format!("{a}{e}{b}");
        if let Ok(t) = BasicTransfer::parse(&s) {
            assert_eq!(BasicTransfer::parse(&t.to_string()).unwrap(), t);
        }
    });
}

/// Identical configurations produce identical cycle counts: the simulators
/// contain no hidden nondeterminism (no wall-clock, no unseeded
/// randomness, no hash-order dependence).
#[test]
fn exchanges_are_deterministic() {
    let m = Machine::t3d();
    let cfg = ExchangeConfig {
        words: 1024,
        ..ExchangeConfig::default()
    };
    let run = || {
        run_exchange(
            &m,
            memcomm::model::AccessPattern::Indexed,
            memcomm::model::AccessPattern::Strided(16),
            Style::Chained,
            &cfg,
        )
    };
    let a = run().expect("simulates");
    let b = run().expect("simulates");
    assert_eq!(a.end_cycle, b.end_cycle);
    assert_eq!(a.verified, b.verified);
}

/// Microbenchmark tables are reproducible down to the entry.
#[test]
fn rate_tables_are_deterministic() {
    let m = Machine::paragon();
    let a = microbench::measure_table(&m, 1024).expect("simulates");
    let b = microbench::measure_table(&m, 1024).expect("simulates");
    assert_eq!(a.len(), b.len());
    for (ta, tb) in a.iter().zip(b.iter()) {
        assert_eq!(ta.0, tb.0);
        assert_eq!(ta.1, tb.1, "{} differs between runs", ta.0);
    }
}

/// Different seeds change indexed-exchange timing (the index array actually
/// matters) but never correctness.
#[test]
fn seeds_change_timing_not_correctness() {
    let m = Machine::t3d();
    let run = |seed| {
        let cfg = ExchangeConfig {
            words: 1024,
            seed,
            ..ExchangeConfig::default()
        };
        run_exchange(
            &m,
            memcomm::model::AccessPattern::Indexed,
            memcomm::model::AccessPattern::Indexed,
            Style::Chained,
            &cfg,
        )
    };
    let a = run(1).expect("simulates");
    let b = run(2).expect("simulates");
    assert!(a.verified && b.verified);
    assert_ne!(
        a.end_cycle, b.end_cycle,
        "different permutations, different timing"
    );
    let rel = (a.end_cycle as f64 - b.end_cycle as f64).abs() / a.end_cycle as f64;
    assert!(rel < 0.10, "but only slightly: {rel:.3}");
}

/// The event engine under an active fault plan replays exactly: the same
/// seed yields the same event stream, digest, and fault counts, and every
/// dropped word is retransmitted rather than lost. A different seed drops
/// differently but still delivers everything.
#[test]
fn faulty_engine_runs_replay_identically() {
    use memcomm::memsim::fault::{FaultConfig, FaultPlan};
    use memcomm::netsim::engine::{run_flows, EngineConfig};
    use memcomm::netsim::topology::Topology;
    use memcomm::netsim::traffic;

    let m = Machine::t3d();
    let topo = Topology::torus(&[4, 2]);
    let flows = traffic::all_to_all(&topo, 24 * 8);
    let expected: u64 = flows
        .iter()
        .filter(|f| f.src != f.dst)
        .map(|f| f.bytes.div_ceil(8))
        .sum();

    let run = |seed| {
        let mut cfg = EngineConfig::new(m.link(1.0), m.node);
        cfg.nodes_per_port = m.nodes_per_port;
        cfg.fault = FaultPlan::new(FaultConfig {
            seed,
            rate: 0.04,
            ..FaultConfig::default()
        });
        cfg.record_events = true;
        cfg.jobs = 1;
        run_flows(&topo, &flows, &cfg).expect("faulty run completes")
    };

    let a = run(1995);
    let b = run(1995);
    assert_eq!(a.digest, b.digest, "same seed, same event stream");
    assert_eq!(a.events, b.events);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.dropped, b.dropped);
    assert!(
        a.dropped > 0 || a.corrupted > 0,
        "a 4% plan must actually fire"
    );
    assert_eq!(a.words, expected, "drops are retransmitted, never lost");

    let c = run(77);
    assert_eq!(c.words, expected, "any seed still delivers every word");
    assert_ne!(
        (a.digest, a.dropped),
        (c.digest, c.dropped),
        "different seeds must differ somewhere"
    );
}

/// The 256-node fault-replay tier: drop/corrupt/outage storms on a 3D
/// torus, byte-identical across jobs {1, 4} × shards {1, auto}. Whatever
/// the storm does — retransmissions, backoff waits, transient outage
/// windows, abandoned words — the digest, the counters, and the degraded
/// accounting must not depend on how the run was parallelized.
#[test]
fn fault_storms_replay_identically_at_256_nodes() {
    use memcomm::memsim::fault::{FaultConfig, FaultPlan};
    use memcomm::netsim::adversary::{self, AdversaryConfig, AdversaryKind};
    use memcomm::netsim::engine::{run_flows, scaled_topology, EngineConfig, RetryPolicy};
    use memcomm::netsim::topology::Topology;

    let m = Machine::t3d();
    let topo = scaled_topology(&Topology::torus(&[4, 4, 4]), 256).expect("256-node torus");
    let traffic = adversary::generate(
        &topo,
        &AdversaryConfig {
            kind: AdversaryKind::Incast,
            seed: 256,
            base_bytes: 96,
            victims: 4,
            fan_in: 12,
            ..AdversaryConfig::default()
        },
    );
    let run = |jobs: usize, shards: usize| {
        let mut cfg = EngineConfig::new(m.link(1.0), m.node);
        cfg.nodes_per_port = m.nodes_per_port;
        cfg.jobs = jobs;
        cfg.shards = shards;
        cfg.flow_classes = traffic.classes.clone();
        cfg.record_latency = true;
        cfg.fault = FaultPlan::new(FaultConfig {
            seed: 0xFA17,
            rate: 0.10,
            max_jitter_cycles: 32,
            outage_window_rate: 0.3,
            outage_window_cycles: 256,
            outage_period_cycles: 2048,
            ..FaultConfig::default()
        });
        cfg.retry = RetryPolicy {
            max_retries: 3,
            backoff_base_cycles: 16,
            backoff_factor: 2,
            max_backoff_cycles: 1 << 10,
        };
        run_flows(&topo, &traffic.flows, &cfg).expect("storm run completes")
    };
    let base = run(1, 1);
    assert!(base.dropped > 0, "the storm must fire");
    assert_eq!(
        base.dropped,
        base.retried + base.abandoned,
        "every drop retried or abandoned"
    );
    for (jobs, shards) in [(1, 0), (4, 1), (4, 0)] {
        let other = run(jobs, shards);
        assert_eq!(other.digest, base.digest, "jobs={jobs} shards={shards}");
        assert_eq!(other.cycles, base.cycles, "jobs={jobs} shards={shards}");
        assert_eq!(other.dropped, base.dropped, "jobs={jobs} shards={shards}");
        assert_eq!(other.retried, base.retried, "jobs={jobs} shards={shards}");
        assert_eq!(
            other.abandoned, base.abandoned,
            "jobs={jobs} shards={shards}"
        );
        assert_eq!(other.degraded, base.degraded, "jobs={jobs} shards={shards}");
        assert_eq!(
            other.flow_latency, base.flow_latency,
            "jobs={jobs} shards={shards}"
        );
    }
}

/// Adversarial traffic with an all-zero fault plan is byte-identical to the
/// same traffic with no plan at all: the resilience plumbing (retry
/// budgets, outage calendar, drain ledger) is observationally free until a
/// fault actually fires.
#[test]
fn zero_fault_adversarial_runs_match_the_faultless_baseline() {
    use memcomm::memsim::fault::{FaultConfig, FaultPlan};
    use memcomm::netsim::adversary::{self, AdversaryConfig, AdversaryKind};
    use memcomm::netsim::engine::{run_flows, EngineConfig};
    use memcomm::netsim::topology::Topology;

    let m = Machine::t3d();
    let topo = Topology::torus(&[4, 4]);
    for kind in AdversaryKind::ALL {
        let traffic = adversary::generate(
            &topo,
            &AdversaryConfig {
                kind,
                base_bytes: 64,
                ..AdversaryConfig::default()
            },
        );
        let mut cfg = EngineConfig::new(m.link(1.0), m.node);
        cfg.nodes_per_port = m.nodes_per_port;
        cfg.record_events = true;
        let faultless = run_flows(&topo, &traffic.flows, &cfg).expect("faultless run");
        cfg.fault = FaultPlan::new(FaultConfig {
            seed: 42,
            ..FaultConfig::default()
        });
        let zeroed = run_flows(&topo, &traffic.flows, &cfg).expect("zero-rate run");
        assert_eq!(zeroed.digest, faultless.digest, "{}", kind.name());
        assert_eq!(zeroed.events, faultless.events, "{}", kind.name());
        assert_eq!(zeroed.cycles, faultless.cycles, "{}", kind.name());
        assert_eq!(zeroed.dropped, 0, "{}", kind.name());
        assert_eq!(zeroed.retried, 0, "{}", kind.name());
        assert!(zeroed.degraded.is_none(), "{}", kind.name());
    }
}
