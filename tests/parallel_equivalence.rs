//! The sweep engine's core guarantee: a parallel run renders the same
//! report, byte for byte, as a serial one — and the measurement cache sees
//! real traffic while doing it.
//!
//! Everything lives in one `#[test]`: the worker count and the memo cache
//! are process-wide, so interleaving several tests in one binary would race
//! on them.

use std::collections::BTreeSet;

use memcomm_bench::experiments::FaultSettings;
use memcomm_bench::runner::{run_sweep, SweepOptions};
use memcomm_machines::memo;

fn opts(jobs: usize) -> SweepOptions {
    // Cheap sections that still share basic-transfer points (the local-copy
    // transfers appear in calibration and Tables 1 and in Figure 4's
    // anchors), so the cache must both fill and hit.
    let sections: BTreeSet<String> = ["calibration", "table1", "table2", "table3", "figure4"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    SweepOptions {
        jobs,
        micro_words: 1024,
        exchange_words: 256,
        sections,
        ..SweepOptions::default()
    }
}

fn fault_opts(jobs: usize, settings: FaultSettings) -> SweepOptions {
    SweepOptions {
        jobs,
        micro_words: 1024,
        exchange_words: 256,
        sections: ["table1", "faults"].iter().map(|s| s.to_string()).collect(),
        faults: settings,
        ..SweepOptions::default()
    }
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    memo::reset();
    let (serial_report, serial_metrics) = run_sweep(&opts(1));
    let serial_json = serial_report.to_json().render();

    memo::reset();
    let (parallel_report, parallel_metrics) = run_sweep(&opts(4));
    let parallel_json = parallel_report.to_json().render();

    assert_eq!(
        serial_json, parallel_json,
        "parallel sweep must render byte-identical JSON"
    );
    assert_eq!(serial_metrics.points, parallel_metrics.points);

    // Both runs started from a cold cache and cover overlapping transfer
    // points, so both must record hits; and the parallel run must have
    // simulated each distinct point exactly once (same miss count as the
    // serial run would imply, modulo benign racing duplicates — which the
    // entry count rules out).
    assert!(
        parallel_metrics.cache.hit_rate() > 0.0,
        "parallel run saw no cache hits: {:?}",
        parallel_metrics.cache
    );
    assert!(serial_metrics.cache.hit_rate() > 0.0);
    assert_eq!(
        serial_metrics.cache.entries, parallel_metrics.cache.entries,
        "both runs must memoize the same distinct points"
    );

    // Determinism holds within a worker count too: re-running parallel
    // (now warm) still renders the same bytes.
    let (again, again_metrics) = run_sweep(&opts(4));
    assert_eq!(again.to_json().render(), parallel_json);
    // The warm run answers everything from the cache.
    assert_eq!(again_metrics.cache.misses, 0, "{again_metrics:?}");

    // --- Fault-plan determinism (the robustness section's contract) ---

    // A seeded fault plan is replayable: the same seed renders byte-identical
    // JSON whatever the worker count. Fault decisions are pure functions of
    // (site, index), so scheduling cannot reorder them into a different run.
    let seeded = FaultSettings {
        seed: 42,
        rate: 0.02,
        outage_rate: 0.005,
        ..FaultSettings::default()
    };
    memo::reset();
    let (faulted_serial, _) = run_sweep(&fault_opts(1, seeded));
    memo::reset();
    let (faulted_parallel, _) = run_sweep(&fault_opts(4, seeded));
    assert_eq!(
        faulted_serial.to_json().render(),
        faulted_parallel.to_json().render(),
        "a seeded fault plan must replay byte-identically at any worker count"
    );

    // A zero-rate plan is indistinguishable from no plan at all: the seed
    // must leave no trace in the report (it lives in RunMetrics only).
    let zero_rate = FaultSettings {
        seed: 0xDEAD_BEEF,
        ..FaultSettings::default()
    };
    memo::reset();
    let (with_seed, _) = run_sweep(&fault_opts(1, zero_rate));
    memo::reset();
    let (without, _) = run_sweep(&fault_opts(1, FaultSettings::default()));
    assert_eq!(
        with_seed.to_json().render(),
        without.to_json().render(),
        "a zero-fault configuration must be byte-identical to the faultless baseline"
    );

    // --- Observability is read-only (zero observational interference) ---

    // With tracing and a live metrics registry installed, the report (with
    // the opt-in phase-attribution section included) must still render the
    // same bytes at any worker count; and a traced run must match an
    // untraced one section for section.
    let traced = |jobs: usize, trace: bool| {
        let observed = SweepOptions {
            phases: true,
            ..opts(jobs)
        };
        let obs = memcomm_obs::Obs::new(trace);
        let _guard = obs.install();
        memo::reset();
        let (report, _) = run_sweep(&observed);
        (report.to_json().render(), obs)
    };
    let (traced_serial, obs_serial) = traced(1, true);
    let (traced_parallel, obs_parallel) = traced(4, true);
    assert_eq!(
        traced_serial, traced_parallel,
        "tracing must not perturb the report at any worker count"
    );
    assert!(
        obs_serial.trace_len() > 0 && obs_parallel.trace_len() > 0,
        "both runs must actually have recorded spans"
    );
    let (untraced, _) = traced(1, false);
    assert_eq!(
        traced_serial, untraced,
        "a traced run must render the same report as an untraced one"
    );
    assert!(
        traced_serial.contains("\"phases\""),
        "the opt-in phase attribution must be present in these runs"
    );
}

/// The adversary scenario's observability contract: running under a live
/// trace-recording registry renders byte-identical scenario JSON to an
/// unobserved run, with the telemetry sampler both off and armed; and
/// arming the sampler only *appends* the telemetry section — the
/// unsampled report's bytes survive as an exact prefix. Safe outside the
/// mega-test above: the scenario takes its worker count explicitly and
/// never touches the memo cache.
#[test]
fn adversary_scenario_json_is_trace_invariant() {
    use memcomm_bench::adversary::{run_scenario, scenario_json, ScenarioOptions};
    use memcomm_netsim::AdversaryKind;

    let render = |sample_every: u64, obs: Option<bool>| {
        let handle = memcomm_obs::Obs::new(obs.unwrap_or(false));
        let guard = obs.map(|_| handle.install());
        let opts = ScenarioOptions {
            nodes: Some(16),
            base_bytes: 64,
            sample_every,
            ..ScenarioOptions::new(AdversaryKind::Incast)
        };
        let s = run_scenario(&opts).expect("scenario runs");
        let json = scenario_json(&opts, &s).render();
        drop(guard);
        json
    };

    let plain = render(0, None);
    assert!(!plain.contains("telemetry"));
    assert_eq!(
        render(0, Some(true)),
        plain,
        "tracing must not perturb the unsampled scenario report"
    );
    let sampled = render(64, None);
    assert_eq!(
        render(64, Some(true)),
        sampled,
        "tracing must not perturb the sampled scenario report"
    );
    assert_eq!(
        render(64, Some(false)),
        sampled,
        "a registry-only observer must not perturb the sampled report"
    );
    // Sampling only *appends*: strip the closing `\n}\n` and the unsampled
    // report's bytes survive verbatim, continued by the telemetry key.
    let base = plain.strip_suffix("\n}\n").expect("rendered object");
    assert!(
        sampled.starts_with(base),
        "sampling must keep the unsampled report's exact bytes as a prefix"
    );
    assert!(
        sampled[base.len()..].starts_with(",\n  \"telemetry\""),
        "sampling must continue the report with the telemetry section"
    );
}

/// The event engine's determinism contract, end to end through the bench
/// layer: the engine Table 6 section renders byte-identical JSON at any
/// shard worker count. This can live outside the mega-test above because
/// the engine takes its worker count explicitly — it never reads the
/// process-wide setting these sweeps mutate.
#[test]
fn engine_section_is_byte_identical_across_worker_counts() {
    use memcomm_bench::experiments::{engine_table6, EngineSettings};
    use memcomm_bench::runner::FullReport;

    let settings = |jobs| EngineSettings {
        nodes: 8,
        transpose_n: 128,
        sor_n: 128,
        jobs,
        shards: 0,
    };
    let render = |jobs| {
        let report = FullReport {
            engine_table6: engine_table6(&settings(jobs)).expect("engine runs"),
            ..FullReport::default()
        };
        report.to_json().render()
    };
    let serial = render(1);
    let parallel = render(4);
    assert_eq!(
        serial, parallel,
        "engine rows must render byte-identically at jobs=1 and jobs=4"
    );
    assert!(
        serial.contains("\"engine_table6\""),
        "the engine key must be present when rows exist"
    );
    // And absent otherwise: the default report keeps its exact bytes.
    assert!(
        !FullReport::default()
            .to_json()
            .render()
            .contains("engine_table6"),
        "an engine-less report must not mention the engine"
    );
}
