//! Golden-file regression tests for the telemetry exporters: the seeded
//! 64-node incast under the default fault storm, sampled every 64 cycles,
//! is pinned three ways —
//!
//! * `tests/golden/telemetry.om`: the OpenMetrics text exposition
//!   (registry counters plus the engine's named time-series), exactly
//!   what `repro --adversary ... --metrics-out` writes;
//! * `tests/golden/heatmap.json`: the deterministic heatmap JSON
//!   (per-link busy ppm, per-node utilization and occupancy rollups);
//! * `tests/golden/heatmap.txt`: the ASCII grids `repro --heatmap`
//!   prints (a 4×4×4 torus, so the plane rendering is exercised too).
//!
//! The pins are self-regenerating — if a deliberate engine or exporter
//! change moves these bytes, regenerate all three with:
//!
//! ```text
//! MEMCOMM_UPDATE_GOLDEN=1 cargo test --test golden_telemetry
//! ```

use memcomm_bench::adversary::{run_scenario, scenario_json, ScenarioOptions};
use memcomm_netsim::heatmap;
use memcomm_netsim::AdversaryKind;
use memcomm_obs::{openmetrics, Obs};

const SAMPLE_EVERY: u64 = 64;

fn golden_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Runs the pinned scenario and renders all three artifacts.
fn artifacts() -> (String, String, String) {
    // jobs/shards are pinned: the registry's per-shard diagnostic gauges
    // (engine.shards, engine.shardN.peak_queued) legitimately reflect the
    // actual fan-out, and auto mode sizes it from the host's core count.
    // Everything telemetry-derived is fan-out invariant regardless (the
    // partition-invariance test below proves it).
    let opts = ScenarioOptions {
        nodes: Some(64),
        sample_every: SAMPLE_EVERY,
        jobs: 1,
        shards: 1,
        ..ScenarioOptions::new(AdversaryKind::Incast)
    };
    // A fresh registry-only observer, exactly as `repro --adversary`
    // installs one: the exposition covers only this scenario's counters.
    let obs = Obs::new(false);
    let _guard = obs.install();
    let scenario = run_scenario(&opts).expect("scenario runs");
    let out = &scenario.run.outcome;
    let tel = out
        .telemetry
        .as_ref()
        .expect("sampling was armed, telemetry present");

    let snapshot = obs.metrics_snapshot().expect("registry is enabled");
    let om = openmetrics::render(&snapshot, &tel.named_series());
    let heat = heatmap::heatmap_json(&scenario.topo, tel, out.cycles).render();
    let grids = heatmap::render_grids(&scenario.topo, tel, out.cycles);
    (om, heat, grids)
}

fn check(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("MEMCOMM_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, got).expect("golden regenerated");
        eprintln!("regenerated {path}");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect("golden file present");
    assert_eq!(
        got, golden,
        "telemetry artifact drifted from tests/golden/{name} \
         (regenerate with MEMCOMM_UPDATE_GOLDEN=1 cargo test --test golden_telemetry)"
    );
}

#[test]
fn telemetry_artifacts_match_the_golden_files() {
    let (om, heat, grids) = artifacts();

    // The exposition must be valid OpenMetrics in its own right — the same
    // gate CI applies through the `metricscheck` binary.
    let stats = openmetrics::validate(&om).expect("exposition validates");
    assert!(stats.families > 0 && stats.samples > 0);
    assert!(
        stats.counters > 0,
        "the storm's fault counters must be exposed"
    );
    assert!(stats.gauges > 0, "the engine series must be exposed");

    check("telemetry.om", &om);
    check("heatmap.json", &heat);
    check("heatmap.txt", &grids);
}

/// Strips the per-shard diagnostic families (`engine_shard*`) from an
/// exposition: they report the run's actual fan-out, which is the one
/// thing that legitimately varies across jobs × shards.
fn without_shard_diagnostics(om: &str) -> String {
    om.lines()
        .filter(|l| !l.contains("engine_shard"))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// The artifacts are partition-invariant: a fanned-out sharded run and the
/// retired heap scheduler render the same three artifacts byte for byte,
/// and the scenario report itself matches across the grid (the engine-level
/// Telemetry equality test lives in netsim; this covers the exporters).
/// Only the exposition's per-shard diagnostics are allowed to differ —
/// they describe the fan-out itself.
#[test]
fn telemetry_artifacts_are_partition_invariant() {
    let run = |jobs: usize, shards: usize| {
        let opts = ScenarioOptions {
            nodes: Some(16),
            base_bytes: 64,
            sample_every: 8,
            jobs,
            shards,
            ..ScenarioOptions::new(AdversaryKind::Incast)
        };
        let obs = Obs::new(false);
        let _guard = obs.install();
        let scenario = run_scenario(&opts).expect("scenario runs");
        let out = &scenario.run.outcome;
        let tel = out.telemetry.as_ref().expect("telemetry present");
        let snapshot = obs.metrics_snapshot().expect("registry is enabled");
        (
            without_shard_diagnostics(&openmetrics::render(&snapshot, &tel.named_series())),
            heatmap::heatmap_json(&scenario.topo, tel, out.cycles).render(),
            heatmap::render_grids(&scenario.topo, tel, out.cycles),
            scenario_json(&opts, &scenario).render(),
        )
    };
    let want = run(1, 1);
    for (jobs, shards) in [(4, 0), (2, 5)] {
        assert_eq!(
            run(jobs, shards),
            want,
            "jobs {jobs} x shards {shards} changed a telemetry artifact"
        );
    }
}
