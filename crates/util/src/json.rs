//! A minimal JSON value: ordered objects, deterministic rendering, and a
//! recursive-descent parser.
//!
//! Rendering is byte-deterministic: object keys keep insertion order,
//! numbers use Rust's shortest round-trip formatting, and non-finite floats
//! render as `null` (matching what `serde_json` emitted for the seed's
//! reports). That determinism is what lets the parallel sweep engine assert
//! byte-identical output against the serial path.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A floating-point number. Non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and significant for
    /// rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array by mapping a slice.
    pub fn arr<T, F: FnMut(&T) -> Json>(items: &[T], f: F) -> Json {
        Json::Arr(items.iter().map(f).collect())
    }

    /// Builds a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (`Int` and `Num` both qualify).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let mut buf = String::new();
                let _ = fmt::Write::write_fmt(&mut buf, format_args!("{i}"));
                out.push_str(&buf);
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let mut buf = String::new();
                    let _ = fmt::Write::write_fmt(&mut buf, format_args!("{n}"));
                    out.push_str(&buf);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<Option<f64>> for Json {
    fn from(v: Option<f64>) -> Json {
        v.map_or(Json::Null, Json::Num)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let mut buf = String::new();
                let _ = fmt::Write::write_fmt(&mut buf, format_args!("\\u{:04x}", c as u32));
                out.push_str(&buf);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                                let code =
                                    u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                                s.push(
                                    char::from_u32(code)
                                        .ok_or(format!("invalid \\u escape {hex}"))?,
                                );
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest =
                            std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                        let c = rest.chars().next().expect("non-empty");
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            if text.contains(['.', 'e', 'E']) {
                text.parse::<f64>()
                    .map(Json::Num)
                    .map_err(|e| format!("bad number {text:?}: {e}"))
            } else {
                text.parse::<i64>()
                    .map(Json::Int)
                    .map_err(|e| format!("bad number {text:?}: {e}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically() {
        let v = Json::obj([
            ("name", Json::str("x")),
            ("rate", Json::Num(12.5)),
            ("n", Json::Int(3)),
            ("nan", Json::Num(f64::NAN)),
            ("list", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let a = v.render();
        let b = v.render();
        assert_eq!(a, b);
        assert!(a.contains("\"rate\": 12.5"));
        assert!(a.contains("\"nan\": null"));
    }

    #[test]
    fn round_trips() {
        let v = Json::obj([
            ("s", Json::str("a \"quoted\" line\n")),
            (
                "xs",
                Json::Arr(vec![Json::Num(1.25), Json::Null, Json::Bool(true)]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let parsed = Json::parse(&v.render()).expect("parses");
        assert_eq!(parsed, v);
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, {"b": null}], "c": "A"}"#;
        let v = Json::parse(doc).expect("parses");
        assert_eq!(v.get("c").and_then(Json::as_str), Some("A"));
        let arr = v.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 456").is_err());
    }
}
