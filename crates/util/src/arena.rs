//! A freelist slab arena with intrusive links.
//!
//! Hot schedulers (the event engine's router queues) churn through small
//! queue entries at millions per second; allocating each one on the heap —
//! as `BinaryHeap`'s internal `Vec` reallocations effectively do across
//! queues — costs cache misses and allocator traffic. [`Arena`] keeps every
//! entry in one contiguous slab, recycles freed slots through an intrusive
//! freelist, and exposes each slot's spare `next` index so callers can
//! thread their own linked structures (FIFO lanes, overflow chains) through
//! the same storage with zero extra allocation.

/// The null slot index: "no entry", for both the freelist and caller lists.
pub const NIL: u32 = u32::MAX;

/// A slab of `T` slots addressed by `u32` index, each carrying an intrusive
/// `next` link.
///
/// Indices are capabilities: [`Arena::alloc`] hands one out, [`Arena::free`]
/// takes it back. Accessing or freeing an index that is not currently
/// allocated is a logic error — it stays memory-safe, but the arena's
/// contents and freelist become unspecified.
#[derive(Debug, Clone, Default)]
pub struct Arena<T> {
    /// Slot payloads and links. Free slots thread the freelist through
    /// `next`; live slots' `next` belongs to the caller.
    slots: Vec<(T, u32)>,
    /// Head of the freelist ([`NIL`] when every slot is live).
    free: u32,
    /// Live slot count.
    live: u32,
}

impl<T: Default> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: NIL,
            live: 0,
        }
    }

    /// An empty arena with room for `n` entries before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(n),
            free: NIL,
            live: 0,
        }
    }

    /// Stores `item` in a recycled (or fresh) slot and returns its index.
    /// The slot's `next` link starts at [`NIL`].
    pub fn alloc(&mut self, item: T) -> u32 {
        self.live += 1;
        if self.free == NIL {
            assert!(self.slots.len() < NIL as usize, "arena full");
            self.slots.push((item, NIL));
            return (self.slots.len() - 1) as u32;
        }
        let idx = self.free;
        let slot = &mut self.slots[idx as usize];
        self.free = slot.1;
        slot.0 = item;
        slot.1 = NIL;
        idx
    }

    /// Releases slot `idx` back to the freelist, returning its payload.
    pub fn free(&mut self, idx: u32) -> T {
        let slot = &mut self.slots[idx as usize];
        let item = std::mem::take(&mut slot.0);
        slot.1 = self.free;
        self.free = idx;
        self.live -= 1;
        item
    }

    /// The payload of live slot `idx`.
    pub fn get(&self, idx: u32) -> &T {
        &self.slots[idx as usize].0
    }

    /// Mutable payload of live slot `idx`.
    pub fn get_mut(&mut self, idx: u32) -> &mut T {
        &mut self.slots[idx as usize].0
    }

    /// The caller-owned `next` link of live slot `idx`.
    pub fn next(&self, idx: u32) -> u32 {
        self.slots[idx as usize].1
    }

    /// Sets the caller-owned `next` link of live slot `idx`.
    pub fn set_next(&mut self, idx: u32, next: u32) {
        self.slots[idx as usize].1 = next;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever allocated (live + recyclable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_free_roundtrip() {
        let mut a = Arena::new();
        let x = a.alloc(10u64);
        let y = a.alloc(20u64);
        assert_eq!(*a.get(x), 10);
        assert_eq!(*a.get(y), 20);
        assert_eq!(a.len(), 2);
        assert_eq!(a.free(x), 10);
        assert_eq!(a.len(), 1);
        // The freed slot is recycled before the slab grows.
        let z = a.alloc(30u64);
        assert_eq!(z, x);
        assert_eq!(*a.get(z), 30);
        assert_eq!(a.capacity(), 2);
    }

    #[test]
    fn intrusive_links_thread_a_fifo() {
        let mut a = Arena::new();
        let (mut head, mut tail) = (NIL, NIL);
        for v in 0..100u64 {
            let idx = a.alloc(v);
            if head == NIL {
                head = idx;
            } else {
                a.set_next(tail, idx);
            }
            tail = idx;
        }
        let mut seen = Vec::new();
        while head != NIL {
            let next = a.next(head);
            seen.push(a.free(head));
            head = next;
        }
        assert_eq!(seen, (0..100).collect::<Vec<u64>>());
        assert!(a.is_empty());
    }

    #[test]
    fn freelist_is_lifo_and_bounded() {
        let mut a = Arena::with_capacity(4);
        let idx: Vec<u32> = (0..4u64).map(|v| a.alloc(v)).collect();
        for &i in &idx {
            a.free(i);
        }
        // LIFO recycling: last freed comes back first; the slab never grows.
        for &want in idx.iter().rev() {
            assert_eq!(a.alloc(0u64), want);
        }
        assert_eq!(a.capacity(), 4);
    }
}
