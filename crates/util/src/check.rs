//! A tiny property-test harness: run a closure over many deterministically
//! seeded random cases, and report the failing case number so a failure can
//! be replayed exactly.
//!
//! ```rust
//! use memcomm_util::check::forall;
//!
//! forall("addition commutes", 64, |rng| {
//!     let a = rng.range_u64(0, 1000);
//!     let b = rng.range_u64(0, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::AssertUnwindSafe;

use crate::rng::Rng;

/// The base seed every property derives its per-case seeds from. Fixed so
/// test runs are reproducible; bump it to re-roll the whole suite.
pub const BASE_SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// Derives the deterministic seed of one case of a named property.
pub fn case_seed(name: &str, case: u64) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h ^ BASE_SEED.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs `f` over `cases` deterministically seeded random cases. A panic
/// inside `f` is re-raised after printing the property name, case index and
/// seed, so the failure replays with [`replay`].
pub fn forall(name: &str, cases: u64, mut f: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property {name:?} failed at case {case}/{cases} (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Re-runs a single case by seed — paste the seed a [`forall`] failure
/// printed to debug it in isolation.
pub fn replay(seed: u64, f: impl FnOnce(&mut Rng)) {
    let mut rng = Rng::new(seed);
    f(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_quiet_properties() {
        let mut ran = 0u64;
        forall("trivial", 10, |rng| {
            ran += 1;
            let _ = rng.next_u64();
        });
        assert_eq!(ran, 10);
    }

    #[test]
    fn seeds_differ_by_case_and_name() {
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_eq!(case_seed("a", 3), case_seed("a", 3));
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        forall("failing", 5, |_| panic!("deliberate"));
    }

    #[test]
    fn replay_reproduces_a_case() {
        let seed = case_seed("stream", 4);
        let mut first = None;
        forall("stream", 5, |rng| {
            let v = rng.next_u64();
            if first.is_none() {
                first = Some(v);
            }
        });
        let mut replayed = None;
        replay(case_seed("stream", 0), |rng| {
            replayed = Some(rng.next_u64())
        });
        assert_eq!(first, replayed);
        let _ = seed;
    }
}
