//! A hierarchical timing wheel: an `O(1)`-push, amortized-`O(1)`-pop
//! priority queue for cycle-keyed events drained in bounded windows.
//!
//! A conservative-window simulator releases events strictly in key order,
//! window by window, and never schedules into the past. Under those rules a
//! binary heap pays `O(log n)` per operation for generality it cannot use;
//! a timing wheel pays `O(1)`: events land in a cycle-indexed bucket ring
//! sized to the scheduling horizon, and draining a window walks the handful
//! of cycles it covers. Events beyond the horizon — rare, e.g. fault jitter
//! — park in an overflow ring and are re-filed as the wheel turns, so
//! correctness never depends on the horizon being right, only performance.
//!
//! Within one cycle, events are emitted in ascending item order (`T: Ord`),
//! which makes the drain order a total order over `(key, item)` — exactly
//! the order `BinaryHeap<Reverse<(key, item)>>` would pop, byte for byte.

/// A cycle-keyed event queue drained in ascending `(key, item)` order.
#[derive(Debug, Clone)]
pub struct TimingWheel<T> {
    /// Every stored key is `>= base`; [`TimingWheel::drain_until`] advances it.
    base: u64,
    /// `buckets.len() - 1`; the bucket of key `k` is `k & mask`.
    mask: u64,
    /// One bucket per cycle of the horizon `[base, base + buckets.len())`.
    /// In-horizon keys map to distinct buckets, so a bucket only ever holds
    /// entries of a single key.
    buckets: Vec<Vec<(u64, T)>>,
    /// Entries at or beyond the horizon, re-filed as `base` advances.
    overflow: Vec<(u64, T)>,
    /// Smallest key in `overflow` (`u64::MAX` when empty): skips the
    /// re-file scan while the wheel turns far below the parked events.
    overflow_min: u64,
    len: usize,
}

impl<T: Ord> TimingWheel<T> {
    /// A wheel whose bucket ring covers at least `horizon` cycles (rounded
    /// up to a power of two). Keys further ahead still work — they take the
    /// overflow path until the wheel turns within `horizon` of them.
    pub fn new(horizon: u64) -> Self {
        let size = horizon.max(1).next_power_of_two();
        TimingWheel {
            base: 0,
            mask: size - 1,
            buckets: (0..size).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            len: 0,
        }
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` at `key`.
    ///
    /// # Panics
    ///
    /// If `key` is below the drain frontier — the wheel only turns forward.
    pub fn push(&mut self, key: u64, item: T) {
        assert!(
            key >= self.base,
            "timing wheel cannot schedule into the past ({key} < {})",
            self.base
        );
        self.len += 1;
        if key - self.base <= self.mask {
            self.buckets[(key & self.mask) as usize].push((key, item));
        } else {
            self.overflow_min = self.overflow_min.min(key);
            self.overflow.push((key, item));
        }
    }

    /// Releases every event with `key < t1` to `emit` in ascending
    /// `(key, item)` order, then advances the frontier to `t1`.
    pub fn drain_until(&mut self, t1: u64, mut emit: impl FnMut(u64, T)) {
        let size = self.mask + 1;
        while self.base < t1 {
            if self.len == 0 {
                self.base = t1;
                return;
            }
            let lim = t1.min(self.base.saturating_add(size));
            for c in self.base..lim {
                let slot = (c & self.mask) as usize;
                if self.buckets[slot].is_empty() {
                    continue;
                }
                let mut batch = std::mem::take(&mut self.buckets[slot]);
                batch.sort_unstable();
                self.len -= batch.len();
                for (k, item) in batch.drain(..) {
                    debug_assert_eq!(k, c, "bucket held an out-of-horizon key");
                    emit(k, item);
                }
                // Hand the drained Vec's capacity back to the ring.
                self.buckets[slot] = batch;
            }
            self.base = lim;
            self.refile();
        }
    }

    /// Moves parked overflow events that the advancing frontier brought
    /// inside the horizon into their buckets.
    fn refile(&mut self) {
        if self.overflow_min > self.base + self.mask {
            return;
        }
        let mut min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let key = self.overflow[i].0;
            if key <= self.base + self.mask {
                let (k, item) = self.overflow.swap_remove(i);
                self.buckets[(k & self.mask) as usize].push((k, item));
            } else {
                min = min.min(key);
                i += 1;
            }
        }
        self.overflow_min = min;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The wheel must pop exactly what a binary heap would, byte for byte,
    /// under windowed pushes — including horizons far smaller than the key
    /// spread (forcing the overflow path on most pushes).
    #[test]
    fn matches_a_binary_heap_under_windowed_traffic() {
        for horizon in [1u64, 4, 32, 1024] {
            let mut rng = Rng::new(0x77ee1 ^ horizon);
            let mut wheel = TimingWheel::new(horizon);
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut t = 0u64;
            for _ in 0..200 {
                let window = rng.range_u64(1, 16);
                for _ in 0..rng.range_u64(0, 12) {
                    let key = t + rng.range_u64(0, 3000);
                    let item = rng.range_u64(0, 1 << 48);
                    wheel.push(key, item);
                    heap.push(Reverse((key, item)));
                }
                t += window;
                let mut got = Vec::new();
                wheel.drain_until(t, |k, v| got.push((k, v)));
                let mut want = Vec::new();
                while heap.peek().is_some_and(|&Reverse((k, _))| k < t) {
                    let Reverse(e) = heap.pop().expect("peeked");
                    want.push(e);
                }
                assert_eq!(got, want, "horizon {horizon} t {t}");
                assert_eq!(wheel.len(), heap.len());
            }
        }
    }

    #[test]
    fn same_cycle_events_come_out_in_item_order() {
        let mut wheel = TimingWheel::new(8);
        wheel.push(5, 30u64);
        wheel.push(5, 10);
        wheel.push(5, 20);
        wheel.push(3, 99);
        let mut got = Vec::new();
        wheel.drain_until(6, |k, v| got.push((k, v)));
        assert_eq!(got, vec![(3, 99), (5, 10), (5, 20), (5, 30)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn overflow_events_survive_many_turns() {
        let mut wheel = TimingWheel::new(2);
        wheel.push(1000, 1u32);
        wheel.push(3, 2);
        let mut got = Vec::new();
        wheel.drain_until(999, |k, v| got.push((k, v)));
        assert_eq!(got, vec![(3, 2)]);
        assert_eq!(wheel.len(), 1);
        wheel.drain_until(1001, |k, v| got.push((k, v)));
        assert_eq!(got, vec![(3, 2), (1000, 1)]);
    }

    #[test]
    #[should_panic(expected = "schedule into the past")]
    fn pushing_behind_the_frontier_panics() {
        let mut wheel = TimingWheel::new(8);
        wheel.drain_until(10, |_, _: u64| {});
        wheel.push(9, 0u64);
    }
}
