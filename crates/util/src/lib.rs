//! # memcomm-util — dependency-free support code
//!
//! The reproduction runs in fully offline environments, so everything that
//! would normally come from a crates.io dependency lives here instead:
//!
//! * [`json`] — a small JSON value type with deterministic pretty rendering
//!   and a recursive-descent parser (replaces `serde`/`serde_json`);
//! * [`rng`] — splitmix64-based deterministic pseudo-randomness with
//!   shuffling and range helpers (replaces `rand`);
//! * [`par`] — an order-preserving scoped-thread parallel map plus a
//!   process-wide default worker count (replaces `rayon` for our fan-out
//!   needs);
//! * [`check`] — a tiny property-test harness over [`rng`] (replaces
//!   `proptest` for the repository's property tiers);
//! * [`arena`] — a freelist slab with intrusive links (replaces `slab`);
//! * [`wheel`] — a cycle-bucketed timing wheel for conservative-window
//!   event schedulers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod backoff;
pub mod check;
pub mod json;
pub mod par;
pub mod rng;
pub mod wheel;
