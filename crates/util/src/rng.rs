//! Deterministic pseudo-randomness: splitmix64 with range, shuffle and
//! choice helpers. Every consumer passes an explicit seed, so simulations
//! and tests are reproducible by construction.

/// A splitmix64 generator. Small state, good distribution, and trivially
/// seedable — exactly what deterministic simulations and property tests
/// need (cryptographic quality is a non-goal).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// A vector of `len` values drawn from `f`.
    pub fn vec<T>(&mut self, len: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_inclusive_exclusive() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.range_u64(5, 8);
            assert!((5..8).contains(&v));
            let f = rng.range_f64(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(3);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(xs, sorted, "astronomically unlikely to stay sorted");
    }

    #[test]
    fn bool_hits_both_sides() {
        let mut rng = Rng::new(11);
        let trues = (0..1000).filter(|_| rng.bool()).count();
        assert!((300..700).contains(&trues));
    }
}
