//! Order-preserving parallel map over scoped threads, plus a process-wide
//! default worker count.
//!
//! The sweep engine fans independent simulation points out across cores
//! with [`par_map`]. Results come back in input order regardless of worker
//! scheduling, so a parallel sweep is bit-identical to the serial one —
//! the property the equivalence tests assert.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(1);

/// A context captured on the calling thread for re-installation inside
/// every [`par_map`] worker — the hook higher layers (the observability
/// crate) use to make thread-local run state survive the fan-out without
/// threading handles through every call signature.
pub trait CrossThread: Send + Sync {
    /// Installs the captured context on the current worker thread; the
    /// returned guard uninstalls it when dropped at worker exit.
    fn install(&self) -> Box<dyn std::any::Any>;
}

/// Signature of the capture hook: called on the *calling* thread once per
/// parallel [`par_map`], returning `None` when there is nothing to carry
/// (the common case — workers then start with pristine thread state).
pub type CaptureFn = fn() -> Option<Box<dyn CrossThread>>;

static PROPAGATOR: OnceLock<CaptureFn> = OnceLock::new();

/// Registers the process-wide context propagator. The first registration
/// wins; later calls are ignored (the hook is a process singleton, set
/// once by whichever observability layer initialises first).
pub fn set_propagator(capture: CaptureFn) {
    let _ = PROPAGATOR.set(capture);
}

/// Sets the process-wide default worker count used by [`par_map_auto`].
/// `0` or `1` mean serial execution.
pub fn set_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// The current process-wide default worker count.
pub fn jobs() -> usize {
    DEFAULT_JOBS.load(Ordering::Relaxed)
}

/// A reasonable worker count for this host.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` with up to `jobs` worker threads, returning the
/// results in input order. With `jobs <= 1` (or one item) this runs inline
/// on the calling thread, so the serial path involves no threading at all.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let carried = PROPAGATOR.get().and_then(|capture| capture());
    let carried = carried.as_deref();
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let _context = carried.map(CrossThread::install);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                // Re-raise the worker's own payload so callers catching the
                // panic see the original message, not a generic wrapper.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

/// [`par_map`] with the process-wide default worker count.
pub fn par_map_auto<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map(jobs(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, &items, |&x| x * x);
        let parallel = par_map(8, &items, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[100], 10_000);
    }

    #[test]
    fn handles_edge_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |&x| x + 1), vec![8]);
        assert_eq!(par_map(16, &[1u32, 2], |&x| x), vec![1, 2]);
    }

    #[test]
    fn default_jobs_round_trip() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert_eq!(jobs(), 1, "zero clamps to serial");
        set_jobs(1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(4, &items, |&x| {
            assert!(x != 33, "boom");
            x
        });
    }
}
