//! Order-preserving parallel map over scoped threads, plus a process-wide
//! default worker count.
//!
//! The sweep engine fans independent simulation points out across cores
//! with [`par_map`]. Results come back in input order regardless of worker
//! scheduling, so a parallel sweep is bit-identical to the serial one —
//! the property the equivalence tests assert.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(1);

/// A context captured on the calling thread for re-installation inside
/// every [`par_map`] worker — the hook higher layers (the observability
/// crate) use to make thread-local run state survive the fan-out without
/// threading handles through every call signature.
pub trait CrossThread: Send + Sync {
    /// Installs the captured context on the current worker thread; the
    /// returned guard uninstalls it when dropped at worker exit.
    fn install(&self) -> Box<dyn std::any::Any>;
}

/// Signature of the capture hook: called on the *calling* thread once per
/// parallel [`par_map`], returning `None` when there is nothing to carry
/// (the common case — workers then start with pristine thread state).
pub type CaptureFn = fn() -> Option<Box<dyn CrossThread>>;

static PROPAGATOR: OnceLock<CaptureFn> = OnceLock::new();

/// Registers the process-wide context propagator. The first registration
/// wins; later calls are ignored (the hook is a process singleton, set
/// once by whichever observability layer initialises first).
pub fn set_propagator(capture: CaptureFn) {
    let _ = PROPAGATOR.set(capture);
}

/// Sets the process-wide default worker count used by [`par_map_auto`].
/// `0` or `1` mean serial execution.
pub fn set_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// The current process-wide default worker count.
pub fn jobs() -> usize {
    DEFAULT_JOBS.load(Ordering::Relaxed)
}

/// A reasonable worker count for this host.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` with up to `jobs` worker threads, returning the
/// results in input order. With `jobs <= 1` (or one item) this runs inline
/// on the calling thread, so the serial path involves no threading at all.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_chunked(jobs, 1, items, f)
}

/// [`par_map`] with work handed out in `chunk`-sized blocks: each
/// `fetch_add` claims `chunk` consecutive items instead of one. With many
/// cheap items (the engine fanning hundreds of shards out every
/// conservative window) per-item claiming turns the shared counter into
/// the bottleneck; chunking amortizes it while keeping the same
/// work-stealing balance between blocks. Results still come back in input
/// order, and `chunk = 1` is exactly [`par_map`].
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn par_map_chunked<T, R, F>(jobs: usize, chunk: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = chunk.max(1);
    let next = AtomicUsize::new(0);
    let carried = PROPAGATOR.get().and_then(|capture| capture());
    let carried = carried.as_deref();
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let _context = carried.map(CrossThread::install);
                    let mut out = Vec::new();
                    loop {
                        let lo = next.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= items.len() {
                            break;
                        }
                        let hi = (lo + chunk).min(items.len());
                        for (i, item) in items[lo..hi].iter().enumerate() {
                            out.push((lo + i, f(item)));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                // Re-raise the worker's own payload so callers catching the
                // panic see the original message, not a generic wrapper.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index computed exactly once"))
        .collect()
}

/// [`par_map`] with the process-wide default worker count.
pub fn par_map_auto<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map(jobs(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, &items, |&x| x * x);
        let parallel = par_map(8, &items, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[100], 10_000);
    }

    #[test]
    fn chunked_matches_per_item() {
        let items: Vec<u64> = (0..1003).collect();
        let serial = par_map(1, &items, |&x| x * 3);
        for chunk in [1, 2, 7, 64, 2048] {
            assert_eq!(par_map_chunked(5, chunk, &items, |&x| x * 3), serial);
        }
        // A zero chunk degrades to per-item claiming, never a spin.
        assert_eq!(par_map_chunked(3, 0, &items, |&x| x * 3), serial);
    }

    #[test]
    fn handles_edge_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |&x| x + 1), vec![8]);
        assert_eq!(par_map(16, &[1u32, 2], |&x| x), vec![1, 2]);
    }

    #[test]
    fn default_jobs_round_trip() {
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert_eq!(jobs(), 1, "zero clamps to serial");
        set_jobs(1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(4, &items, |&x| {
            assert!(x != 33, "boom");
            x
        });
    }
}
