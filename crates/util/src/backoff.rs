//! Deterministic exponential backoff, shared by every retry layer.
//!
//! One closed-form schedule serves the resilient transfer protocol
//! (`commops::protocol`, which times out pending frames) and the network
//! engine's link-level retransmits: attempt `k` waits
//! `base · factor^k` saturating at `max`. The function is total — any
//! combination of arguments returns a finite value without overflow — so
//! callers can feed it fault-plan extremes (factor `u32::MAX`, attempt
//! counts in the thousands) and still get a deterministic, bounded wait.

/// The wait before retry `attempt` (0-based) under an exponential schedule
/// starting at `base`, multiplying by `factor` per attempt, saturating at
/// `max`. `factor` values below 1 behave as 1 (a constant schedule); a
/// `base` of 0 yields 0 forever (retry immediately).
pub fn exp_backoff(base: u64, factor: u64, max: u64, attempt: u32) -> u64 {
    let factor = factor.max(1);
    let mut t = base;
    for _ in 0..attempt {
        t = t.saturating_mul(factor);
        if t >= max {
            return max;
        }
    }
    t.min(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_geometrically_until_the_cap() {
        assert_eq!(exp_backoff(8, 2, 1 << 20, 0), 8);
        assert_eq!(exp_backoff(8, 2, 1 << 20, 1), 16);
        assert_eq!(exp_backoff(8, 2, 1 << 20, 5), 256);
        assert_eq!(exp_backoff(8, 2, 100, 5), 100, "caps at max");
    }

    #[test]
    fn zero_base_means_immediate_retry() {
        for attempt in [0u32, 1, 17, 1000] {
            assert_eq!(exp_backoff(0, 2, u64::MAX, attempt), 0);
        }
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        // A huge factor at a huge attempt count must terminate at max, not
        // wrap or spin.
        assert_eq!(exp_backoff(3, u64::from(u32::MAX), 1 << 62, 100), 1 << 62);
        assert_eq!(exp_backoff(u64::MAX, 2, u64::MAX, 50), u64::MAX);
    }

    #[test]
    fn factor_below_one_is_constant() {
        for attempt in [0u32, 3, 9] {
            assert_eq!(exp_backoff(42, 0, 1 << 30, attempt), 42);
        }
    }
}
