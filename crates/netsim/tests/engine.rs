//! Fuzzed integration tests of the discrete-event network engine: random
//! traffic on random small topologies must always drain — no deadlock, no
//! wedged watchdog, every injected word delivered — and the event order
//! must not depend on the worker count.

use memcomm_memsim::node::NodeParams;
use memcomm_netsim::engine::{run_flows, run_schedule, EngineConfig};
use memcomm_netsim::link::LinkParams;
use memcomm_netsim::topology::Topology;
use memcomm_netsim::traffic::{self, Flow};
use memcomm_util::check::forall;
use memcomm_util::rng::Rng;

fn random_topology(rng: &mut Rng) -> Topology {
    let ndims = rng.range_usize(1, 4);
    let dims: Vec<u32> = (0..ndims).map(|_| rng.range_u32(1, 5)).collect();
    if rng.bool() {
        Topology::torus(&dims)
    } else {
        Topology::mesh(&dims)
    }
}

fn fuzz_cfg(rng: &mut Rng) -> EngineConfig {
    let link = LinkParams {
        bytes_per_cycle: rng.range_f64(1.0, 9.0),
        packet_words: 16,
        header_bytes: 8,
        adp_extra_bytes: 8,
        latency_cycles: rng.range_u64(1, 25),
        congestion: 1.0,
    };
    let mut cfg = EngineConfig::new(link, NodeParams::default());
    cfg.nodes_per_port = rng.range_u32(1, 3);
    cfg.vc_slots = rng.range_u32(2, 65);
    cfg.source_word_cycles = rng.range_u64(0, 4);
    cfg.drain_word_cycles = rng.range_u64(0, 4);
    cfg.address_data_pairs = rng.bool();
    cfg.jobs = 1;
    cfg
}

fn random_flows(rng: &mut Rng, topo: &Topology) -> Vec<Flow> {
    let n = topo.len();
    (0..rng.range_usize(0, 14))
        .map(|_| Flow {
            src: rng.range_usize(0, n),
            dst: rng.range_usize(0, n),
            bytes: rng.range_u64(0, 40 * 8),
        })
        .collect()
}

/// Random flow sets on random topologies always drain, watchdog-clean:
/// every word that enters the network leaves it, whatever the shape, the
/// buffering, the pacing, or the port sharing.
#[test]
fn random_traffic_always_drains() {
    forall("random_traffic_always_drains", 192, |rng| {
        let topo = random_topology(rng);
        let cfg = fuzz_cfg(rng);
        let flows = random_flows(rng, &topo);
        let expected: u64 = flows
            .iter()
            .filter(|f| f.src != f.dst)
            .map(|f| f.bytes.div_ceil(8))
            .sum();
        let out = run_flows(&topo, &flows, &cfg)
            .unwrap_or_else(|e| panic!("engine failed on {:?}: {e}", topo.dims()));
        assert_eq!(out.words, expected, "every word must drain");
        assert_eq!(out.dropped, 0, "no faults configured");
        if expected == 0 {
            assert_eq!(out.cycles, 0);
        }
    });
}

/// Multi-round schedules drain too, and the schedule digest is reproducible
/// run to run (same inputs, same event order).
#[test]
fn random_schedules_drain_and_replay() {
    forall("random_schedules_drain_and_replay", 48, |rng| {
        let topo = random_topology(rng);
        let cfg = fuzz_cfg(rng);
        let rounds: Vec<Vec<Flow>> = (0..rng.range_usize(1, 4))
            .map(|_| random_flows(rng, &topo))
            .collect();
        let a = run_schedule(&topo, &rounds, &cfg).expect("schedule runs");
        let b = run_schedule(&topo, &rounds, &cfg).expect("schedule replays");
        assert_eq!(a.digest, b.digest, "schedule digest must replay");
        assert_eq!(a.cycles, b.cycles);
    });
}

/// The conservative-window fan-out is invisible: any worker count produces
/// the same digest, cycle count, and aggregate counters as a serial run,
/// on every fuzzed topology.
#[test]
fn worker_count_never_changes_the_event_order() {
    forall("worker_count_never_changes_the_event_order", 48, |rng| {
        let topo = random_topology(rng);
        let mut cfg = fuzz_cfg(rng);
        cfg.record_events = true;
        let flows = random_flows(rng, &topo);
        cfg.jobs = 1;
        let serial = run_flows(&topo, &flows, &cfg).expect("serial run");
        for jobs in [2, 5] {
            cfg.jobs = jobs;
            let par = run_flows(&topo, &flows, &cfg).expect("parallel run");
            assert_eq!(par.digest, serial.digest, "digest at jobs={jobs}");
            assert_eq!(par.events, serial.events, "events at jobs={jobs}");
            assert_eq!(par.cycles, serial.cycles);
            assert_eq!(par.flit_hops, serial.flit_hops);
        }
    });
}

/// A fuzzed topology scaled up to 512 nodes (same construction as the
/// wheel-vs-heap scale tier): random dimensions grown under the node cap,
/// tail stretched so the big sizes are actually drawn.
fn random_scaled_topology(rng: &mut Rng) -> Topology {
    let mut dims: Vec<u32> = Vec::new();
    let mut nodes = 1usize;
    for _ in 0..rng.range_usize(1, 4) {
        let d = rng.range_u32(2, 9);
        if nodes * d as usize > 512 {
            break;
        }
        nodes *= d as usize;
        dims.push(d);
    }
    if dims.is_empty() {
        dims.push(rng.range_u32(2, 9));
        nodes = *dims.last().unwrap() as usize;
    }
    while nodes * 2 <= 512 && rng.bool() {
        *dims.last_mut().unwrap() *= 2;
        nodes *= 2;
    }
    if rng.bool() {
        Topology::torus(&dims)
    } else {
        Topology::mesh(&dims)
    }
}

/// The scale tier: random traffic on topologies up to 512 nodes under a
/// random shard count drains watchdog-clean with exact word AND flit-hop
/// conservation (total link traversals = Σ words × routed distance), and
/// re-running the same traffic under a different worker/shard draw
/// reproduces the digest and every counter.
#[test]
fn scaled_random_traffic_drains_and_sharding_is_invisible() {
    forall(
        "scaled_random_traffic_drains_and_sharding_is_invisible",
        12,
        |rng| {
            let topo = random_scaled_topology(rng);
            let n = topo.len();
            let mut cfg = fuzz_cfg(rng);
            cfg.jobs = rng.range_usize(1, 5);
            cfg.shards = rng.range_usize(0, 24);
            let flows: Vec<Flow> = (0..rng.range_usize(n / 8, n / 2 + 2).min(96))
                .map(|_| Flow {
                    src: rng.range_usize(0, n),
                    dst: rng.range_usize(0, n),
                    bytes: rng.range_u64(0, 48 * 8),
                })
                .collect();
            let expected_words: u64 = flows
                .iter()
                .filter(|f| f.src != f.dst)
                .map(|f| f.bytes.div_ceil(8))
                .sum();
            let expected_hops: u64 = flows
                .iter()
                .filter(|f| f.src != f.dst)
                .map(|f| f.bytes.div_ceil(8) * topo.distance(f.src, f.dst))
                .sum();
            let a = run_flows(&topo, &flows, &cfg)
                .unwrap_or_else(|e| panic!("engine failed on {:?} ({n} nodes): {e}", topo.dims()));
            assert_eq!(a.words, expected_words, "word conservation at {n} nodes");
            assert_eq!(
                a.flit_hops, expected_hops,
                "flit-hop conservation at {n} nodes"
            );
            assert_eq!(a.dropped, 0, "no faults configured");
            cfg.jobs = rng.range_usize(1, 5);
            cfg.shards = rng.range_usize(0, 24);
            let b = run_flows(&topo, &flows, &cfg).expect("re-partitioned run");
            assert_eq!(b.digest, a.digest, "digest under re-partitioning");
            assert_eq!(b.cycles, a.cycles);
            assert_eq!(b.flit_hops, a.flit_hops);
            assert_eq!(b.peak_queue_depth, a.peak_queue_depth);
        },
    );
}

/// The canonical congested pattern at a canonical size: the XOR all-to-all
/// on a 16-node torus drains with conserved flit-hops — the total link
/// traversals equal the sum over flows of words × routed distance.
#[test]
fn xor_all_to_all_conserves_flit_hops() {
    let topo = Topology::torus(&[4, 4]);
    let rounds = traffic::aapc_xor_schedule(topo.len(), 16 * 8);
    let mut rng = Rng::new(11);
    let cfg = fuzz_cfg(&mut rng);
    let out = run_schedule(&topo, &rounds, &cfg).expect("schedule runs");
    let expected_hops: u64 = rounds
        .iter()
        .flatten()
        .map(|f| f.bytes.div_ceil(8) * topo.distance(f.src, f.dst))
        .sum();
    let total_hops: u64 = out.rounds.iter().map(|r| r.flit_hops).sum();
    assert_eq!(total_hops, expected_hops, "flit-hop conservation");
}
