//! Property-based tests of the interconnect substrate.

use memcomm_memsim::nic::{NetWord, TimedFifo};
use memcomm_netsim::congestion::pattern_congestion;
use memcomm_netsim::link::{Link, LinkParams, Step};
use memcomm_netsim::routing::route;
use memcomm_netsim::topology::Topology;
use memcomm_netsim::traffic;
use memcomm_util::check::forall;
use memcomm_util::rng::Rng;

fn random_topology(rng: &mut Rng) -> Topology {
    let ndims = rng.range_usize(1, 4);
    let dims: Vec<u32> = (0..ndims).map(|_| rng.range_u32(1, 6)).collect();
    if rng.bool() {
        Topology::torus(&dims)
    } else {
        Topology::mesh(&dims)
    }
}

/// Dimension-order routes are valid walks: each hop moves between topology
/// neighbours, the route starts and ends correctly, and its length equals
/// the Manhattan distance.
#[test]
fn routes_are_valid_walks() {
    forall("routes_are_valid_walks", 256, |rng| {
        let topo = random_topology(rng);
        let seed = rng.range_u64(0, 1000);
        let n = topo.len();
        let src = (seed as usize * 7) % n;
        let dst = (seed as usize * 13 + 5) % n;
        let r = route(&topo, src, dst);
        assert_eq!(r.len() as u64, topo.distance(src, dst));
        if let (Some(first), Some(last)) = (r.first(), r.last()) {
            assert_eq!(first.from, src);
            assert_eq!(last.to, dst);
        }
        for link in &r {
            assert_eq!(
                topo.distance(link.from, link.to),
                1,
                "hop must be a neighbour step"
            );
        }
        for pair in r.windows(2) {
            assert_eq!(pair[0].to, pair[1].from, "route must be contiguous");
        }
    });
}

/// Congestion factors are at least 1, and shared ports never reduce them.
#[test]
fn congestion_is_at_least_one_and_monotone_in_port_sharing() {
    forall(
        "congestion_is_at_least_one_and_monotone_in_port_sharing",
        64,
        |rng| {
            let topo = random_topology(rng);
            let k = rng.range_usize(1, 4);
            let flows = traffic::cyclic_shift(&topo, k, 64);
            let solo = pattern_congestion(&topo, &flows, 1);
            let shared = pattern_congestion(&topo, &flows, 2);
            assert!(solo.factor >= 1.0);
            assert!(shared.factor >= solo.factor);
            assert!(solo.max_link >= solo.mean_link);
        },
    );
}

/// Random permutations route every node's data somewhere distinct, and the
/// aggregate volume is conserved.
#[test]
fn permutation_traffic_is_a_bijection() {
    forall("permutation_traffic_is_a_bijection", 128, |rng| {
        let topo = random_topology(rng);
        let seed = rng.range_u64(0, 500);
        let flows = traffic::random_permutation(&topo, seed, 8);
        assert_eq!(flows.len(), topo.len());
        let mut seen = vec![false; topo.len()];
        for f in &flows {
            assert!(!seen[f.dst], "duplicate destination");
            seen[f.dst] = true;
        }
    });
}

/// The XOR all-to-all schedule covers every ordered pair exactly once for
/// any power-of-two node count.
#[test]
fn xor_schedule_is_exact_cover() {
    forall("xor_schedule_is_exact_cover", 16, |rng| {
        let log_p = rng.range_u32(1, 6);
        let p = 1usize << log_p;
        let rounds = traffic::aapc_xor_schedule(p, 8);
        assert_eq!(rounds.len(), p - 1);
        let mut pairs = std::collections::HashSet::new();
        for round in &rounds {
            for f in round {
                assert!(f.src != f.dst);
                assert!(pairs.insert((f.src, f.dst)), "pair repeated");
            }
        }
        assert_eq!(pairs.len(), p * (p - 1));
    });
}

/// A link conserves words and delivers them in order regardless of framing
/// mix; total wire time is at least the sum of word costs.
#[test]
fn link_conserves_and_orders() {
    forall("link_conserves_and_orders", 64, |rng| {
        let n = rng.range_usize(1, 200);
        let words = rng.vec(n, |rng| rng.bool());
        let congestion = rng.range_f64(1.0, 4.0);
        let params = LinkParams {
            bytes_per_cycle: 1.2,
            packet_words: 16,
            header_bytes: 8,
            adp_extra_bytes: 10,
            latency_cycles: 15,
            congestion,
        };
        let mut from = TimedFifo::new(words.len());
        let mut to = TimedFifo::new(words.len());
        let mut min_cycles = 0.0f64;
        for (i, &adp) in words.iter().enumerate() {
            let w = if adp {
                NetWord::addressed(i as u64 * 8, i as u64)
            } else {
                NetWord::data(i as u64)
            };
            min_cycles += params.word_cycles(&w);
            from.push(0, w).unwrap();
        }
        let mut link = Link::new(params);
        while link.moved() < words.len() as u64 {
            assert_eq!(link.step(&mut from, &mut to), Step::Progressed);
        }
        assert!(link.time() as f64 >= min_cycles.floor());
        for (i, _) in words.iter().enumerate() {
            let (_, w) = to.pop(u64::MAX / 2).expect("all words delivered");
            assert_eq!(w.data, i as u64, "delivery order");
        }
    });
}

/// Dimension-order routes are deadlock-ordered: the dimension a hop moves
/// in never decreases along the route (this is the invariant the engine's
/// virtual-channel assignment relies on), and the route is minimal (its
/// length is pinned to the Manhattan distance in `routes_are_valid_walks`).
#[test]
fn routes_are_dimension_ordered() {
    forall("routes_are_dimension_ordered", 256, |rng| {
        let topo = random_topology(rng);
        let n = topo.len();
        let src = rng.range_usize(0, n);
        let dst = rng.range_usize(0, n);
        let mut last_dim = 0usize;
        for link in route(&topo, src, dst) {
            let a = topo.coords(link.from);
            let b = topo.coords(link.to);
            let changed: Vec<usize> = (0..a.len()).filter(|&d| a[d] != b[d]).collect();
            assert_eq!(changed.len(), 1, "a hop moves in exactly one dimension");
            assert!(
                changed[0] >= last_dim,
                "dimension order violated: {} after {}",
                changed[0],
                last_dim
            );
            last_dim = changed[0];
        }
    });
}

/// `Topology::distance` is a metric on random torus/mesh shapes: zero only
/// on the diagonal, symmetric, and obeying the triangle inequality.
#[test]
fn distance_is_a_metric() {
    forall("distance_is_a_metric", 256, |rng| {
        let topo = random_topology(rng);
        let n = topo.len();
        let a = rng.range_usize(0, n);
        let b = rng.range_usize(0, n);
        let c = rng.range_usize(0, n);
        assert_eq!(topo.distance(a, a), 0);
        assert_eq!((topo.distance(a, b) == 0), (a == b));
        assert_eq!(topo.distance(a, b), topo.distance(b, a), "symmetry");
        assert!(
            topo.distance(a, c) <= topo.distance(a, b) + topo.distance(b, c),
            "triangle inequality"
        );
    });
}

/// Link loads conserve traffic: the total bytes crossing all links equal
/// the sum over flows of size × routed distance (every byte is counted on
/// every link it traverses, and nowhere else).
#[test]
fn link_loads_conserve_flit_hops() {
    use memcomm_netsim::congestion::link_loads;
    forall("link_loads_conserve_flit_hops", 128, |rng| {
        let topo = random_topology(rng);
        let n = topo.len();
        let flows: Vec<traffic::Flow> = (0..rng.range_usize(0, 12))
            .map(|_| traffic::Flow {
                src: rng.range_usize(0, n),
                dst: rng.range_usize(0, n),
                bytes: rng.range_u64(0, 512),
            })
            .collect();
        let loads = link_loads(&topo, &flows);
        let total: u64 = loads.values().sum();
        let expected: u64 = flows
            .iter()
            .map(|f| f.bytes * topo.distance(f.src, f.dst))
            .sum();
        assert_eq!(total, expected, "byte-hops must be conserved");
    });
}
