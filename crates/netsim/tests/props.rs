//! Property-based tests of the interconnect substrate.

use memcomm_memsim::nic::{NetWord, TimedFifo};
use memcomm_netsim::congestion::pattern_congestion;
use memcomm_netsim::link::{Link, LinkParams, Step};
use memcomm_netsim::routing::route;
use memcomm_netsim::topology::Topology;
use memcomm_netsim::traffic;
use proptest::prelude::*;

fn topo_strategy() -> impl Strategy<Value = Topology> {
    (
        proptest::collection::vec(1u32..6, 1..4),
        proptest::bool::ANY,
    )
        .prop_map(|(dims, wrap)| {
            if wrap {
                Topology::torus(&dims)
            } else {
                Topology::mesh(&dims)
            }
        })
}

proptest! {
    /// Dimension-order routes are valid walks: each hop moves between
    /// topology neighbours, the route starts and ends correctly, and its
    /// length equals the Manhattan distance.
    #[test]
    fn routes_are_valid_walks(topo in topo_strategy(), seed in 0u64..1000) {
        let n = topo.len();
        let src = (seed as usize * 7) % n;
        let dst = (seed as usize * 13 + 5) % n;
        let r = route(&topo, src, dst);
        prop_assert_eq!(r.len() as u64, topo.distance(src, dst));
        if let (Some(first), Some(last)) = (r.first(), r.last()) {
            prop_assert_eq!(first.from, src);
            prop_assert_eq!(last.to, dst);
        }
        for link in &r {
            prop_assert_eq!(topo.distance(link.from, link.to), 1, "hop must be a neighbour step");
        }
        for pair in r.windows(2) {
            prop_assert_eq!(pair[0].to, pair[1].from, "route must be contiguous");
        }
    }

    /// Congestion factors are at least 1, and shared ports never reduce
    /// them.
    #[test]
    fn congestion_is_at_least_one_and_monotone_in_port_sharing(
        topo in topo_strategy(),
        k in 1usize..4,
    ) {
        let flows = traffic::cyclic_shift(&topo, k, 64);
        let solo = pattern_congestion(&topo, &flows, 1);
        let shared = pattern_congestion(&topo, &flows, 2);
        prop_assert!(solo.factor >= 1.0);
        prop_assert!(shared.factor >= solo.factor);
        prop_assert!(solo.max_link >= solo.mean_link);
    }

    /// Random permutations route every node's data somewhere distinct, and
    /// the aggregate volume is conserved.
    #[test]
    fn permutation_traffic_is_a_bijection(topo in topo_strategy(), seed in 0u64..500) {
        let flows = traffic::random_permutation(&topo, seed, 8);
        prop_assert_eq!(flows.len(), topo.len());
        let mut seen = vec![false; topo.len()];
        for f in &flows {
            prop_assert!(!seen[f.dst], "duplicate destination");
            seen[f.dst] = true;
        }
    }

    /// The XOR all-to-all schedule covers every ordered pair exactly once
    /// for any power-of-two node count.
    #[test]
    fn xor_schedule_is_exact_cover(log_p in 1u32..6) {
        let p = 1usize << log_p;
        let rounds = traffic::aapc_xor_schedule(p, 8);
        prop_assert_eq!(rounds.len(), p - 1);
        let mut pairs = std::collections::HashSet::new();
        for round in &rounds {
            for f in round {
                prop_assert!(f.src != f.dst);
                prop_assert!(pairs.insert((f.src, f.dst)), "pair repeated");
            }
        }
        prop_assert_eq!(pairs.len(), p * (p - 1));
    }

    /// A link conserves words and delivers them in order regardless of
    /// framing mix; total wire time is at least the sum of word costs.
    #[test]
    fn link_conserves_and_orders(
        words in proptest::collection::vec(proptest::bool::ANY, 1..200),
        congestion in 1.0f64..4.0,
    ) {
        let params = LinkParams {
            bytes_per_cycle: 1.2,
            packet_words: 16,
            header_bytes: 8,
            adp_extra_bytes: 10,
            latency_cycles: 15,
            congestion,
        };
        let mut from = TimedFifo::new(words.len());
        let mut to = TimedFifo::new(words.len());
        let mut min_cycles = 0.0f64;
        for (i, &adp) in words.iter().enumerate() {
            let w = if adp {
                NetWord::addressed(i as u64 * 8, i as u64)
            } else {
                NetWord::data(i as u64)
            };
            min_cycles += params.word_cycles(&w);
            from.push(0, w).unwrap();
        }
        let mut link = Link::new(params);
        while link.moved() < words.len() as u64 {
            prop_assert_eq!(link.step(&mut from, &mut to), Step::Progressed);
        }
        prop_assert!(link.time() as f64 >= min_cycles.floor());
        for (i, _) in words.iter().enumerate() {
            let (_, w) = to.pop(u64::MAX / 2).expect("all words delivered");
            prop_assert_eq!(w.data, i as u64, "delivery order");
        }
    }
}
