//! Differential tier: the production timing-wheel/lane scheduler against
//! the retired `BinaryHeap` scheduler it replaced.
//!
//! Both schedulers share one window core ([`EngineConfig::reference_scheduler`]
//! selects the queue representation), so the only way they can diverge is a
//! bug in the wheel, the lanes, or the arena. These tests drive both over
//! identical seeded traffic — random topologies, latencies, buffering, port
//! sharing, pacing, and fault plans — and demand the *entire observable
//! outcome* match: the recorded event stream, the FNV digest, and every
//! aggregate counter, including the peak queue depth both report.

use memcomm_memsim::fault::{FaultConfig, FaultPlan};
use memcomm_memsim::node::NodeParams;
use memcomm_netsim::adversary::{self, AdversaryConfig, AdversaryKind};
use memcomm_netsim::engine::{run_flows, run_schedule, EngineConfig, EngineOutcome, RetryPolicy};
use memcomm_netsim::link::LinkParams;
use memcomm_netsim::topology::Topology;
use memcomm_netsim::traffic::Flow;
use memcomm_util::check::forall;
use memcomm_util::rng::Rng;

fn random_topology(rng: &mut Rng) -> Topology {
    let ndims = rng.range_usize(1, 4);
    let dims: Vec<u32> = (0..ndims).map(|_| rng.range_u32(1, 5)).collect();
    if rng.bool() {
        Topology::torus(&dims)
    } else {
        Topology::mesh(&dims)
    }
}

fn fuzz_cfg(rng: &mut Rng) -> EngineConfig {
    let link = LinkParams {
        bytes_per_cycle: rng.range_f64(1.0, 9.0),
        packet_words: 16,
        header_bytes: 8,
        adp_extra_bytes: 8,
        latency_cycles: rng.range_u64(1, 25),
        congestion: 1.0,
    };
    let mut cfg = EngineConfig::new(link, NodeParams::default());
    cfg.nodes_per_port = rng.range_u32(1, 3);
    cfg.vc_slots = rng.range_u32(2, 65);
    cfg.source_word_cycles = rng.range_u64(0, 4);
    cfg.drain_word_cycles = rng.range_u64(0, 4);
    cfg.address_data_pairs = rng.bool();
    cfg.record_events = true;
    cfg.record_latency = rng.bool();
    // Half the cases arm the telemetry sampler at a random tick, so every
    // differential below also proves sampling never perturbs outcomes and
    // that both substrates roll up byte-identical telemetry.
    cfg.sample_every = if rng.bool() { rng.range_u64(1, 129) } else { 0 };
    cfg.jobs = 1;
    // A third of the cases run under a seeded fault plan, exercising the
    // retry (prepend) and jitter (overflow-bucket) paths of both schedulers;
    // some of those also draw transient link-outage windows and a real
    // backoff-bearing retry policy, covering the degraded paths too.
    if rng.range_u64(0, 3) == 0 {
        let mut fc = FaultConfig {
            seed: rng.range_u64(1, u64::MAX),
            rate: rng.range_f64(0.0, 0.12),
            max_jitter_cycles: rng.range_u64(1, 64),
            ..FaultConfig::default()
        };
        if rng.range_u64(0, 3) == 0 {
            fc.outage_window_rate = rng.range_f64(0.0, 0.5);
            fc.outage_window_cycles = rng.range_u64(16, 512);
            fc.outage_period_cycles = rng.range_u64(512, 4096);
        }
        cfg.fault = FaultPlan::new(fc);
        if rng.range_u64(0, 2) == 0 {
            cfg.retry = RetryPolicy {
                max_retries: rng.range_u32(0, 16),
                backoff_base_cycles: rng.range_u64(0, 256),
                backoff_factor: rng.range_u32(1, 4),
                max_backoff_cycles: 1 << 12,
            };
        }
    }
    cfg
}

fn random_flows(rng: &mut Rng, topo: &Topology) -> Vec<Flow> {
    let n = topo.len();
    (0..rng.range_usize(0, 14))
        .map(|_| Flow {
            src: rng.range_usize(0, n),
            dst: rng.range_usize(0, n),
            bytes: rng.range_u64(0, 64 * 8),
        })
        .collect()
}

fn assert_outcomes_match(wheel: &EngineOutcome, heap: &EngineOutcome, ctx: &str) {
    assert_eq!(wheel.digest, heap.digest, "digest ({ctx})");
    assert_eq!(wheel.events, heap.events, "event stream ({ctx})");
    assert_eq!(wheel.cycles, heap.cycles, "cycles ({ctx})");
    assert_eq!(wheel.words, heap.words, "words ({ctx})");
    assert_eq!(wheel.flit_hops, heap.flit_hops, "flit hops ({ctx})");
    assert_eq!(wheel.windows, heap.windows, "windows ({ctx})");
    assert_eq!(wheel.dropped, heap.dropped, "dropped ({ctx})");
    assert_eq!(wheel.corrupted, heap.corrupted, "corrupted ({ctx})");
    assert_eq!(wheel.retried, heap.retried, "retried ({ctx})");
    assert_eq!(wheel.abandoned, heap.abandoned, "abandoned ({ctx})");
    assert_eq!(wheel.degraded, heap.degraded, "degraded accounting ({ctx})");
    assert_eq!(
        wheel.flow_latency, heap.flow_latency,
        "flow latency ({ctx})"
    );
    assert_eq!(
        wheel.peak_queue_depth, heap.peak_queue_depth,
        "peak queue depth ({ctx})"
    );
    assert_eq!(wheel.telemetry, heap.telemetry, "telemetry ({ctx})");
}

/// Single-shot flow sets: the wheel scheduler's event order, digest, and
/// counters are indistinguishable from the retired heap scheduler's across
/// random topology, latency, and buffering — with and without faults.
#[test]
fn wheel_matches_heap_on_random_traffic() {
    forall("wheel_matches_heap_on_random_traffic", 200, |rng| {
        let topo = random_topology(rng);
        let mut cfg = fuzz_cfg(rng);
        let flows = random_flows(rng, &topo);
        cfg.reference_scheduler = false;
        let wheel = run_flows(&topo, &flows, &cfg).expect("wheel scheduler runs");
        cfg.reference_scheduler = true;
        let heap = run_flows(&topo, &flows, &cfg).expect("heap scheduler runs");
        let ctx = format!("dims {:?} vc {}", topo.dims(), cfg.vc_slots);
        assert_outcomes_match(&wheel, &heap, &ctx);
    });
}

/// Multi-round schedules: per-round outcomes and the schedule-level digest
/// and peak depth agree between the two schedulers.
#[test]
fn wheel_matches_heap_on_multi_round_schedules() {
    forall("wheel_matches_heap_on_multi_round_schedules", 48, |rng| {
        let topo = random_topology(rng);
        let mut cfg = fuzz_cfg(rng);
        let rounds: Vec<Vec<Flow>> = (0..rng.range_usize(1, 4))
            .map(|_| random_flows(rng, &topo))
            .collect();
        cfg.reference_scheduler = false;
        let wheel = run_schedule(&topo, &rounds, &cfg).expect("wheel schedule runs");
        cfg.reference_scheduler = true;
        let heap = run_schedule(&topo, &rounds, &cfg).expect("heap schedule runs");
        assert_eq!(wheel.digest, heap.digest, "schedule digest");
        assert_eq!(wheel.cycles, heap.cycles, "schedule cycles");
        assert_eq!(
            wheel.peak_queue_depth, heap.peak_queue_depth,
            "schedule peak depth"
        );
        assert_eq!(wheel.rounds.len(), heap.rounds.len());
        for (i, (w, h)) in wheel.rounds.iter().zip(&heap.rounds).enumerate() {
            assert_outcomes_match(w, h, &format!("round {i}"));
        }
    });
}

/// A fuzzed topology scaled up to 512 nodes: grows random dimensions while
/// the node count allows, then stretches the tail so the big sizes are
/// actually reached.
fn random_scaled_topology(rng: &mut Rng) -> Topology {
    let mut dims: Vec<u32> = Vec::new();
    let mut nodes = 1usize;
    for _ in 0..rng.range_usize(1, 4) {
        let d = rng.range_u32(2, 9);
        if nodes * d as usize > 512 {
            break;
        }
        nodes *= d as usize;
        dims.push(d);
    }
    if dims.is_empty() {
        dims.push(rng.range_u32(2, 9));
        nodes = *dims.last().unwrap() as usize;
    }
    while nodes * 2 <= 512 && rng.bool() {
        *dims.last_mut().unwrap() *= 2;
        nodes *= 2;
    }
    if rng.bool() {
        Topology::torus(&dims)
    } else {
        Topology::mesh(&dims)
    }
}

fn random_scaled_flows(rng: &mut Rng, topo: &Topology) -> Vec<Flow> {
    let n = topo.len();
    let count = rng.range_usize(n / 8, n / 2 + 2).min(96);
    (0..count)
        .map(|_| Flow {
            src: rng.range_usize(0, n),
            dst: rng.range_usize(0, n),
            bytes: rng.range_u64(0, 48 * 8),
        })
        .collect()
}

/// The scale tier of the differential: topologies up to 512 nodes, each
/// scheduler run under an independently drawn worker count AND shard
/// count. Scheduler equivalence and partition invariance are one property
/// here — any disagreement between the window cores, the stage-major fold,
/// or the load-balanced partitioner shows up as a digest or counter
/// mismatch.
#[test]
fn wheel_matches_heap_at_scale_under_random_sharding() {
    forall(
        "wheel_matches_heap_at_scale_under_random_sharding",
        12,
        |rng| {
            let topo = random_scaled_topology(rng);
            let mut cfg = fuzz_cfg(rng);
            // Full event streams get large at 512 nodes; the digest covers the
            // same ordering information for the big draws.
            cfg.record_events = topo.len() <= 128;
            let flows = random_scaled_flows(rng, &topo);
            cfg.reference_scheduler = false;
            cfg.jobs = rng.range_usize(1, 5);
            cfg.shards = rng.range_usize(0, 24);
            let wheel = run_flows(&topo, &flows, &cfg).expect("wheel scheduler runs at scale");
            cfg.reference_scheduler = true;
            cfg.jobs = rng.range_usize(1, 5);
            cfg.shards = rng.range_usize(0, 24);
            let heap = run_flows(&topo, &flows, &cfg).expect("heap scheduler runs at scale");
            let ctx = format!(
                "dims {:?} ({} nodes), {} flows",
                topo.dims(),
                topo.len(),
                flows.len()
            );
            assert_outcomes_match(&wheel, &heap, &ctx);
        },
    );
}

/// The heap reference path is itself worker-count invariant (the shared
/// window core does the sharding), so the differential holds at any jobs.
#[test]
fn heap_reference_is_worker_count_invariant() {
    forall("heap_reference_is_worker_count_invariant", 24, |rng| {
        let topo = random_topology(rng);
        let mut cfg = fuzz_cfg(rng);
        cfg.reference_scheduler = true;
        let flows = random_flows(rng, &topo);
        let serial = run_flows(&topo, &flows, &cfg).expect("serial heap run");
        cfg.jobs = 3;
        let par = run_flows(&topo, &flows, &cfg).expect("parallel heap run");
        assert_outcomes_match(&par, &serial, "jobs 3 vs 1");
    });
}

/// Retry storms under faulty links: adversarial spray traffic over a
/// drop-heavy plan with transient outage windows and a tight, real-backoff
/// retry budget. Drops, retransmissions, abandonments, the degraded
/// accounting, and the per-class latency tails must all agree between the
/// two scheduler substrates, exactly — this is the path where the lane
/// prepend, the wheel's overflow bucket, and the outage calendar all
/// interact.
#[test]
fn wheel_matches_heap_under_retry_storms() {
    forall("wheel_matches_heap_under_retry_storms", 10, |rng| {
        let topo = Topology::torus(&[4, rng.range_u32(2, 5)]);
        let traffic = adversary::generate(
            &topo,
            &AdversaryConfig {
                kind: AdversaryKind::RetryStorm,
                seed: rng.range_u64(1, u64::MAX),
                base_bytes: 128,
                ..AdversaryConfig::default()
            },
        );
        let mut cfg = fuzz_cfg(rng);
        cfg.record_latency = true;
        cfg.flow_classes = traffic.classes.clone();
        cfg.fault = FaultPlan::new(FaultConfig {
            seed: rng.range_u64(1, u64::MAX),
            rate: rng.range_f64(0.15, 0.45),
            max_jitter_cycles: 16,
            outage_window_rate: 0.25,
            outage_window_cycles: 128,
            outage_period_cycles: 1024,
            ..FaultConfig::default()
        });
        cfg.retry = RetryPolicy {
            max_retries: rng.range_u32(1, 6),
            backoff_base_cycles: 32,
            backoff_factor: 2,
            max_backoff_cycles: 1 << 12,
        };
        cfg.reference_scheduler = false;
        let wheel = run_flows(&topo, &traffic.flows, &cfg).expect("wheel storm run");
        cfg.reference_scheduler = true;
        let heap = run_flows(&topo, &traffic.flows, &cfg).expect("heap storm run");
        assert!(wheel.dropped > 0, "the storm must actually drop words");
        assert_eq!(
            wheel.dropped,
            wheel.retried + wheel.abandoned,
            "every drop retried or abandoned"
        );
        assert_outcomes_match(&wheel, &heap, "retry storm");
    });
}
