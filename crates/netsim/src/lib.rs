//! # memcomm-netsim — interconnect simulator
//!
//! The network side of the reproduction: mesh/torus topologies with
//! dimension-order routing, the traffic patterns of the paper's kernels
//! (cyclic shift, transpose/all-to-all-personalized, random permutations,
//! irregular graph exchanges), flow-level congestion analysis, and a
//! word-granular [`Link`](link::Link) used by the end-to-end co-simulations.
//!
//! The paper's model deliberately reduces the network to a bandwidth at a
//! given *congestion* factor (Table 4): "congestion two means a network link
//! is traversed by twice as much data as it can support at peak speed."
//! This crate both reproduces that reduction (the [`link`] model scales its
//! bandwidth by a congestion factor and distinguishes data-only from
//! address-data-pair framing) and derives congestion factors from real
//! traffic patterns on real topologies ([`congestion`]), including the
//! T3D's quirk that two adjacent nodes share one network port.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod barrier;
pub mod congestion;
pub mod engine;
pub mod heatmap;
pub mod link;
pub mod routing;
pub mod topology;
pub mod traffic;

pub use adversary::{AdversaryConfig, AdversaryKind, AdversaryTraffic};
pub use barrier::barrier_cycles;
pub use congestion::{pattern_congestion, CongestionReport};
pub use engine::{run_flows, run_schedule, EngineConfig, EngineOutcome};
pub use link::{Link, LinkParams};
pub use topology::{NodeId, Topology};
pub use traffic::Flow;
