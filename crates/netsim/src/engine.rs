//! Sharded discrete-event interconnect engine.
//!
//! Where [`congestion`](crate::congestion) folds a traffic pattern into a
//! closed-form factor, this module actually *runs* the pattern: one
//! [`memsim::node`](memcomm_memsim::node) per topology node feeds words
//! through its NIC FIFOs, words serialize over shared injection/ejection
//! ports (the T3D quirk that two nodes share one port falls out naturally),
//! and flits travel dimension-ordered over per-link wires guarded by
//! credit-based virtual-channel buffers with real backpressure.
//!
//! # Determinism and sharding
//!
//! The simulation advances in conservative windows of `L` cycles, where `L`
//! is the link latency: any word transmitted during window `[T, T+L)`
//! arrives no earlier than `T+L`, so every arrival of a window is known at
//! its opening barrier. Nodes are partitioned into a *fixed* set of shards
//! (aligned to port-group boundaries, independent of the worker count);
//! `jobs` only decides how many [`par_map`](memcomm_util::par::par_map)
//! workers execute the shards. Each shard's window is internally
//! sequential, shards share no mutable state, and the coordinator folds
//! their outputs in shard order — so `jobs = 1` and `jobs = N` produce
//! byte-identical event streams (the same guarantee the sweep engine
//! makes, pushed down into the event core).
//!
//! # Deadlock freedom
//!
//! Routes are dimension-ordered and minimal; each directed link carries two
//! virtual channels with the classic dateline rule: a word starts each
//! dimension on VC 0 and moves to VC 1 for the hops after it crosses that
//! dimension's wraparound link. Minimal torus routes cross a wrap at most
//! once per ring, so the channel-dependency graph is acyclic; meshes have
//! no wrap links and run entirely on VC 0. Ejection drains into the bounded
//! node `rx` FIFO, which the memory side empties unconditionally.
//!
//! # Schedulers
//!
//! Two interchangeable queue substrates drive the identical window logic:
//!
//! * the **production scheduler** (the default): the coordinator's
//!   in-flight deliveries live in a cycle-bucketed
//!   [`TimingWheel`](memcomm_util::wheel::TimingWheel) (deliveries *are*
//!   time-keyed — the barrier releases everything below `t1`), and each
//!   router queue is a set of per-flow FIFO *lanes* carved from a shared
//!   freelist [`Arena`](memcomm_util::arena::Arena), with a small lazy heap
//!   over the lane heads. Router queues are *rank*-ordered, not
//!   time-ordered, so a cycle wheel cannot express them; lanes are the
//!   rank-domain analogue — a flow's words reach any given queue in
//!   ascending rank order, so each lane is pre-sorted and the queue minimum
//!   is always a lane head. Push is `O(1)`, pop is `O(log F)` in the
//!   handful of *flows* contending a queue rather than `O(log N)` in the
//!   hundreds of queued *words*;
//! * the **reference scheduler**: the retired `BinaryHeap` implementation,
//!   kept selectable via [`EngineConfig::reference_scheduler`] so the
//!   differential tier (`tests/wheel_vs_heap.rs`) can prove, case by case,
//!   that the fast path is observably invisible — event streams, digests,
//!   and counters match byte for byte.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Mutex;

use memcomm_util::arena::{Arena, NIL};
use memcomm_util::wheel::TimingWheel;

use memcomm_memsim::clock::Cycle;
use memcomm_memsim::error::{SimError, SimResult};
use memcomm_memsim::fault::{site, FaultPlan, LinkFault};
use memcomm_memsim::nic::NetWord;
use memcomm_memsim::node::{Node, NodeParams, Watchdog};
use memcomm_obs::Obs;
use memcomm_util::par;

use crate::link::LinkParams;
use crate::routing::{route, LinkId};
use crate::topology::Topology;
use crate::traffic::Flow;

/// Engine name used in error diagnostics.
const ENGINE: &str = "netsim-engine";

/// Maximum number of shards the node set is split into. Fixed — the shard
/// partition must not depend on the worker count, or event order would.
const MAX_SHARDS: usize = 8;

/// FNV-1a offset basis, the digest seed.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv_fold(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(FNV_PRIME)
}

/// What happened at a simulated resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A word left a node's `tx` FIFO and serialized onto its injection port.
    Inject,
    /// A word traversed a network link.
    Hop,
    /// A link fault consumed the wire without delivering the word; the word
    /// retries from its upstream buffer.
    Drop,
    /// A word serialized off an ejection port into the destination `rx` FIFO.
    Eject,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::Inject => 1,
            EventKind::Hop => 2,
            EventKind::Drop => 3,
            EventKind::Eject => 4,
        }
    }
}

/// One entry of the canonical event stream.
///
/// The stream is ordered by (window, shard, stage, resource, time) — a
/// deterministic order that is identical at any worker count, pinned by the
/// run digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineEvent {
    /// Cycle the action started (integer part).
    pub time: Cycle,
    /// What happened.
    pub kind: EventKind,
    /// Link index for hops/drops, port index for injections/ejections.
    pub site: u32,
    /// Virtual channel involved.
    pub vc: u8,
    /// Word identity: `flow_index << 32 | word_index`.
    pub seq: u64,
}

impl EngineEvent {
    fn fold_into(&self, hash: u64) -> u64 {
        let h = fnv_fold(hash, self.time);
        let h = fnv_fold(h, self.kind.code());
        let h = fnv_fold(h, u64::from(self.site));
        let h = fnv_fold(h, u64::from(self.vc));
        fnv_fold(h, self.seq)
    }
}

/// Engine configuration: the machine's link and node parameters plus the
/// engine-specific knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Wire parameters; the congestion factor is forced to 1.0 — contention
    /// is what the engine *simulates*, not a dial.
    pub link: LinkParams,
    /// Per-node parameters; `tx_fifo_words`/`rx_fifo_words` bound the NIC
    /// staging FIFOs. Memory capacity is shrunk at construction (engine
    /// nodes exchange words, they do not run memory programs).
    pub node: NodeParams,
    /// Nodes sharing one injection/ejection port pair (2 on the T3D).
    pub nodes_per_port: u32,
    /// Buffer slots per (link, virtual channel) guarded by credits. Credits
    /// return one conservative window after the buffered word moves on, so
    /// small values throttle saturated multi-hop paths (tree saturation)
    /// well below the wire rate; the default is sized so the credit
    /// round-trip never limits a path and contention comes from the wires
    /// themselves, matching the fluid assumption of the analytic model.
    pub vc_slots: u32,
    /// Cycles between consecutive words the memory side feeds into `tx`
    /// (0 = unpaced: memory keeps the NIC saturated and the injection port
    /// is the bottleneck).
    pub source_word_cycles: Cycle,
    /// Cycles between consecutive words the memory side drains from `rx`
    /// (0 = unpaced).
    pub drain_word_cycles: Cycle,
    /// Send address-data pairs instead of data-only words.
    pub address_data_pairs: bool,
    /// Worker threads for the shard fan-out (0 = the process-wide setting).
    /// Never affects results, only wall-clock.
    pub jobs: usize,
    /// Watchdog: maximum simulation windows before declaring a wedge.
    pub max_windows: u64,
    /// Optional hard cycle budget.
    pub max_cycles: Option<Cycle>,
    /// Fault plan threaded through every per-node FIFO and link.
    pub fault: FaultPlan,
    /// Keep the full event stream in the outcome (tests); the digest is
    /// always computed.
    pub record_events: bool,
    /// Run on the retired `BinaryHeap` scheduler instead of the timing
    /// wheel + lane arena. Results are byte-identical either way; this
    /// knob exists so the differential tier and the perf harness can put
    /// the two substrates side by side.
    #[doc(hidden)]
    pub reference_scheduler: bool,
}

impl EngineConfig {
    /// Builds a configuration from machine link/node parameters.
    pub fn new(link: LinkParams, node: NodeParams) -> Self {
        let mut link = link;
        link.congestion = 1.0;
        let mut node = node;
        // Engine nodes never allocate regions; don't pay for 48 MB of
        // simulated DRAM per node at 64 nodes.
        node.memory_words = 64;
        EngineConfig {
            link,
            node,
            nodes_per_port: 1,
            vc_slots: 64,
            source_word_cycles: 0,
            drain_word_cycles: 0,
            address_data_pairs: false,
            jobs: 0,
            max_windows: 1 << 22,
            max_cycles: None,
            fault: FaultPlan::disabled(),
            record_events: false,
            reference_scheduler: false,
        }
    }

    fn word(&self, seq: u64) -> NetWord {
        if self.address_data_pairs {
            NetWord::addressed(seq.wrapping_mul(8), seq)
        } else {
            NetWord::data(seq)
        }
    }

    /// Wire cycles per word under this configuration's framing.
    pub fn word_cycles(&self) -> f64 {
        self.link.word_cycles(&self.word(0))
    }
}

/// Aggregate result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Completion cycle: when the last word left its destination `rx` FIFO.
    pub cycles: Cycle,
    /// Words that traversed the network.
    pub words: u64,
    /// Total link traversals (the flit-hop count).
    pub flit_hops: u64,
    /// Conservative windows executed.
    pub windows: u64,
    /// Link-fault drops (each deterministically retransmitted).
    pub dropped: u64,
    /// Link-fault corruptions (counted; payloads are synthetic).
    pub corrupted: u64,
    /// FNV-1a fold over the canonical event stream.
    pub digest: u64,
    /// Deepest the run's event backlog ever got: the barrier maximum of
    /// in-flight deliveries plus router-queued words, summed over shards.
    /// Identical under both schedulers (and any worker count) — it is a
    /// property of the traffic, not of the queue substrate.
    pub peak_queue_depth: u64,
    /// The event stream itself, when [`EngineConfig::record_events`] is set.
    pub events: Vec<EngineEvent>,
}

/// Result of running a multi-round schedule (rounds are barrier-separated:
/// round `r+1` starts only after round `r` fully drains).
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Per-round outcomes, in schedule order.
    pub rounds: Vec<EngineOutcome>,
    /// Sum of round completion cycles.
    pub cycles: Cycle,
    /// Digest folding every round's digest in order.
    pub digest: u64,
    /// Deepest event backlog across all rounds.
    pub peak_queue_depth: u64,
}

/// A topology of `nodes` nodes with the same rank and wrap-ness as `base`,
/// splitting the power-of-two node count as evenly as possible across the
/// base's dimensions (64 on a 3D torus → 4×4×4; 4 → 2×2×1).
pub fn scaled_topology(base: &Topology, nodes: usize) -> SimResult<Topology> {
    if nodes < 2 || !nodes.is_power_of_two() {
        return Err(SimError::Protocol {
            detail: format!("engine topology needs a power-of-two node count >= 2, got {nodes}"),
            at: 0,
        });
    }
    let rank = base.dims().len();
    let exp = nodes.trailing_zeros() as usize;
    let dims: Vec<u32> = (0..rank)
        .map(|i| 1u32 << (exp / rank + usize::from(i < exp % rank)))
        .collect();
    Ok(if base.is_torus() {
        Topology::torus(&dims)
    } else {
        Topology::mesh(&dims)
    })
}

// ---------------------------------------------------------------------------
// Static build: links, routes, shards.
// ---------------------------------------------------------------------------

/// One hop of a flow's route: global link index, the virtual channel the
/// dateline rule assigns to it, and the flow's lane in that (link, VC)
/// queue under the lane scheduler.
#[derive(Debug, Clone, Copy)]
struct Hop {
    link: u32,
    vc: u8,
    lane: u32,
}

#[derive(Debug, Clone)]
struct FlowPath {
    src: u32,
    words: u32,
    hops: Vec<Hop>,
    /// The flow's lane in its destination's ejection queue.
    eject_lane: u32,
}

/// Queued word waiting to transmit on a link. Orders by (rank, ready);
/// `rank` is the word-major rotation of the globally unique `seq` (word
/// index in the high bits), so a backlogged link interleaves competing
/// flows word by word — the deterministic analogue of a router's
/// round-robin arbiter. Arrival-order service would instead let the flow
/// nearest the bottleneck convoy hundreds of words ahead, starving the
/// links downstream of the other flows' turns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
struct QEntry {
    rank: u64,
    ready: Cycle,
    seq: u64,
    hop: u16,
    /// Upstream buffer the word still occupies (`u32::MAX` = none, the word
    /// came straight off its injection port).
    prev_link: u32,
    prev_vc: u8,
}

/// Word-major arbitration rank: `seq` packs `flow << 32 | word`, so the
/// rotation compares word index first and flow index only on ties. Ranks
/// are a bijection of the globally unique `seq`, so within any one queue
/// the rank alone already totals the order — the remaining [`QEntry`]
/// fields never break a tie.
fn word_rank(seq: u64) -> u64 {
    seq.rotate_left(32)
}

/// Per-flow FIFO lanes over a shared [`Arena`], plus a lazy min-heap of
/// lane-head `(rank, lane)` candidates.
///
/// Correctness rests on one invariant: *words of a flow reach any given
/// queue in ascending rank order.* Injection emits a flow's words in word
/// order; on every shared link the earlier word (lower rank in the same
/// lane) transmits first and the link's `free` cursor is monotone, so
/// arrival stamps — and barrier filing, which is globally `(arrive, seq)`
/// sorted — preserve per-flow order hop by hop, even under Delay faults
/// (the delay moves `free` for both words alike). A Drop retry re-files
/// the entry it just popped, which is a *prepend*, not an append. Each
/// lane is therefore pre-sorted, the queue minimum is always a lane head,
/// and the head heap is over flows (tens) instead of words (thousands).
///
/// The head heap is *lazy*: prepends push a fresh candidate without
/// retracting the old head's entry, so stale candidates linger and are
/// discarded when they surface ([`LaneQueue::settle`]). Every non-empty
/// lane always has its current head among the candidates.
#[derive(Debug)]
struct LaneQueue {
    /// `(head, tail)` arena indices per lane ([`NIL`] = empty lane).
    lanes: Vec<(u32, u32)>,
    /// Lazy min-heap of `(head rank, lane)` candidates.
    heads: BinaryHeap<Reverse<(u64, u32)>>,
    len: u32,
}

impl LaneQueue {
    fn new(lanes: u32) -> LaneQueue {
        LaneQueue {
            lanes: vec![(NIL, NIL); lanes as usize],
            heads: BinaryHeap::new(),
            len: 0,
        }
    }

    fn push_back(&mut self, lane: u32, e: QEntry, arena: &mut Arena<QEntry>) {
        let idx = arena.alloc(e);
        let slot = &mut self.lanes[lane as usize];
        if slot.0 == NIL {
            *slot = (idx, idx);
            self.heads.push(Reverse((e.rank, lane)));
        } else {
            debug_assert!(
                arena.get(slot.1).rank < e.rank,
                "lane rank monotonicity violated"
            );
            arena.set_next(slot.1, idx);
            slot.1 = idx;
        }
        self.len += 1;
    }

    fn push_front(&mut self, lane: u32, e: QEntry, arena: &mut Arena<QEntry>) {
        let idx = arena.alloc(e);
        let slot = &mut self.lanes[lane as usize];
        if slot.0 == NIL {
            slot.1 = idx;
        } else {
            arena.set_next(idx, slot.0);
        }
        slot.0 = idx;
        self.heads.push(Reverse((e.rank, lane)));
        self.len += 1;
    }

    /// Discards stale head candidates until the top one is live.
    fn settle(&mut self, arena: &Arena<QEntry>) {
        while let Some(&Reverse((rank, lane))) = self.heads.peek() {
            let head = self.lanes[lane as usize].0;
            if head != NIL && arena.get(head).rank == rank {
                return;
            }
            self.heads.pop();
        }
    }

    fn peek(&mut self, arena: &Arena<QEntry>) -> Option<QEntry> {
        self.settle(arena);
        let &Reverse((_, lane)) = self.heads.peek()?;
        Some(*arena.get(self.lanes[lane as usize].0))
    }

    fn pop(&mut self, arena: &mut Arena<QEntry>) -> QEntry {
        self.settle(arena);
        let Reverse((_, lane)) = self.heads.pop().expect("pop on an empty router queue");
        let slot = &mut self.lanes[lane as usize];
        let head = slot.0;
        let next = arena.next(head);
        let e = arena.free(head);
        slot.0 = next;
        if next == NIL {
            slot.1 = NIL;
        } else {
            self.heads.push(Reverse((arena.get(next).rank, lane)));
        }
        self.len -= 1;
        e
    }
}

/// A rank-ordered router queue under either scheduler substrate. Both pop
/// the same entries in the same order; the heap variant is the retired
/// reference implementation.
#[derive(Debug)]
enum RouterQueue {
    Heap(BinaryHeap<Reverse<QEntry>>),
    Lanes(LaneQueue),
}

impl RouterQueue {
    fn new(reference: bool, lanes: u32) -> RouterQueue {
        if reference {
            RouterQueue::Heap(BinaryHeap::new())
        } else {
            RouterQueue::Lanes(LaneQueue::new(lanes))
        }
    }

    fn len(&self) -> u64 {
        match self {
            RouterQueue::Heap(h) => h.len() as u64,
            RouterQueue::Lanes(l) => u64::from(l.len),
        }
    }

    /// Files a word that arrived over the network or off its injection
    /// port; lane mode appends (per-flow arrivals are rank-ascending).
    fn push_arrival(&mut self, lane: u32, e: QEntry, arena: &mut Arena<QEntry>) {
        match self {
            RouterQueue::Heap(h) => h.push(Reverse(e)),
            RouterQueue::Lanes(l) => l.push_back(lane, e, arena),
        }
    }

    /// Re-files the entry just popped (a dropped word retrying): its rank
    /// is still the lane minimum, so lane mode prepends.
    fn push_retry(&mut self, lane: u32, e: QEntry, arena: &mut Arena<QEntry>) {
        match self {
            RouterQueue::Heap(h) => h.push(Reverse(e)),
            RouterQueue::Lanes(l) => l.push_front(lane, e, arena),
        }
    }

    /// The minimum-rank entry, if any.
    fn peek(&mut self, arena: &Arena<QEntry>) -> Option<QEntry> {
        match self {
            RouterQueue::Heap(h) => h.peek().map(|&Reverse(e)| e),
            RouterQueue::Lanes(l) => l.peek(arena),
        }
    }

    fn pop(&mut self, arena: &mut Arena<QEntry>) -> QEntry {
        match self {
            RouterQueue::Heap(h) => h.pop().expect("pop on an empty router queue").0,
            RouterQueue::Lanes(l) => l.pop(arena),
        }
    }
}

/// A word in flight between windows: transmitted during one window,
/// delivered at the barrier opening the window containing `arrive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Delivery {
    arrive: Cycle,
    seq: u64,
    hop: u16,
    to_node: u32,
    via_link: u32,
    vc: u8,
}

struct LinkState {
    global: u32,
    queues: [RouterQueue; 2],
    credits: [u32; 2],
    free: f64,
    attempts: u64,
}

struct PortState {
    id: u32,
    node_lo: u32,
    node_hi: u32,
    inject_free: f64,
    eject_free: f64,
}

struct NodeCtx {
    node: Node,
    /// Flow indices originating here, ascending.
    feeds: Vec<u32>,
    feed_pos: usize,
    feed_word: u32,
    src_free: Cycle,
    drain_free: Cycle,
    /// Words awaiting the ejection port (same word-major order as links).
    eject: RouterQueue,
}

struct Shard {
    node_lo: u32,
    nodes: Vec<NodeCtx>,
    /// Owned links, ascending global index.
    links: Vec<LinkState>,
    /// Global index of each owned link, parallel to `links` (binary search).
    link_globals: Vec<u32>,
    ports: Vec<PortState>,
    inbox: Vec<Delivery>,
    credit_inbox: Vec<(u32, u8)>,
    /// Entry storage shared by every lane queue of the shard (unused by the
    /// reference scheduler). Its live count is exactly the shard's queued
    /// words.
    arena: Arena<QEntry>,
    /// Whether this shard's queues run on lanes (false = reference heaps).
    lanes: bool,
    /// Window output buffers, reused across windows on the production path.
    out: WindowOut,
}

#[derive(Default)]
struct WindowOut {
    deliveries: Vec<Delivery>,
    credits: Vec<(u32, u8)>,
    events: Vec<EngineEvent>,
    progress: u64,
    drained: u64,
    flit_hops: u64,
    dropped: u64,
    corrupted: u64,
    last_drain: Cycle,
    /// Words sitting in this shard's router/ejection queues at window end.
    queued: u64,
}

impl WindowOut {
    /// Resets for the next window, keeping buffer capacities.
    fn clear(&mut self) {
        self.deliveries.clear();
        self.credits.clear();
        self.events.clear();
        self.progress = 0;
        self.drained = 0;
        self.flit_hops = 0;
        self.dropped = 0;
        self.corrupted = 0;
        self.last_drain = 0;
        self.queued = 0;
    }
}

/// Read-only context shared by every shard.
struct Net {
    flows: Vec<FlowPath>,
    link_to: Vec<u32>,
    wt: f64,
    latency: Cycle,
    source_wc: Cycle,
    drain_wc: Cycle,
    fault: FaultPlan,
    pairs: bool,
}

impl Net {
    fn word(&self, seq: u64) -> NetWord {
        if self.pairs {
            NetWord::addressed(seq.wrapping_mul(8), seq)
        } else {
            NetWord::data(seq)
        }
    }
}

fn changed_dim(topo: &Topology, from: usize, to: usize) -> usize {
    let a = topo.coords(from);
    let b = topo.coords(to);
    (0..a.len())
        .find(|&d| a[d] != b[d])
        .expect("a route hop must change exactly one coordinate")
}

fn is_wrap_hop(topo: &Topology, from: usize, to: usize, dim: usize) -> bool {
    let d = topo.dims()[dim];
    let a = topo.coords(from)[dim];
    let b = topo.coords(to)[dim];
    d >= 3 && a.abs_diff(b) == d - 1
}

/// Assigns each route hop its virtual channel under the dateline rule.
fn vc_labels(topo: &Topology, hops: &[LinkId]) -> Vec<u8> {
    let mut labels = Vec::with_capacity(hops.len());
    let mut cur_dim = usize::MAX;
    let mut crossed = false;
    for h in hops {
        let dim = changed_dim(topo, h.from, h.to);
        if dim != cur_dim {
            cur_dim = dim;
            crossed = false;
        }
        labels.push(u8::from(crossed));
        if is_wrap_hop(topo, h.from, h.to, dim) {
            crossed = true;
        }
    }
    labels
}

/// Enumerates every directed link of the topology in canonical (ascending
/// `LinkId`) order.
fn enumerate_links(topo: &Topology) -> Vec<LinkId> {
    let mut set = std::collections::BTreeSet::new();
    for node in 0..topo.len() {
        let coords = topo.coords(node);
        for (dim, &d) in topo.dims().iter().enumerate() {
            if d < 2 {
                continue;
            }
            let mut push = |c: u32| {
                let mut to = coords.clone();
                to[dim] = c;
                set.insert(LinkId {
                    from: node,
                    to: topo.node_at(&to),
                });
            };
            let c = coords[dim];
            if c + 1 < d {
                push(c + 1);
            } else if topo.is_torus() {
                push(0);
            }
            if c >= 1 {
                push(c - 1);
            } else if topo.is_torus() {
                push(d - 1);
            }
        }
    }
    set.into_iter().collect()
}

struct Sim<'a> {
    cfg: &'a EngineConfig,
    net: Net,
    shards: Vec<Mutex<Shard>>,
    /// Global link index → (shard, local index).
    link_owner: Vec<(u32, u32)>,
    /// Node → shard.
    shard_of_node: Vec<u32>,
    total_words: u64,
}

fn protocol(detail: String) -> SimError {
    SimError::Protocol { detail, at: 0 }
}

fn build_sim<'a>(topo: &Topology, flows: &[Flow], cfg: &'a EngineConfig) -> SimResult<Sim<'a>> {
    let n = topo.len();
    if n == 0 {
        return Err(protocol("engine needs a non-empty topology".into()));
    }
    if cfg.vc_slots == 0 {
        return Err(protocol(
            "engine needs at least one buffer slot per VC".into(),
        ));
    }

    // Routes first: validates the flow set before anything is allocated.
    let mut paths = Vec::with_capacity(flows.len());
    let links = enumerate_links(topo);
    let link_index: HashMap<LinkId, u32> = links
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, i as u32))
        .collect();
    for (fi, f) in flows.iter().enumerate() {
        if f.src >= n || f.dst >= n {
            return Err(protocol(format!(
                "flow {fi} endpoints ({}, {}) outside the {n}-node topology",
                f.src, f.dst
            )));
        }
        let words = f.bytes.div_ceil(8);
        if f.src == f.dst || words == 0 {
            // Local or empty flows never enter the network.
            continue;
        }
        if words > u64::from(u32::MAX) {
            return Err(protocol(format!("flow {fi} too large: {words} words")));
        }
        if paths.len() >= u32::MAX as usize {
            return Err(protocol("too many flows (need < 2^32)".into()));
        }
        let r = route(topo, f.src, f.dst);
        let vcs = vc_labels(topo, &r);
        let hops: Vec<Hop> = r
            .iter()
            .zip(&vcs)
            .map(|(l, &vc)| Hop {
                link: link_index[l],
                vc,
                lane: 0,
            })
            .collect();
        if hops.len() > u16::MAX as usize {
            return Err(protocol(format!("flow {fi} route too long")));
        }
        paths.push(FlowPath {
            src: f.src as u32,
            words: words as u32,
            hops,
            eject_lane: 0,
        });
    }

    // Lane assignment: the flows crossing each (link, VC) queue — and the
    // flows terminating at each node — get consecutive lane indices in flow
    // order. Only the lane scheduler reads these.
    let mut q_lanes: Vec<[u32; 2]> = vec![[0, 0]; links.len()];
    let mut ej_lanes: Vec<u32> = vec![0; n];
    for p in &mut paths {
        for h in &mut p.hops {
            let c = &mut q_lanes[h.link as usize][usize::from(h.vc)];
            h.lane = *c;
            *c += 1;
        }
        let last = p.hops.last().expect("network flows have at least one hop");
        let dst = links[last.link as usize].to;
        p.eject_lane = ej_lanes[dst];
        ej_lanes[dst] += 1;
    }

    // Fixed shard partition: contiguous runs of whole port groups.
    let npp = cfg.nodes_per_port.max(1) as usize;
    let groups = n.div_ceil(npp);
    let shard_count = groups.clamp(1, MAX_SHARDS);
    // Shard s owns port groups [s*G/S, (s+1)*G/S).
    let group_shard = |g: usize| (g * shard_count / groups.max(1)).min(shard_count - 1);
    let shard_of_node: Vec<u32> = (0..n).map(|v| group_shard(v / npp) as u32).collect();

    let total_words: u64 = paths.iter().map(|p| u64::from(p.words)).sum();

    let reference = cfg.reference_scheduler;
    let mut shards: Vec<Shard> = (0..shard_count)
        .map(|_| Shard {
            node_lo: u32::MAX,
            nodes: Vec::new(),
            links: Vec::new(),
            link_globals: Vec::new(),
            ports: Vec::new(),
            inbox: Vec::new(),
            credit_inbox: Vec::new(),
            arena: Arena::new(),
            lanes: !reference,
            out: WindowOut::default(),
        })
        .collect();

    for (node, &shard_id) in shard_of_node.iter().enumerate() {
        let shard = &mut shards[shard_id as usize];
        if shard.node_lo == u32::MAX {
            shard.node_lo = node as u32;
        }
        let mut ctx = NodeCtx {
            node: Node::new(cfg.node),
            feeds: Vec::new(),
            feed_pos: 0,
            feed_word: 0,
            src_free: 0,
            drain_free: 0,
            eject: RouterQueue::new(reference, ej_lanes[node]),
        };
        if cfg.fault.is_active() {
            ctx.node.tx.set_faults(cfg.fault, site::engine_tx(node));
            ctx.node.rx.set_faults(cfg.fault, site::engine_rx(node));
        }
        shard.nodes.push(ctx);
    }
    for (fi, p) in paths.iter().enumerate() {
        let s = shard_of_node[p.src as usize] as usize;
        let local = (p.src - shards[s].node_lo) as usize;
        shards[s].nodes[local].feeds.push(fi as u32);
    }
    let mut link_owner = Vec::with_capacity(links.len());
    for (gi, l) in links.iter().enumerate() {
        let s = shard_of_node[l.from] as usize;
        let local = shards[s].links.len() as u32;
        shards[s].links.push(LinkState {
            global: gi as u32,
            queues: [
                RouterQueue::new(reference, q_lanes[gi][0]),
                RouterQueue::new(reference, q_lanes[gi][1]),
            ],
            credits: [cfg.vc_slots, cfg.vc_slots],
            free: 0.0,
            attempts: 0,
        });
        shards[s].link_globals.push(gi as u32);
        link_owner.push((s as u32, local));
    }
    for g in 0..groups {
        let s = group_shard(g);
        let lo = (g * npp) as u32;
        let hi = (((g + 1) * npp).min(n)) as u32;
        shards[s].ports.push(PortState {
            id: g as u32,
            node_lo: lo,
            node_hi: hi,
            inject_free: 0.0,
            eject_free: 0.0,
        });
    }

    let wt = cfg.word_cycles();
    let net = Net {
        flows: paths,
        link_to: links.iter().map(|l| l.to as u32).collect(),
        wt,
        latency: cfg.link.latency_cycles.max(1),
        source_wc: cfg.source_word_cycles,
        drain_wc: cfg.drain_word_cycles,
        fault: cfg.fault,
        pairs: cfg.address_data_pairs,
    };

    Ok(Sim {
        cfg,
        net,
        shards: shards.into_iter().map(Mutex::new).collect(),
        link_owner,
        shard_of_node,
        total_words,
    })
}

impl Shard {
    /// One window on the reference path: fresh output buffers every window,
    /// exactly as the retired scheduler allocated them.
    fn run_window(&mut self, t0: Cycle, t1: Cycle, net: &Net) -> WindowOut {
        let mut out = WindowOut::default();
        self.window_core(t0, t1, net, &mut out);
        out
    }

    /// One window on the production path: reuses the shard's persistent
    /// output buffers (the coordinator drains them at the barrier).
    fn run_window_in_place(&mut self, t0: Cycle, t1: Cycle, net: &Net) {
        let mut out = std::mem::take(&mut self.out);
        out.clear();
        self.window_core(t0, t1, net, &mut out);
        self.out = out;
    }

    /// The window logic itself, identical under both schedulers — only the
    /// queue substrate behind [`RouterQueue`] differs.
    fn window_core(&mut self, t0: Cycle, t1: Cycle, net: &Net, out: &mut WindowOut) {
        let Shard {
            node_lo,
            nodes,
            links,
            link_globals,
            ports,
            inbox,
            credit_inbox,
            arena,
            lanes: use_lanes,
            ..
        } = self;
        let node_lo = *node_lo;

        // Credits freed during the previous window become usable now.
        for (local, vc) in credit_inbox.drain(..) {
            links[local as usize].credits[vc as usize] += 1;
        }

        // 1. Deliveries due this window (coordinator pre-sorted by
        // (arrive, seq)): file each word into its next link queue, or into
        // the destination's ejection queue. The word keeps occupying its
        // upstream (via_link, vc) buffer until it moves on.
        for d in inbox.iter().copied() {
            let flow = &net.flows[(d.seq >> 32) as usize];
            let next = d.hop as usize + 1;
            if next == flow.hops.len() {
                let local = (d.to_node - node_lo) as usize;
                nodes[local].eject.push_arrival(
                    flow.eject_lane,
                    QEntry {
                        rank: word_rank(d.seq),
                        ready: d.arrive,
                        seq: d.seq,
                        hop: d.hop,
                        prev_link: d.via_link,
                        prev_vc: d.vc,
                    },
                    arena,
                );
            } else {
                let h = flow.hops[next];
                let li = link_globals
                    .binary_search(&h.link)
                    .expect("delivery routed to a shard that does not own the link");
                links[li].queues[usize::from(h.vc)].push_arrival(
                    h.lane,
                    QEntry {
                        rank: word_rank(d.seq),
                        ready: d.arrive,
                        seq: d.seq,
                        hop: next as u16,
                        prev_link: d.via_link,
                        prev_vc: d.vc,
                    },
                    arena,
                );
            }
        }
        inbox.clear();

        // 2. Source pump: memory feeds tx at its own pace, blocked by a full
        // FIFO (the processor stalls — the analytic model's port term).
        for ctx in nodes.iter_mut() {
            while let Some(&fi) = ctx.feeds.get(ctx.feed_pos) {
                let flow = &net.flows[fi as usize];
                if ctx.feed_word >= flow.words {
                    ctx.feed_pos += 1;
                    ctx.feed_word = 0;
                    continue;
                }
                let t = ctx.src_free.max(t0);
                if t >= t1 {
                    break;
                }
                let seq = (u64::from(fi) << 32) | u64::from(ctx.feed_word);
                let Some(at) = ctx.node.tx.push(t, net.word(seq)) else {
                    break;
                };
                ctx.src_free = at + net.source_wc;
                ctx.feed_word += 1;
                out.progress += 1;
            }
        }

        // 3. Injection: each port serializes the words of its node group
        // onto the network, arbitrating by (ready, node).
        for p in ports.iter_mut() {
            loop {
                let mut best: Option<(Cycle, u32)> = None;
                for node in p.node_lo..p.node_hi {
                    let local = (node - node_lo) as usize;
                    if let Some(r) = nodes[local].node.tx.front_ready() {
                        if best.is_none_or(|b| (r, node) < b) {
                            best = Some((r, node));
                        }
                    }
                }
                let Some((ready, node)) = best else {
                    break;
                };
                let start = (ready as f64).max(p.inject_free).max(t0 as f64);
                if start >= t1 as f64 {
                    break;
                }
                let local = (node - node_lo) as usize;
                let (_, w) = nodes[local]
                    .node
                    .tx
                    .pop(start.floor() as Cycle)
                    .expect("arbitration picked a non-empty tx FIFO");
                let seq = w.data;
                let h = net.flows[(seq >> 32) as usize].hops[0];
                let li = link_globals
                    .binary_search(&h.link)
                    .expect("flow injected on a shard that does not own its first link");
                p.inject_free = start + net.wt;
                let entry = p.inject_free.ceil() as Cycle;
                let port_id = p.id;
                links[li].queues[usize::from(h.vc)].push_arrival(
                    h.lane,
                    QEntry {
                        rank: word_rank(seq),
                        ready: entry,
                        seq,
                        hop: 0,
                        prev_link: u32::MAX,
                        prev_vc: 0,
                    },
                    arena,
                );
                out.events.push(EngineEvent {
                    time: start.floor() as Cycle,
                    kind: EventKind::Inject,
                    site: port_id,
                    vc: h.vc,
                    seq,
                });
                out.progress += 1;
            }
        }

        // 4. Links: transmit queued words while the wire and window allow,
        // earliest feasible (start, seq) first across the two VCs; a
        // transmit consumes a credit of this link's downstream buffer and
        // returns the upstream one.
        for l in links.iter_mut() {
            loop {
                let mut best: Option<(f64, u64, usize)> = None;
                for vc in 0..2usize {
                    if l.credits[vc] == 0 {
                        continue;
                    }
                    let Some(e) = l.queues[vc].peek(arena) else {
                        continue;
                    };
                    let start = (e.ready as f64).max(l.free).max(t0 as f64);
                    if best.is_none_or(|(bs, bq, _)| (start, e.rank) < (bs, bq)) {
                        best = Some((start, e.rank, vc));
                    }
                }
                let Some((start, _, vc)) = best else {
                    break;
                };
                if start >= t1 as f64 {
                    break;
                }
                let e = l.queues[vc].pop(arena);
                let fault = net
                    .fault
                    .link_fault(site::engine_link(l.global), l.attempts);
                l.attempts += 1;
                let mut wire = net.wt;
                match fault {
                    Some(LinkFault::Drop) => {
                        // The wire is consumed but nothing arrives; the word
                        // retries from its upstream buffer (links are
                        // lossless in hardware — this models the retransmit
                        // a real adapter would schedule).
                        l.free = start + wire;
                        out.events.push(EngineEvent {
                            time: start.floor() as Cycle,
                            kind: EventKind::Drop,
                            site: l.global,
                            vc: vc as u8,
                            seq: e.seq,
                        });
                        let lane = net.flows[(e.seq >> 32) as usize].hops[usize::from(e.hop)].lane;
                        l.queues[vc].push_retry(
                            lane,
                            QEntry {
                                ready: l.free.ceil() as Cycle,
                                ..e
                            },
                            arena,
                        );
                        out.dropped += 1;
                        out.progress += 1;
                        continue;
                    }
                    Some(LinkFault::Corrupt(_)) => out.corrupted += 1,
                    Some(LinkFault::Delay(d)) => wire += d as f64,
                    None => {}
                }
                l.credits[vc] -= 1;
                l.free = start + wire;
                let arrive = (l.free.ceil() as Cycle) + net.latency;
                if e.prev_link != u32::MAX {
                    out.credits.push((e.prev_link, e.prev_vc));
                }
                out.events.push(EngineEvent {
                    time: start.floor() as Cycle,
                    kind: EventKind::Hop,
                    site: l.global,
                    vc: vc as u8,
                    seq: e.seq,
                });
                out.deliveries.push(Delivery {
                    arrive,
                    seq: e.seq,
                    hop: e.hop,
                    to_node: net.link_to[l.global as usize],
                    via_link: l.global,
                    vc: vc as u8,
                });
                out.flit_hops += 1;
                out.progress += 1;
            }
        }

        // 5. Ejection: the port serializes arrived words into the
        // destination rx FIFO; a full FIFO backpressures into the network
        // (the upstream buffer credit stays consumed).
        for p in ports.iter_mut() {
            loop {
                let (p_lo, p_hi) = (p.node_lo, p.node_hi);
                let mut best: Option<(u64, Cycle, u32)> = None;
                for node in p_lo..p_hi {
                    let local = (node - node_lo) as usize;
                    let ctx = &mut nodes[local];
                    if ctx.node.rx.len() == ctx.node.rx.capacity() {
                        continue;
                    }
                    if let Some(e) = ctx.eject.peek(arena) {
                        if best.is_none_or(|(br, bq, _)| (e.rank, e.ready) < (br, bq)) {
                            best = Some((e.rank, e.ready, node));
                        }
                    }
                }
                let Some((_, ready, node)) = best else {
                    break;
                };
                let start = (ready as f64).max(p.eject_free).max(t0 as f64);
                if start >= t1 as f64 {
                    break;
                }
                let local = (node - node_lo) as usize;
                let e = nodes[local].eject.pop(arena);
                p.eject_free = start + net.wt;
                let t_in = p.eject_free.ceil() as Cycle;
                nodes[local]
                    .node
                    .rx
                    .push(t_in, net.word(e.seq))
                    .expect("arbitration checked rx had space");
                out.credits.push((e.prev_link, e.prev_vc));
                out.events.push(EngineEvent {
                    time: start.floor() as Cycle,
                    kind: EventKind::Eject,
                    site: p.id,
                    vc: e.prev_vc,
                    seq: e.seq,
                });
                out.progress += 1;
            }
        }

        // 6. Drain: the memory side unconditionally empties rx at its own
        // pace — this is what guarantees ejection eventually proceeds.
        for ctx in nodes.iter_mut() {
            while let Some(avail) = ctx.node.rx.front_ready() {
                let t = avail.max(ctx.drain_free).max(t0);
                if t >= t1 {
                    break;
                }
                let (at, _) = ctx.node.rx.pop(t).expect("front_ready implies non-empty");
                ctx.drain_free = at + net.drain_wc;
                out.drained += 1;
                out.last_drain = out.last_drain.max(at);
                out.progress += 1;
            }
        }

        // The shard's contribution to the barrier's backlog gauge. Under
        // lanes the arena's live count *is* the queued-word count; the
        // reference path sums its heaps — same quantity either way.
        out.queued = if *use_lanes {
            arena.len() as u64
        } else {
            links
                .iter()
                .map(|l| l.queues[0].len() + l.queues[1].len())
                .sum::<u64>()
                + nodes.iter().map(|c| c.eject.len()).sum::<u64>()
        };
    }
}

/// Runs one traffic pattern to completion.
///
/// Flows with `src == dst` or zero bytes never enter the network and are
/// skipped. Returns [`SimError::Deadlock`] if the network stops making
/// progress with words still in flight, [`SimError::Wedged`] /
/// [`SimError::CycleBudget`] when the watchdog limits trip, and
/// [`SimError::Protocol`] for invalid flow sets.
pub fn run_flows(topo: &Topology, flows: &[Flow], cfg: &EngineConfig) -> SimResult<EngineOutcome> {
    let sim = build_sim(topo, flows, cfg)?;
    run_sim(sim)
}

/// The coordinator's in-flight delivery store under either scheduler.
enum PendingQueue {
    /// The retired global heap.
    Heap(BinaryHeap<Reverse<Delivery>>),
    /// The production cycle-bucketed wheel; deliveries are genuinely
    /// time-keyed (the barrier releases everything below `t1`, tie-broken
    /// by the unique `seq` inside [`Delivery`]'s derived order).
    Wheel(TimingWheel<Delivery>),
}

impl PendingQueue {
    fn len(&self) -> usize {
        match self {
            PendingQueue::Heap(h) => h.len(),
            PendingQueue::Wheel(w) => w.len(),
        }
    }
}

fn run_sim(sim: Sim<'_>) -> SimResult<EngineOutcome> {
    let cfg = sim.cfg;
    let obs = Obs::current();
    let window = cfg.link.latency_cycles.max(1);
    let jobs = if cfg.jobs == 0 { par::jobs() } else { cfg.jobs };
    let shard_ids: Vec<usize> = (0..sim.shards.len()).collect();

    let mut outcome = EngineOutcome {
        cycles: 0,
        words: sim.total_words,
        flit_hops: 0,
        windows: 0,
        dropped: 0,
        corrupted: 0,
        digest: FNV_OFFSET,
        peak_queue_depth: 0,
        events: Vec::new(),
    };
    if sim.total_words == 0 {
        return Ok(outcome);
    }

    let mut watchdog = Watchdog::new(cfg.max_windows).with_cycle_budget(cfg.max_cycles);
    let jitter = if cfg.fault.is_active() {
        cfg.fault.config().max_jitter_cycles
    } else {
        0
    };
    let mut pending = if cfg.reference_scheduler {
        PendingQueue::Heap(BinaryHeap::new())
    } else {
        // A delivery lands at most wire + latency (+ fault jitter) cycles
        // past the window that transmitted it; anything further (an
        // oversized delay) takes the wheel's overflow path, so the horizon
        // only sets the fast-path hit rate, never correctness.
        let horizon =
            window + (cfg.word_cycles().ceil() as Cycle) + cfg.link.latency_cycles + jitter + 4;
        PendingQueue::Wheel(TimingWheel::new(horizon))
    };
    // Per-shard delivery/credit scratch, ping-ponged with the shard inboxes
    // at each barrier on the production path (no steady-state allocation).
    let mut scratch: Vec<Vec<Delivery>> = vec![Vec::new(); sim.shards.len()];
    let mut credit_scratch: Vec<Vec<(u32, u8)>> = vec![Vec::new(); sim.shards.len()];
    let mut credits_pending: Vec<(u32, u8)> = Vec::new();
    let mut drained = 0u64;
    let mut idle_windows = 0u64;
    // How long legitimate inactivity can last, in windows: fault stalls and
    // jitter park words in the future, and slow memory pacing leaves gaps.
    let fault_slack = if cfg.fault.is_active() {
        let c = cfg.fault.config();
        c.max_stall_cycles + c.max_jitter_cycles
    } else {
        0
    };
    // A single port/drain action can jump its follow-up work a full word
    // time past the current window with nothing in `pending` meanwhile
    // (e.g. the last word's rx-ready stamp lands `wt` cycles ahead while
    // the drain idles), so the wire time bounds legitimate gaps too.
    let word_gap = 2 * (cfg.word_cycles().ceil() as Cycle);
    let idle_limit =
        2 + (fault_slack + cfg.source_word_cycles + cfg.drain_word_cycles + word_gap) / window;

    let mut t0: Cycle = 0;
    loop {
        watchdog.tick(ENGINE, t0)?;
        let t1 = t0 + window;

        // Barrier: hand due deliveries (globally sorted by (arrive, seq))
        // and freed credits to their owning shards.
        match &mut pending {
            PendingQueue::Heap(pending) => {
                let mut per_shard: Vec<Vec<Delivery>> = vec![Vec::new(); sim.shards.len()];
                while pending.peek().is_some_and(|Reverse(d)| d.arrive < t1) {
                    let Reverse(d) = pending.pop().expect("peeked");
                    per_shard[sim.shard_of_node[d.to_node as usize] as usize].push(d);
                }
                let mut credit_shard: Vec<Vec<(u32, u8)>> = vec![Vec::new(); sim.shards.len()];
                for (link, vc) in credits_pending.drain(..) {
                    let (s, local) = sim.link_owner[link as usize];
                    credit_shard[s as usize].push((local, vc));
                }
                for (i, (inbox, credits)) in per_shard.into_iter().zip(credit_shard).enumerate() {
                    let mut shard = sim.shards[i].lock().expect("shard lock poisoned");
                    shard.inbox = inbox;
                    shard.credit_inbox = credits;
                }
            }
            PendingQueue::Wheel(wheel) => {
                // The wheel emits in ascending (arrive, seq) order — the
                // same global order the heap pop loop produced — and each
                // shard receives its subsequence of it.
                wheel.drain_until(t1, |_, d| {
                    scratch[sim.shard_of_node[d.to_node as usize] as usize].push(d);
                });
                for (link, vc) in credits_pending.drain(..) {
                    let (s, local) = sim.link_owner[link as usize];
                    credit_scratch[s as usize].push((local, vc));
                }
                for i in 0..sim.shards.len() {
                    let mut shard = sim.shards[i].lock().expect("shard lock poisoned");
                    std::mem::swap(&mut shard.inbox, &mut scratch[i]);
                    std::mem::swap(&mut shard.credit_inbox, &mut credit_scratch[i]);
                    // The vectors coming back were cleared by the previous
                    // window, keeping their capacity.
                }
            }
        }

        // Fold in fixed shard order — this is what makes the event stream
        // (and hence the digest) independent of the worker count.
        let mut progress = 0u64;
        let mut queued = 0u64;
        match &mut pending {
            PendingQueue::Heap(pending) => {
                let outs: Vec<WindowOut> = par::par_map(jobs, &shard_ids, |&i| {
                    sim.shards[i]
                        .lock()
                        .expect("shard lock poisoned")
                        .run_window(t0, t1, &sim.net)
                });
                for out in outs {
                    for e in &out.events {
                        outcome.digest = e.fold_into(outcome.digest);
                    }
                    if cfg.record_events {
                        outcome.events.extend(out.events);
                    }
                    for d in out.deliveries {
                        pending.push(Reverse(d));
                    }
                    credits_pending.extend(out.credits);
                    progress += out.progress;
                    drained += out.drained;
                    queued += out.queued;
                    outcome.flit_hops += out.flit_hops;
                    outcome.dropped += out.dropped;
                    outcome.corrupted += out.corrupted;
                    outcome.cycles = outcome.cycles.max(out.last_drain);
                }
            }
            PendingQueue::Wheel(wheel) => {
                par::par_map(jobs, &shard_ids, |&i| {
                    sim.shards[i]
                        .lock()
                        .expect("shard lock poisoned")
                        .run_window_in_place(t0, t1, &sim.net);
                });
                for i in &shard_ids {
                    let shard = sim.shards[*i].lock().expect("shard lock poisoned");
                    let out = &shard.out;
                    for e in &out.events {
                        outcome.digest = e.fold_into(outcome.digest);
                    }
                    if cfg.record_events {
                        outcome.events.extend_from_slice(&out.events);
                    }
                    for &d in &out.deliveries {
                        wheel.push(d.arrive, d);
                    }
                    credits_pending.extend_from_slice(&out.credits);
                    progress += out.progress;
                    drained += out.drained;
                    queued += out.queued;
                    outcome.flit_hops += out.flit_hops;
                    outcome.dropped += out.dropped;
                    outcome.corrupted += out.corrupted;
                    outcome.cycles = outcome.cycles.max(out.last_drain);
                }
            }
        }
        outcome.windows += 1;
        outcome.peak_queue_depth = outcome.peak_queue_depth.max(pending.len() as u64 + queued);

        if drained == sim.total_words {
            break;
        }
        if progress == 0 && pending.len() == 0 {
            idle_windows += 1;
            if idle_windows > idle_limit {
                return Err(SimError::Deadlock {
                    detail: format!(
                        "engine idle for {idle_windows} windows with {} of {} words undelivered",
                        sim.total_words - drained,
                        sim.total_words
                    ),
                    at: t0,
                });
            }
        } else {
            idle_windows = 0;
        }
        t0 = t1;
    }

    obs.count("engine.words", outcome.words);
    obs.count("engine.flit_hops", outcome.flit_hops);
    obs.count("engine.windows", outcome.windows);
    obs.gauge_max("engine.peak_queue_depth", outcome.peak_queue_depth);
    obs.span("engine", "run_flows", 0, outcome.cycles);
    Ok(outcome)
}

/// Runs a barrier-separated schedule of rounds; each round must fully drain
/// before the next starts (the semantics of the paper's phased kernels).
pub fn run_schedule(
    topo: &Topology,
    rounds: &[Vec<Flow>],
    cfg: &EngineConfig,
) -> SimResult<ScheduleOutcome> {
    let mut out = ScheduleOutcome {
        rounds: Vec::with_capacity(rounds.len()),
        cycles: 0,
        digest: FNV_OFFSET,
        peak_queue_depth: 0,
    };
    for (i, round) in rounds.iter().enumerate() {
        let r = run_flows(topo, round, cfg)?;
        out.cycles += r.cycles;
        out.digest = fnv_fold(fnv_fold(out.digest, i as u64), r.digest);
        out.peak_queue_depth = out.peak_queue_depth.max(r.peak_queue_depth);
        out.rounds.push(r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic;

    fn small_cfg() -> EngineConfig {
        let link = LinkParams {
            bytes_per_cycle: 8.0,
            packet_words: 16,
            header_bytes: 8,
            adp_extra_bytes: 8,
            latency_cycles: 4,
            congestion: 1.0,
        };
        EngineConfig::new(link, NodeParams::default())
    }

    #[test]
    fn single_flow_delivers_all_words() {
        let topo = Topology::torus(&[4]);
        let flows = [Flow {
            src: 0,
            dst: 2,
            bytes: 64 * 8,
        }];
        let out = run_flows(&topo, &flows, &small_cfg()).unwrap();
        assert_eq!(out.words, 64);
        // Two hops per word, no faults.
        assert_eq!(out.flit_hops, 128);
        assert!(out.cycles > 0);
    }

    #[test]
    fn local_and_empty_flows_are_skipped() {
        let topo = Topology::mesh(&[2, 2]);
        let flows = [
            Flow {
                src: 1,
                dst: 1,
                bytes: 800,
            },
            Flow {
                src: 0,
                dst: 1,
                bytes: 0,
            },
        ];
        let out = run_flows(&topo, &flows, &small_cfg()).unwrap();
        assert_eq!(out.words, 0);
        assert_eq!(out.windows, 0);
    }

    #[test]
    fn invalid_flow_is_a_protocol_error() {
        let topo = Topology::mesh(&[2, 2]);
        let flows = [Flow {
            src: 0,
            dst: 9,
            bytes: 8,
        }];
        assert!(matches!(
            run_flows(&topo, &flows, &small_cfg()),
            Err(SimError::Protocol { .. })
        ));
    }

    #[test]
    fn wire_rate_is_approached_on_an_uncontended_path() {
        let topo = Topology::torus(&[8]);
        let words = 512u64;
        let flows = [Flow {
            src: 0,
            dst: 1,
            bytes: words * 8,
        }];
        let cfg = small_cfg();
        let out = run_flows(&topo, &flows, &cfg).unwrap();
        let wt = cfg.word_cycles();
        let ideal = words as f64 * wt;
        let t = out.cycles as f64;
        assert!(t >= ideal, "cannot beat the wire: {t} < {ideal}");
        assert!(
            t < 2.0 * ideal + 200.0,
            "an uncontended flow should run near wire rate: {t} vs {ideal}"
        );
    }

    #[test]
    fn contended_link_doubles_the_time() {
        // Two flows share the 2→3 link on a ring; each alone would take
        // ~W*wt, together the shared link serializes them.
        let topo = Topology::mesh(&[8]);
        let words = 256u64;
        let flows = [
            Flow {
                src: 2,
                dst: 4,
                bytes: words * 8,
            },
            Flow {
                src: 1,
                dst: 5,
                bytes: words * 8,
            },
        ];
        let cfg = small_cfg();
        let uncontended = run_flows(&topo, &flows[..1], &cfg).unwrap().cycles as f64;
        let contended = run_flows(&topo, &flows, &cfg).unwrap().cycles as f64;
        assert!(
            contended > 1.6 * uncontended,
            "sharing a link must show up: {contended} vs {uncontended}"
        );
    }

    #[test]
    fn digest_is_identical_across_worker_counts() {
        let topo = Topology::torus(&[4, 4]);
        let rounds = traffic::aapc_xor_schedule(16, 32 * 8);
        let run = |jobs: usize| {
            let mut cfg = small_cfg();
            cfg.jobs = jobs;
            cfg.nodes_per_port = 2;
            cfg.record_events = true;
            run_schedule(&topo, &rounds, &cfg).unwrap()
        };
        let base = run(1);
        for jobs in [2, 4, 7] {
            let out = run(jobs);
            assert_eq!(out.digest, base.digest, "jobs={jobs}");
            assert_eq!(out.cycles, base.cycles, "jobs={jobs}");
            for (a, b) in out.rounds.iter().zip(&base.rounds) {
                assert_eq!(a.events, b.events, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn torus_wraps_use_the_second_virtual_channel() {
        let topo = Topology::torus(&[5]);
        // 4 → 1 wraps: hops 4→0 (wrap, VC0) then 0→1 (VC1).
        let r = route(&topo, 4, 1);
        let vcs = vc_labels(&topo, &r);
        assert_eq!(vcs, vec![0, 1]);
        // Mesh routes never leave VC0.
        let m = Topology::mesh(&[5]);
        let rm = route(&m, 0, 4);
        assert!(vc_labels(&m, &rm).iter().all(|&v| v == 0));
    }

    #[test]
    fn scaled_topology_splits_evenly() {
        let t3d = Topology::torus(&[4, 4, 4]);
        assert_eq!(scaled_topology(&t3d, 64).unwrap().dims(), &[4, 4, 4]);
        assert_eq!(scaled_topology(&t3d, 8).unwrap().dims(), &[2, 2, 2]);
        assert_eq!(scaled_topology(&t3d, 4).unwrap().dims(), &[2, 2, 1]);
        let mesh = Topology::mesh(&[8, 8]);
        let m16 = scaled_topology(&mesh, 16).unwrap();
        assert_eq!(m16.dims(), &[4, 4]);
        assert!(!m16.is_torus());
        assert!(scaled_topology(&t3d, 3).is_err());
        assert!(scaled_topology(&t3d, 0).is_err());
    }

    #[test]
    fn fault_plan_replays_identically() {
        use memcomm_memsim::fault::FaultConfig;
        let topo = Topology::torus(&[4]);
        let flows = traffic::cyclic_shift(&topo, 1, 64 * 8);
        let plan = FaultPlan::new(FaultConfig {
            seed: 7,
            rate: 0.05,
            ..FaultConfig::default()
        });
        let mut cfg = small_cfg();
        cfg.fault = plan;
        cfg.record_events = true;
        let a = run_flows(&topo, &flows, &cfg).unwrap();
        let b = run_flows(&topo, &flows, &cfg).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
        assert!(a.dropped > 0 || a.corrupted > 0, "faults should fire at 5%");
        // Dropped words are retransmitted, never lost: all four 64-word
        // flows of the shift complete.
        assert_eq!(a.words, 256);
    }
}
