//! Dimension-order (e-cube) routing.

use crate::topology::{NodeId, Topology};

/// A directed link between two adjacent nodes.
///
/// Links are identified by their endpoints; dimension-order routes only
/// ever produce links between topology neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId {
    /// Sending endpoint.
    pub from: NodeId,
    /// Receiving endpoint.
    pub to: NodeId,
}

/// Computes the dimension-order route from `src` to `dst`: correct the
/// lowest dimension first, one hop at a time, taking the shortest direction
/// around torus rings.
///
/// Returns the (possibly empty) sequence of directed links.
///
/// # Panics
///
/// Panics if either node is out of range.
pub fn route(topo: &Topology, src: NodeId, dst: NodeId) -> Vec<LinkId> {
    let mut links = Vec::new();
    let mut here = topo.coords(src);
    let target = topo.coords(dst);
    for dim in 0..topo.dims().len() {
        let mut delta = topo.hop_delta(here[dim], target[dim], dim);
        let d = topo.dims()[dim];
        while delta != 0 {
            let step = delta.signum();
            let from = topo.node_at(&here);
            let next = (i64::from(here[dim]) + step).rem_euclid(i64::from(d)) as u32;
            here[dim] = next;
            let to = topo.node_at(&here);
            links.push(LinkId { from, to });
            delta -= step;
        }
    }
    debug_assert_eq!(topo.node_at(&here), dst);
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_length_equals_distance() {
        let t = Topology::torus(&[4, 4, 4]);
        for (a, b) in [(0, 63), (5, 5), (17, 42), (63, 0)] {
            assert_eq!(route(&t, a, b).len() as u64, t.distance(a, b));
        }
    }

    #[test]
    fn route_is_contiguous() {
        let t = Topology::mesh(&[8, 8]);
        let r = route(&t, 3, 60);
        for pair in r.windows(2) {
            assert_eq!(pair[0].to, pair[1].from);
        }
        assert_eq!(r.first().unwrap().from, 3);
        assert_eq!(r.last().unwrap().to, 60);
    }

    #[test]
    fn self_route_is_empty() {
        let t = Topology::torus(&[4, 4]);
        assert!(route(&t, 9, 9).is_empty());
    }

    #[test]
    fn dimension_order_corrects_low_dimension_first() {
        let t = Topology::mesh(&[4, 4]);
        let src = t.node_at(&[0, 0]);
        let dst = t.node_at(&[1, 1]);
        let r = route(&t, src, dst);
        // First hop moves in dimension 0.
        assert_eq!(r[0].to, t.node_at(&[1, 0]));
        assert_eq!(r[1].to, t.node_at(&[1, 1]));
    }

    #[test]
    fn torus_uses_wraparound() {
        let t = Topology::torus(&[8]);
        let r = route(&t, 0, 7);
        assert_eq!(r.len(), 1, "one wraparound hop, not seven");
        assert_eq!(r[0], LinkId { from: 0, to: 7 });
    }
}
