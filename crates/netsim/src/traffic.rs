//! Traffic patterns of the paper's workloads.

use crate::topology::{NodeId, Topology};

/// One point-to-point flow of a communication step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload bytes.
    pub bytes: u64,
}

/// Cyclic shift: node `p` sends to `(p + k) mod N` — the SOR halo-exchange
/// pattern for block distributions.
pub fn cyclic_shift(topo: &Topology, k: usize, bytes: u64) -> Vec<Flow> {
    let n = topo.len();
    (0..n)
        .map(|p| Flow {
            src: p,
            dst: (p + k) % n,
            bytes,
        })
        .collect()
}

/// All-to-all personalized communication: every node sends a distinct block
/// to every other node — the transpose/redistribution pattern.
pub fn all_to_all(topo: &Topology, bytes_per_pair: u64) -> Vec<Flow> {
    let n = topo.len();
    (0..n)
        .flat_map(|p| {
            (0..n).filter_map(move |q| {
                (p != q).then_some(Flow {
                    src: p,
                    dst: q,
                    bytes: bytes_per_pair,
                })
            })
        })
        .collect()
}

/// The classical XOR schedule for all-to-all personalized communication on
/// `n` nodes (`n` a power of two): `n − 1` rounds; in round `r` node `p`
/// exchanges with `p ^ r`. Each round is a perfect pairing, which is how
/// AAPC is scheduled with minimal congestion on T3D tori (the paper cites
/// Hinrichs et al. for tori up to 1024 nodes).
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn aapc_xor_schedule(n: usize, bytes_per_pair: u64) -> Vec<Vec<Flow>> {
    assert!(
        n.is_power_of_two(),
        "XOR schedule needs a power-of-two node count"
    );
    (1..n)
        .map(|r| {
            (0..n)
                .map(|p| Flow {
                    src: p,
                    dst: p ^ r,
                    bytes: bytes_per_pair,
                })
                .collect()
        })
        .collect()
}

/// A random permutation: every node sends to a distinct partner. Irregular
/// applications (FEM after partitioning) approximate this. Deterministic in
/// `seed` (xorshift64* generator, Fisher–Yates shuffle).
pub fn random_permutation(topo: &Topology, seed: u64, bytes: u64) -> Vec<Flow> {
    let n = topo.len();
    let mut targets: Vec<NodeId> = (0..n).collect();
    // splitmix64 scrambles the seed so adjacent seeds diverge, then
    // xorshift64* generates the stream — deterministic, dependency-free.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    state = (state ^ (state >> 31)) | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        targets.swap(i, j);
    }
    (0..n)
        .map(|p| Flow {
            src: p,
            dst: targets[p],
            bytes,
        })
        .collect()
}

/// Nearest-neighbour exchange: every node sends to each topology neighbour
/// (both directions of every dimension) — the FEM/stencil boundary pattern.
pub fn neighbor_exchange(topo: &Topology, bytes: u64) -> Vec<Flow> {
    let mut flows = Vec::new();
    for p in 0..topo.len() {
        let coords = topo.coords(p);
        for (dim, &d) in topo.dims().iter().enumerate() {
            if d < 2 {
                continue;
            }
            for step in [-1i64, 1] {
                if !topo.is_torus() {
                    let c = i64::from(coords[dim]) + step;
                    if c < 0 || c >= i64::from(d) {
                        continue;
                    }
                }
                // On a 2-wide torus ring the -1 and +1 neighbours are the
                // same node; emitting both would double-count the exchange
                // (it mispriced every scaled even-dim torus with a 2-wide
                // dimension at factor 4 instead of 2).
                if topo.is_torus() && d == 2 && step == -1 {
                    continue;
                }
                let mut c2 = coords.clone();
                c2[dim] = (i64::from(coords[dim]) + step).rem_euclid(i64::from(d)) as u32;
                let q = topo.node_at(&c2);
                if q != p {
                    flows.push(Flow {
                        src: p,
                        dst: q,
                        bytes,
                    });
                }
            }
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shift_is_a_permutation() {
        let t = Topology::torus(&[4, 4]);
        let flows = cyclic_shift(&t, 3, 64);
        let dsts: HashSet<_> = flows.iter().map(|f| f.dst).collect();
        assert_eq!(dsts.len(), t.len());
        assert_eq!(flows[0].dst, 3);
    }

    #[test]
    fn all_to_all_covers_all_pairs() {
        let t = Topology::torus(&[2, 2]);
        let flows = all_to_all(&t, 8);
        assert_eq!(flows.len(), 4 * 3);
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn xor_schedule_rounds_are_pairings() {
        let rounds = aapc_xor_schedule(8, 64);
        assert_eq!(rounds.len(), 7);
        for round in &rounds {
            let dsts: HashSet<_> = round.iter().map(|f| f.dst).collect();
            assert_eq!(dsts.len(), 8, "each round is a permutation");
            for f in round {
                // Pairing: if p sends to q, q sends to p.
                assert!(round.iter().any(|g| g.src == f.dst && g.dst == f.src));
            }
        }
        // Together the rounds cover every ordered pair exactly once.
        let all: Vec<_> = rounds.iter().flatten().collect();
        assert_eq!(all.len(), 8 * 7);
        let pairs: HashSet<_> = all.iter().map(|f| (f.src, f.dst)).collect();
        assert_eq!(pairs.len(), 8 * 7);
    }

    #[test]
    fn random_permutation_is_deterministic_bijection() {
        let t = Topology::torus(&[4, 4, 4]);
        let a = random_permutation(&t, 42, 8);
        let b = random_permutation(&t, 42, 8);
        assert_eq!(a, b);
        let dsts: HashSet<_> = a.iter().map(|f| f.dst).collect();
        assert_eq!(dsts.len(), t.len());
        let c = random_permutation(&t, 43, 8);
        assert_ne!(a, c, "different seeds give different permutations");
    }

    #[test]
    fn neighbor_exchange_degree() {
        // Interior nodes of a 2D torus have 4 neighbours.
        let t = Topology::torus(&[4, 4]);
        let flows = neighbor_exchange(&t, 8);
        assert_eq!(flows.len(), 16 * 4);
        // A mesh corner has 2.
        let m = Topology::mesh(&[4, 4]);
        let flows = neighbor_exchange(&m, 8);
        let corner_flows = flows.iter().filter(|f| f.src == 0).count();
        assert_eq!(corner_flows, 2);
    }

    #[test]
    fn two_wide_torus_rings_exchange_once_per_neighbour() {
        // On a [2, 2] torus each node has exactly two distinct neighbours;
        // the -1 and +1 steps of a 2-ring reach the same node and must not
        // produce duplicate flows.
        let t = Topology::torus(&[2, 2]);
        let flows = neighbor_exchange(&t, 8);
        assert_eq!(flows.len(), 4 * 2);
        let pairs: HashSet<_> = flows.iter().map(|f| (f.src, f.dst)).collect();
        assert_eq!(pairs.len(), flows.len(), "no duplicate (src, dst) pairs");
        // Mixed ring widths: the 2-ring contributes one flow per node, the
        // 4-ring two.
        let t = Topology::torus(&[4, 2]);
        let flows = neighbor_exchange(&t, 8);
        assert_eq!(flows.len(), 8 * 3);
        let pairs: HashSet<_> = flows.iter().map(|f| (f.src, f.dst)).collect();
        assert_eq!(pairs.len(), flows.len());
    }
}
