//! Word-granular link model for end-to-end co-simulation.
//!
//! A [`Link`] moves [`NetWord`](memcomm_memsim::nic::NetWord)s from a
//! sender's transmit FIFO to a receiver's receive FIFO. Each word costs wire
//! time proportional to its framing — 8 bytes for data-only (`Nd`), 16 for
//! address-data pairs (`Nadp`), plus an amortized packet header — scaled by
//! the congestion factor the traffic pattern imposes (see
//! [`congestion`](crate::congestion)).

use memcomm_memsim::clock::Cycle;
use memcomm_memsim::fault::{FaultPlan, LinkFault};
use memcomm_memsim::nic::{NetWord, TimedFifo, WordKind};
use memcomm_memsim::stats::Measurement;

pub use memcomm_memsim::engines::Step;

/// Link configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Raw wire bandwidth in bytes per node-clock cycle.
    pub bytes_per_cycle: f64,
    /// Payload words per packet, for header amortization.
    pub packet_words: u32,
    /// Header (routing info, delimiters) bytes per packet.
    pub header_bytes: u64,
    /// Extra wire bytes per address-data-pair word on top of the 8-byte
    /// payload: the store address plus any per-store control. On the T3D
    /// each remote store is its own small message (12 bytes extra); the
    /// Paragon packetizes pairs (8 bytes extra).
    pub adp_extra_bytes: u64,
    /// Cut-through latency from FIFO to FIFO.
    pub latency_cycles: Cycle,
    /// Congestion factor: how many competing streams share the wire.
    pub congestion: f64,
}

impl LinkParams {
    /// Effective wire cost in cycles for one word.
    pub fn word_cycles(&self, word: &NetWord) -> f64 {
        let payload_and_addr = if word.addr.is_some() {
            8.0 + self.adp_extra_bytes as f64
        } else {
            8.0
        };
        let framed = payload_and_addr + self.header_bytes as f64 / f64::from(self.packet_words);
        framed * self.congestion / self.bytes_per_cycle
    }
}

/// A directed link between two FIFOs.
#[derive(Debug, Clone)]
pub struct Link {
    params: LinkParams,
    clock: f64,
    staged: Option<NetWord>,
    moved: u64,
    dropped: u64,
    faults: Option<(FaultPlan, u64)>,
    obs: memcomm_obs::Obs,
    pid: u64,
    track: &'static str,
    busy: Option<(Cycle, Cycle)>,
}

impl Link {
    /// Creates an idle link. Captures the thread's current observability
    /// handle and point scope, so wire-busy spans land under the point the
    /// link was built for (see [`Link::labeled`]).
    ///
    /// # Panics
    ///
    /// Panics on non-positive bandwidth or congestion.
    pub fn new(params: LinkParams) -> Self {
        assert!(
            params.bytes_per_cycle > 0.0 && params.congestion >= 1.0,
            "link needs positive bandwidth and congestion >= 1"
        );
        assert!(params.packet_words >= 1);
        let obs = memcomm_obs::Obs::current();
        let pid = obs.pid();
        Link {
            params,
            clock: 0.0,
            staged: None,
            moved: 0,
            dropped: 0,
            faults: None,
            obs,
            pid,
            track: "link",
            busy: None,
        }
    }

    /// Creates a link that subjects each word to the fault plan's decisions
    /// at the given fault `site` (see [`memcomm_memsim::fault::site`]): the
    /// word can be dropped, its payload corrupted, or delivery jittered. The
    /// per-word fault index is the link's attempt counter, so a
    /// retransmitted word gets a fresh draw rather than repeating its fate.
    pub fn with_faults(params: LinkParams, plan: FaultPlan, site: u64) -> Self {
        let mut link = Link::new(params);
        link.faults = plan.is_active().then_some((plan, site));
        link
    }

    /// Names the trace track this link's wire-busy spans appear on
    /// (default `"link"`). Exchange co-simulations label their two
    /// directions `"link.ab"` / `"link.ba"`; the resilient protocol uses
    /// `"link.fwd"` / `"link.rev"`.
    pub fn labeled(mut self, track: &'static str) -> Self {
        self.track = track;
        self
    }

    /// Configuration.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// The link's local time in cycles (rounded up).
    pub fn time(&self) -> Cycle {
        self.clock.ceil() as Cycle
    }

    /// Words delivered so far.
    pub fn moved(&self) -> u64 {
        self.moved
    }

    /// Words consumed from the source but never delivered (link faults).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Moves one word from `from` to `to`. Blocked when the source is empty
    /// or the destination full. Under a fault plan, a word can be silently
    /// dropped (it consumes wire time but never arrives), corrupted in its
    /// payload, or delayed by a jitter window.
    pub fn step(&mut self, from: &mut TimedFifo, to: &mut TimedFifo) -> Step {
        if self.staged.is_none() {
            let Some(avail) = from.front_ready() else {
                return Step::Blocked;
            };
            let (_, mut word) = from
                .pop(self.time())
                .expect("front_ready implies non-empty");
            let cost = self.params.word_cycles(&word);
            // Advance the fractional clock from the word's availability, not
            // from the integer-rounded pop time — otherwise every word pays
            // a rounding surcharge.
            let start = self.clock.max(avail as f64);
            self.clock = start + cost;
            let mut fault = None;
            if let Some((plan, site)) = &self.faults {
                fault = plan.link_fault(*site, self.moved + self.dropped);
                if fault.is_some() {
                    self.obs
                        .count(memcomm_memsim::stats::fault_metric::INJECTED, 1);
                }
            }
            match fault {
                Some(LinkFault::Drop) => {
                    // Wire time is spent; the word is gone.
                    self.obs
                        .count(memcomm_memsim::stats::fault_metric::DROPPED, 1);
                    self.note_busy(start);
                    self.dropped += 1;
                    return Step::Progressed;
                }
                Some(LinkFault::Corrupt(mask)) => {
                    // Payload only: addresses carry hardware parity on
                    // both machines, so corruption an end-to-end
                    // checksum must catch lives in the data.
                    word.data ^= mask;
                }
                Some(LinkFault::Delay(extra)) => {
                    self.clock += extra as f64;
                }
                None => {}
            }
            self.note_busy(start);
            self.staged = Some(word);
        }
        let word = self.staged.expect("staged above");
        match to.push(self.time() + self.params.latency_cycles, word) {
            Some(_) => {
                self.staged = None;
                self.moved += 1;
                Step::Progressed
            }
            None => Step::Blocked,
        }
    }

    /// Extends the current wire-busy interval to cover a word occupying the
    /// wire from `start` (fractional cycles) to the link's clock. Contiguous
    /// words coalesce into one span; a gap flushes the previous span first.
    fn note_busy(&mut self, start: f64) {
        if !self.obs.tracing() {
            return;
        }
        let start = start as Cycle;
        let end = self.clock.ceil() as Cycle;
        match &mut self.busy {
            Some((_, until)) if start <= *until => *until = (*until).max(end),
            _ => {
                self.flush_busy();
                self.busy = Some((start, end));
            }
        }
    }

    /// Emits the pending wire-busy span, if any (also called on drop).
    fn flush_busy(&mut self) {
        if let Some((start, end)) = self.busy.take() {
            self.obs.span_at(self.pid, self.track, "busy", start, end);
        }
    }
}

impl Drop for Link {
    fn drop(&mut self) {
        self.flush_busy();
    }
}

/// Measures the raw wire rate of a link configuration by streaming `words`
/// words (data-only or address-data pairs) between two unconstrained FIFOs —
/// the simulated counterpart of the paper's Table 4 rows.
pub fn measure_wire_rate(params: LinkParams, words: u64, address_data_pairs: bool) -> Measurement {
    let mut from = TimedFifo::new(words.max(1) as usize);
    let mut to = TimedFifo::new(words.max(1) as usize);
    for i in 0..words {
        from.push(
            0,
            NetWord {
                addr: address_data_pairs.then_some(i * 8),
                data: i,
                kind: WordKind::Data,
            },
        )
        .expect("fifo sized to the transfer");
    }
    let mut link = Link::new(params);
    let mut end = 0;
    while link.moved() < words {
        match link.step(&mut from, &mut to) {
            Step::Progressed => end = link.time(),
            Step::Blocked => unreachable!("unconstrained fifos never block the link"),
            Step::Done => break,
        }
    }
    Measurement::new(words, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LinkParams {
        LinkParams {
            bytes_per_cycle: 1.0,
            packet_words: 16,
            header_bytes: 16,
            adp_extra_bytes: 8,
            latency_cycles: 20,
            congestion: 1.0,
        }
    }

    #[test]
    fn data_words_cost_framed_bytes() {
        // 8 payload + 1 header byte amortized = 9 cycles per word.
        let m = measure_wire_rate(params(), 1000, false);
        assert!(
            (m.cycles_per_word() - 9.0).abs() < 0.1,
            "{}",
            m.cycles_per_word()
        );
    }

    #[test]
    fn address_data_pairs_cost_roughly_double() {
        let data = measure_wire_rate(params(), 1000, false);
        let adp = measure_wire_rate(params(), 1000, true);
        let ratio = adp.cycles as f64 / data.cycles as f64;
        assert!((1.8..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn congestion_divides_bandwidth() {
        let base = measure_wire_rate(params(), 1000, false);
        let congested = measure_wire_rate(
            LinkParams {
                congestion: 2.0,
                ..params()
            },
            1000,
            false,
        );
        let ratio = congested.cycles as f64 / base.cycles as f64;
        assert!((1.95..2.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn link_respects_fifo_backpressure() {
        let mut from = TimedFifo::new(64);
        let mut to = TimedFifo::new(2);
        for i in 0..8 {
            from.push(
                0,
                NetWord {
                    addr: None,
                    data: i,
                    kind: WordKind::Data,
                },
            )
            .unwrap();
        }
        let mut link = Link::new(params());
        // Fill the destination.
        assert_eq!(link.step(&mut from, &mut to), Step::Progressed);
        assert_eq!(link.step(&mut from, &mut to), Step::Progressed);
        assert_eq!(link.step(&mut from, &mut to), Step::Blocked);
        // Draining the destination unblocks; the staged word is not lost.
        let before = link.moved();
        to.pop(1000);
        assert_eq!(link.step(&mut from, &mut to), Step::Progressed);
        assert_eq!(link.moved(), before + 1);
    }

    #[test]
    fn latency_delays_availability() {
        let mut from = TimedFifo::new(4);
        let mut to = TimedFifo::new(4);
        from.push(
            0,
            NetWord {
                addr: None,
                data: 7,
                kind: WordKind::Data,
            },
        )
        .unwrap();
        let mut link = Link::new(params());
        link.step(&mut from, &mut to);
        let ready = to.front_ready().unwrap();
        assert!(
            ready >= 20 + 9,
            "cut-through latency plus wire time, got {ready}"
        );
    }

    #[test]
    fn empty_source_blocks() {
        let mut from = TimedFifo::new(4);
        let mut to = TimedFifo::new(4);
        let mut link = Link::new(params());
        assert_eq!(link.step(&mut from, &mut to), Step::Blocked);
    }

    #[test]
    fn faulty_link_drops_and_corrupts_deterministically() {
        use memcomm_memsim::fault::{site, FaultConfig, FaultPlan};
        let plan = FaultPlan::new(FaultConfig {
            seed: 42,
            rate: 0.5,
            ..FaultConfig::default()
        });
        let run = || {
            let n = 200u64;
            let mut from = TimedFifo::new(n as usize);
            let mut to = TimedFifo::new(n as usize);
            for i in 0..n {
                from.push(0, NetWord::data(i)).unwrap();
            }
            let mut link = Link::with_faults(params(), plan, site::LINK_FORWARD);
            while link.moved() + link.dropped() < n {
                assert_eq!(link.step(&mut from, &mut to), Step::Progressed);
            }
            let delivered: Vec<u64> =
                std::iter::from_fn(|| to.pop(u64::MAX / 2).map(|(_, w)| w.data)).collect();
            (link.moved(), link.dropped(), delivered)
        };
        let (moved_a, dropped_a, delivered_a) = run();
        let (moved_b, dropped_b, delivered_b) = run();
        assert_eq!(moved_a, moved_b, "replay must drop the same words");
        assert_eq!(dropped_a, dropped_b);
        assert_eq!(delivered_a, delivered_b, "replay must corrupt identically");
        assert!(dropped_a > 0, "rate 0.5 over 200 words must drop some");
        assert!(
            delivered_a.iter().any(|&d| d >= 200),
            "some payloads must be corrupted"
        );
    }

    #[test]
    fn zero_rate_plan_is_a_clean_link() {
        use memcomm_memsim::fault::{site, FaultPlan};
        let n = 100u64;
        let mut from = TimedFifo::new(n as usize);
        let mut to = TimedFifo::new(n as usize);
        for i in 0..n {
            from.push(0, NetWord::data(i)).unwrap();
        }
        let mut link = Link::with_faults(params(), FaultPlan::disabled(), site::LINK_FORWARD);
        while link.moved() < n {
            link.step(&mut from, &mut to);
        }
        assert_eq!(link.dropped(), 0);
        let delivered: Vec<u64> =
            std::iter::from_fn(|| to.pop(u64::MAX / 2).map(|(_, w)| w.data)).collect();
        assert_eq!(delivered, (0..n).collect::<Vec<_>>());
    }
}
