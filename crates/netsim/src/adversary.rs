//! Seeded adversarial traffic generators for the event engine.
//!
//! Where [`traffic`](crate::traffic) reproduces the paper's well-behaved
//! workloads, this module builds the patterns that *stress* an
//! interconnect: heavy-tailed flow sizes, incast fan-in onto a few victim
//! nodes, hotspot convergence, bursty on/off sources, and retry-storm
//! traffic shaped to maximize drop/retransmit pressure when paired with a
//! faulty-link plan.
//!
//! Every generator is a pure function of `(topology, AdversaryConfig)` —
//! all randomness comes from a splitmix64 stream seeded by
//! [`AdversaryConfig::seed`], drawn in a fixed iteration order over nodes
//! and flows. Generation happens entirely before the engine runs, so the
//! schedule (and therefore the run digest) is invariant across worker and
//! shard counts by construction. All size arithmetic is integer-only
//! (shifts and geometric draws, never `powf`), so golden files pinned on
//! one platform replay bit-identically on any other.
//!
//! Generators also assign each flow a latency *class* (see
//! [`AdversaryTraffic::classes`]) so the engine's per-class inject→eject
//! histograms can split, say, incast victims from background traffic.

use memcomm_util::rng::Rng;

use crate::topology::Topology;
use crate::traffic::Flow;

/// Which adversarial pattern to compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Heavy-tailed flow sizes: most flows are mice, a geometric tail of
    /// elephants (a Pareto-like size mix without floating-point math).
    HeavyTail,
    /// Incast: many senders converge on a few victim nodes at once — the
    /// classic fan-in collapse workload.
    Incast,
    /// Hotspot: uniform background traffic plus a fraction redirected at a
    /// few hot nodes (the other classic saturation pattern).
    Hotspot,
    /// Bursty on/off sources: each node emits its load as a handful of
    /// back-to-back bursts at distinct random destinations, so link load
    /// shifts as bursts complete instead of holding steady.
    Bursty,
    /// Retry-storm shaping: every node sprays small diameter-spanning
    /// flows, maximizing the words in flight on shared central links — the
    /// worst case for a drop-heavy fault plan, since each drop re-queues
    /// into a deep backlog.
    RetryStorm,
}

impl AdversaryKind {
    /// Every kind, in canonical order (reports and sweeps iterate this).
    pub const ALL: [AdversaryKind; 5] = [
        AdversaryKind::HeavyTail,
        AdversaryKind::Incast,
        AdversaryKind::Hotspot,
        AdversaryKind::Bursty,
        AdversaryKind::RetryStorm,
    ];

    /// Stable CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            AdversaryKind::HeavyTail => "heavy-tail",
            AdversaryKind::Incast => "incast",
            AdversaryKind::Hotspot => "hotspot",
            AdversaryKind::Bursty => "bursty",
            AdversaryKind::RetryStorm => "retry-storm",
        }
    }

    /// Parses a CLI name (the inverse of [`AdversaryKind::name`]).
    pub fn parse(name: &str) -> Option<AdversaryKind> {
        AdversaryKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Knobs of one adversarial schedule. The defaults describe a moderate
/// adversary on any machine size; every field scales with the topology
/// rather than hard-coding node counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversaryConfig {
    /// Pattern to compile.
    pub kind: AdversaryKind,
    /// Seed of the generator stream (same seed + same topology = the same
    /// schedule, byte for byte).
    pub seed: u64,
    /// Base flow payload, in bytes (a "mouse"; tails and bursts scale it).
    pub base_bytes: u64,
    /// Flows sourced per node (intensity).
    pub flows_per_node: u32,
    /// Heavy tail: maximum doublings over `base_bytes` (the tail spans
    /// `base .. base << tail_cap`).
    pub tail_cap: u32,
    /// Incast/hotspot: number of victim (hot) nodes.
    pub victims: u32,
    /// Incast: senders aimed at each victim. Hotspot: per-mille of
    /// background flows redirected to a hot node.
    pub fan_in: u32,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            kind: AdversaryKind::HeavyTail,
            seed: 0xADEE_5EED,
            base_bytes: 256,
            flows_per_node: 2,
            tail_cap: 6,
            victims: 2,
            fan_in: 8,
        }
    }
}

/// A compiled adversarial schedule: the flow set plus the latency class of
/// each flow (parallel to `flows`, ready for
/// [`EngineConfig::flow_classes`](crate::engine::EngineConfig::flow_classes)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversaryTraffic {
    /// The flows, in generation order.
    pub flows: Vec<Flow>,
    /// Latency class per flow: 0 = background/mice, 1 = adversarial
    /// (elephants, incast victims' fan-in, hotspot-directed, storm spray).
    pub classes: Vec<u8>,
}

/// Human names of the latency classes every generator uses, indexed by
/// class (reports label histogram rows with these).
pub const CLASS_NAMES: [&str; 2] = ["background", "adversarial"];

/// A geometric draw in `0..=cap` (P(k) ∝ 2^-k): the integer-only engine of
/// the heavy tail. `base << k` then yields a discrete Pareto-like size mix
/// — about half the flows stay at `base`, a 1-in-2^cap elephant reaches
/// `base << cap`.
fn geometric(rng: &mut Rng, cap: u32) -> u32 {
    (rng.next_u64().trailing_zeros()).min(cap)
}

/// A destination other than `src`, uniform over the machine.
fn other_node(rng: &mut Rng, n: usize, src: usize) -> usize {
    let d = rng.range_usize(0, n - 1);
    if d >= src {
        d + 1
    } else {
        d
    }
}

/// Compiles the configured adversarial pattern into an engine flow
/// schedule on `topo`. Pure and deterministic in `(topo, cfg)`.
///
/// # Panics
///
/// Panics if the topology has fewer than 2 nodes (no network traffic can
/// exist).
pub fn generate(topo: &Topology, cfg: &AdversaryConfig) -> AdversaryTraffic {
    let n = topo.len();
    assert!(n >= 2, "adversarial traffic needs at least 2 nodes");
    // Fold the kind into the stream so two kinds at one seed diverge.
    let mut rng = Rng::new(cfg.seed ^ (cfg.kind.name().len() as u64) << 56 ^ cfg.kind as u64);
    let mut out = AdversaryTraffic {
        flows: Vec::new(),
        classes: Vec::new(),
    };
    let push = |f: Flow, class: u8, out: &mut AdversaryTraffic| {
        out.flows.push(f);
        out.classes.push(class);
    };
    let per_node = cfg.flows_per_node.max(1) as usize;
    let base = cfg.base_bytes.max(8);
    match cfg.kind {
        AdversaryKind::HeavyTail => {
            // Uniform random destinations; sizes drawn from the geometric
            // tail. Anything above base is an elephant (class 1).
            for src in 0..n {
                for _ in 0..per_node {
                    let k = geometric(&mut rng, cfg.tail_cap);
                    let dst = other_node(&mut rng, n, src);
                    let f = Flow {
                        src,
                        dst,
                        bytes: base << k,
                    };
                    push(f, u8::from(k > 0), &mut out);
                }
            }
        }
        AdversaryKind::Incast => {
            // Victims spread across the machine; each draws `fan_in`
            // distinct senders. A thin uniform background (one mouse per
            // non-victim node) keeps the rest of the fabric busy.
            let victims = (cfg.victims.max(1) as usize).min(n / 2).max(1);
            let stride = n / victims;
            let hot: Vec<usize> = (0..victims).map(|v| v * stride).collect();
            for &dst in &hot {
                let fan = (cfg.fan_in.max(1) as usize).min(n - 1);
                // Sample senders without replacement: shuffle the others.
                let mut senders: Vec<usize> = (0..n).filter(|&s| s != dst).collect();
                rng.shuffle(&mut senders);
                for &src in senders.iter().take(fan) {
                    let f = Flow {
                        src,
                        dst,
                        bytes: base << 2,
                    };
                    push(f, 1, &mut out);
                }
            }
            for src in 0..n {
                if hot.contains(&src) {
                    continue;
                }
                let dst = other_node(&mut rng, n, src);
                push(
                    Flow {
                        src,
                        dst,
                        bytes: base,
                    },
                    0,
                    &mut out,
                );
            }
        }
        AdversaryKind::Hotspot => {
            // Uniform traffic with `fan_in` per mille redirected at a hot
            // node — the classic hotspot saturation dial.
            let victims = (cfg.victims.max(1) as usize).min(n / 2).max(1);
            let stride = n / victims;
            let hot: Vec<usize> = (0..victims).map(|v| v * stride).collect();
            let per_mille = u64::from(cfg.fan_in.max(1)).min(1000);
            for src in 0..n {
                for _ in 0..per_node {
                    let redirect = rng.range_u64(0, 1000) < per_mille;
                    let (dst, class) = if redirect {
                        let h = *rng.choose(&hot);
                        if h == src {
                            (other_node(&mut rng, n, src), 0)
                        } else {
                            (h, 1)
                        }
                    } else {
                        (other_node(&mut rng, n, src), 0)
                    };
                    push(
                        Flow {
                            src,
                            dst,
                            bytes: base,
                        },
                        class,
                        &mut out,
                    );
                }
            }
        }
        AdversaryKind::Bursty => {
            // Each node's load arrives as back-to-back bursts at distinct
            // random destinations. The engine feeds a node's flows in
            // order, so each burst occupies a different set of links —
            // time-varying load without a time-varying API.
            let bursts = per_node.max(2);
            for src in 0..n {
                for b in 0..bursts {
                    let dst = other_node(&mut rng, n, src);
                    // Alternate heavy (on) and light (off) bursts.
                    let (bytes, class) = if b % 2 == 0 {
                        (base << 3, 1)
                    } else {
                        (base, 0)
                    };
                    push(Flow { src, dst, bytes }, class, &mut out);
                }
            }
        }
        AdversaryKind::RetryStorm => {
            // Spray: many small flows per node, destinations biased toward
            // the node's antipode so routes span the diameter and pile
            // words onto the central links. Paired with a drop-heavy fault
            // plan this maximizes retry pressure (each drop re-queues into
            // a deep backlog); on clean links it is just a hard uniform
            // load.
            let spray = (per_node * 2).max(2);
            for src in 0..n {
                for s in 0..spray {
                    let dst = if s % 2 == 0 {
                        // Antipode: the node "across" the machine.
                        (src + n / 2) % n
                    } else {
                        other_node(&mut rng, n, src)
                    };
                    let dst = if dst == src {
                        other_node(&mut rng, n, src)
                    } else {
                        dst
                    };
                    push(
                        Flow {
                            src,
                            dst,
                            bytes: base,
                        },
                        1,
                        &mut out,
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus16() -> Topology {
        Topology::torus(&[4, 4])
    }

    #[test]
    fn generation_is_deterministic_and_kind_sensitive() {
        let topo = torus16();
        for kind in AdversaryKind::ALL {
            let cfg = AdversaryConfig {
                kind,
                ..AdversaryConfig::default()
            };
            let a = generate(&topo, &cfg);
            let b = generate(&topo, &cfg);
            assert_eq!(a, b, "{}", kind.name());
            assert!(!a.flows.is_empty(), "{}", kind.name());
            assert_eq!(a.flows.len(), a.classes.len(), "{}", kind.name());
            assert!(
                a.flows.iter().all(|f| f.src != f.dst && f.bytes > 0),
                "{}: no local or empty flows",
                kind.name()
            );
            // A different seed moves the schedule (every kind draws).
            let other = generate(
                &topo,
                &AdversaryConfig {
                    seed: cfg.seed + 1,
                    ..cfg
                },
            );
            assert_ne!(a, other, "{}: seed must matter", kind.name());
        }
        // Distinct kinds at one seed diverge.
        let base = AdversaryConfig::default();
        let ht = generate(&topo, &base);
        let inc = generate(
            &topo,
            &AdversaryConfig {
                kind: AdversaryKind::Incast,
                ..base
            },
        );
        assert_ne!(ht.flows, inc.flows);
    }

    #[test]
    fn heavy_tail_spans_mice_and_elephants() {
        let topo = Topology::torus(&[8, 8]);
        let cfg = AdversaryConfig {
            kind: AdversaryKind::HeavyTail,
            flows_per_node: 4,
            ..AdversaryConfig::default()
        };
        let t = generate(&topo, &cfg);
        let base = cfg.base_bytes;
        let mice = t.flows.iter().filter(|f| f.bytes == base).count();
        let big = t.flows.iter().filter(|f| f.bytes >= base << 3).count();
        assert!(mice > t.flows.len() / 3, "roughly half the flows are mice");
        assert!(big > 0, "the tail reaches at least 8x base");
        assert!(
            t.flows.iter().all(|f| f.bytes <= base << cfg.tail_cap),
            "tail is capped"
        );
        // Classes tag exactly the above-base flows.
        for (f, &c) in t.flows.iter().zip(&t.classes) {
            assert_eq!(c == 1, f.bytes > base);
        }
    }

    #[test]
    fn incast_converges_on_victims() {
        let topo = torus16();
        let cfg = AdversaryConfig {
            kind: AdversaryKind::Incast,
            victims: 2,
            fan_in: 6,
            ..AdversaryConfig::default()
        };
        let t = generate(&topo, &cfg);
        // Class-1 flows all land on the 2 victims, 6 each, distinct srcs.
        let hot: Vec<usize> = t
            .flows
            .iter()
            .zip(&t.classes)
            .filter(|&(_, &c)| c == 1)
            .map(|(f, _)| f.dst)
            .collect();
        let mut victims: Vec<usize> = hot.clone();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 2);
        assert_eq!(hot.len(), 12);
        for &v in &victims {
            let senders: Vec<usize> = t
                .flows
                .iter()
                .zip(&t.classes)
                .filter(|&(f, &c)| c == 1 && f.dst == v)
                .map(|(f, _)| f.src)
                .collect();
            let mut uniq = senders.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), senders.len(), "senders are distinct");
        }
    }

    #[test]
    fn hotspot_redirection_rate_tracks_the_dial() {
        let topo = Topology::torus(&[8, 8]);
        let cfg = AdversaryConfig {
            kind: AdversaryKind::Hotspot,
            victims: 1,
            fan_in: 500, // 50% per mille dial
            flows_per_node: 8,
            ..AdversaryConfig::default()
        };
        let t = generate(&topo, &cfg);
        let hot = t.classes.iter().filter(|&&c| c == 1).count();
        let frac = hot as f64 / t.flows.len() as f64;
        assert!(
            (0.35..0.65).contains(&frac),
            "about half the flows redirect at dial 500, got {frac}"
        );
    }

    #[test]
    fn retry_storm_spans_the_diameter() {
        let topo = torus16();
        let t = generate(
            &topo,
            &AdversaryConfig {
                kind: AdversaryKind::RetryStorm,
                ..AdversaryConfig::default()
            },
        );
        // Half the spray targets antipodes.
        let anti = t.flows.iter().filter(|f| f.dst == (f.src + 8) % 16).count();
        assert!(anti >= t.flows.len() / 3);
        assert!(t.classes.iter().all(|&c| c == 1));
    }

    #[test]
    fn kind_names_round_trip() {
        for k in AdversaryKind::ALL {
            assert_eq!(AdversaryKind::parse(k.name()), Some(k));
        }
        assert_eq!(AdversaryKind::parse("nope"), None);
        assert_eq!(CLASS_NAMES.len(), 2);
    }
}
