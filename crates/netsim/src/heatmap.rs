//! Spatial telemetry rollups: per-link utilization and per-node congestion
//! heatmaps, rendered as deterministic JSON and as aligned ASCII grids for
//! 2D/3D tori (`repro --heatmap`).
//!
//! Everything here is integer arithmetic over the engine's
//! [`Telemetry`](crate::engine::Telemetry) — utilization in parts per
//! million, occupancy as per-tick means — so renderings are byte-identical
//! wherever the telemetry is (which the engine guarantees at any
//! jobs × shards and under either scheduler).

use memcomm_util::json::Json;

use crate::engine::Telemetry;
use crate::topology::Topology;

/// Busy time (16.16 fixed point) over a run of `cycles`, in parts per
/// million. Saturates at zero-length runs instead of dividing by zero.
pub fn util_ppm(busy_fp: u64, cycles: u64) -> u64 {
    if cycles == 0 {
        return 0;
    }
    ((u128::from(busy_fp) * 1_000_000) / (65536u128 * u128::from(cycles))) as u64
}

/// Per-node link utilization: the busiest *outgoing* link of each node, in
/// parts per million of the run's cycles.
pub fn node_util_ppm(tel: &Telemetry, nodes: usize, cycles: u64) -> Vec<u64> {
    let mut out = vec![0u64; nodes];
    for (i, &from) in tel.link_from.iter().enumerate() {
        let u = util_ppm(tel.link_busy_fp[i], cycles);
        let slot = &mut out[from as usize];
        *slot = (*slot).max(u);
    }
    out
}

/// Per-node congestion: mean words sitting in the node's ejection queue and
/// rx FIFO per sample tick.
pub fn node_mean_occupancy(tel: &Telemetry) -> Vec<u64> {
    let ticks = tel.ticks.max(1);
    tel.node_occupancy.iter().map(|&o| o / ticks).collect()
}

/// The heatmap as deterministic JSON: link records in ascending global link
/// order plus the two per-node rollups, with enough context (dims, tick
/// count, cycles) to re-derive every number.
pub fn heatmap_json(topo: &Topology, tel: &Telemetry, cycles: u64) -> Json {
    let links: Vec<usize> = (0..tel.link_from.len()).collect();
    Json::obj([
        ("nodes", Json::Int(topo.len() as i64)),
        ("dims", Json::arr(topo.dims(), |&d| Json::Int(i64::from(d)))),
        ("torus", Json::Bool(topo.is_torus())),
        ("sample_every", Json::Int(tel.sample_every as i64)),
        ("ticks", Json::Int(tel.ticks as i64)),
        ("cycles", Json::Int(cycles as i64)),
        (
            "links",
            Json::arr(&links, |&i| {
                Json::obj([
                    ("from", Json::Int(i64::from(tel.link_from[i]))),
                    ("to", Json::Int(i64::from(tel.link_to[i]))),
                    (
                        "busy_ppm",
                        Json::Int(util_ppm(tel.link_busy_fp[i], cycles) as i64),
                    ),
                ])
            }),
        ),
        (
            "node_util_ppm",
            Json::arr(&node_util_ppm(tel, topo.len(), cycles), |&u| {
                Json::Int(u as i64)
            }),
        ),
        (
            "node_occupancy",
            Json::arr(&node_mean_occupancy(tel), |&o| Json::Int(o as i64)),
        ),
    ])
}

/// One per-node grid. The topology's innermost dimension varies fastest,
/// so the last dimension is the column, the second-to-last the row, and
/// any remaining outer dimensions flatten into labelled planes (a 3D torus
/// prints one grid per outermost-coordinate plane).
fn render_grid(out: &mut String, topo: &Topology, values: &[u64]) {
    let dims = topo.dims();
    let cols = dims.last().copied().unwrap_or(1).max(1) as usize;
    let rows = if dims.len() >= 2 {
        dims[dims.len() - 2] as usize
    } else {
        1
    };
    let planes = topo.len() / (rows * cols);
    for p in 0..planes {
        if planes > 1 {
            out.push_str(&format!("  plane {p}\n"));
        }
        for r in 0..rows {
            out.push_str("   ");
            for c in 0..cols {
                let v = values[(p * rows + r) * cols + c].min(9999);
                out.push_str(&format!(" {v:>4}"));
            }
            out.push('\n');
        }
    }
}

/// Renders both heatmaps as aligned ASCII grids: link utilization (percent
/// of cycles the node's busiest outgoing link was transmitting) and queue
/// hotspots (mean words queued at the node per tick).
pub fn render_grids(topo: &Topology, tel: &Telemetry, cycles: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "link utilization (% busiest outgoing link; {} nodes, {} ticks x {} cycles)\n",
        topo.len(),
        tel.ticks,
        tel.sample_every
    ));
    let util_pct: Vec<u64> = node_util_ppm(tel, topo.len(), cycles)
        .iter()
        .map(|&u| u / 10_000)
        .collect();
    render_grid(&mut out, topo, &util_pct);
    out.push_str("queue hotspots (mean words queued per node per tick)\n");
    render_grid(&mut out, topo, &node_mean_occupancy(tel));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{self, AdversaryConfig, AdversaryKind};
    use crate::engine::{run_flows, EngineConfig};
    use crate::link::LinkParams;
    use memcomm_memsim::node::NodeParams;

    fn sampled_outcome(topo: &Topology) -> crate::engine::EngineOutcome {
        let t = adversary::generate(
            topo,
            &AdversaryConfig {
                kind: AdversaryKind::Incast,
                base_bytes: 128,
                ..AdversaryConfig::default()
            },
        );
        let link = LinkParams {
            bytes_per_cycle: 8.0,
            packet_words: 16,
            header_bytes: 8,
            adp_extra_bytes: 8,
            latency_cycles: 4,
            congestion: 1.0,
        };
        let mut cfg = EngineConfig::new(link, NodeParams::default());
        cfg.sample_every = 16;
        run_flows(topo, &t.flows, &cfg).unwrap()
    }

    #[test]
    fn ppm_is_exact_integer_arithmetic() {
        assert_eq!(util_ppm(0, 100), 0);
        // A wire busy every cycle is exactly one million ppm.
        assert_eq!(util_ppm(65536 * 100, 100), 1_000_000);
        assert_eq!(util_ppm(65536 * 50, 100), 500_000);
        assert_eq!(util_ppm(1, 0), 0, "zero-cycle runs render as idle");
    }

    #[test]
    fn json_covers_every_link_and_node() {
        let topo = Topology::torus(&[4, 4]);
        let out = sampled_outcome(&topo);
        let tel = out.telemetry.as_ref().unwrap();
        let j = heatmap_json(&topo, tel, out.cycles);
        assert_eq!(
            j.get("links").and_then(Json::as_arr).unwrap().len(),
            tel.link_from.len()
        );
        assert_eq!(
            j.get("node_util_ppm").and_then(Json::as_arr).unwrap().len(),
            16
        );
        // Rendering is a pure function: byte-identical on re-render, and
        // it parses back.
        assert_eq!(j.render(), j.render());
        assert!(Json::parse(&j.render()).is_ok());
        // The incast destination's neighbourhood must glow.
        let utils = node_util_ppm(tel, topo.len(), out.cycles);
        assert!(utils.iter().any(|&u| u > 0));
    }

    #[test]
    fn grids_match_topology_shape() {
        let t2 = Topology::torus(&[4, 4]);
        let out2 = sampled_outcome(&t2);
        let g2 = render_grids(&t2, out2.telemetry.as_ref().unwrap(), out2.cycles);
        // Two headers + 4 rows per heatmap.
        assert_eq!(g2.lines().count(), 2 + 4 + 4);
        assert!(g2.starts_with("link utilization"));

        let t3 = Topology::torus(&[2, 2, 4]);
        let out3 = sampled_outcome(&t3);
        let g3 = render_grids(&t3, out3.telemetry.as_ref().unwrap(), out3.cycles);
        // Two headers + per heatmap: 2 planes × (label + 2 rows).
        assert_eq!(g3.lines().count(), 2 + 2 * (2 * 3));
        assert!(g3.contains("  plane 1\n"));
    }
}
