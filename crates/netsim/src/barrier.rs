//! Barrier synchronization cost model.
//!
//! The paper's application kernels synchronize between communication steps
//! (its companion paper, Stricker et al. 1995, studies fast synchronization
//! explicitly). The SOR kernel in particular is fixed-cost-bound, and the
//! dominant fixed cost per iteration is the barrier. This module models the
//! standard **dissemination barrier**: in round `r` (of `⌈log₂ P⌉`) node
//! `p` signals node `(p + 2^r) mod P` and waits for the signal from
//! `(p − 2^r) mod P`; each round costs one one-word message plus the
//! software time to post and poll it.

use memcomm_memsim::clock::Cycle;
use memcomm_memsim::nic::{NetWord, WordKind};

use crate::link::LinkParams;
use crate::topology::Topology;

/// Number of dissemination rounds for `p` participants.
pub fn dissemination_rounds(p: usize) -> u32 {
    assert!(p >= 1, "a barrier needs at least one participant");
    (p as f64).log2().ceil() as u32
}

/// Cycles for one full barrier across the machine: rounds × (software post
/// and poll + one-word wire time at the pattern's congestion + cut-through
/// latency).
///
/// `software_cycles_per_round` is the library's cost to post the signal and
/// spin on the incoming flag; vendor-tuned code is a few hundred cycles,
/// PVM-class code an order of magnitude more.
pub fn barrier_cycles(
    topo: &Topology,
    link: &LinkParams,
    software_cycles_per_round: Cycle,
) -> Cycle {
    let rounds = Cycle::from(dissemination_rounds(topo.len()));
    let word = NetWord {
        addr: None,
        data: 0,
        kind: WordKind::Data,
    };
    let wire = link.word_cycles(&word).ceil() as Cycle;
    rounds * (software_cycles_per_round + wire + link.latency_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkParams {
        LinkParams {
            bytes_per_cycle: 160.0 / 150.0,
            packet_words: 16,
            header_bytes: 8,
            adp_extra_bytes: 10,
            latency_cycles: 20,
            congestion: 2.0,
        }
    }

    #[test]
    fn rounds_are_log2() {
        assert_eq!(dissemination_rounds(1), 0);
        assert_eq!(dissemination_rounds(2), 1);
        assert_eq!(dissemination_rounds(64), 6);
        assert_eq!(dissemination_rounds(65), 7);
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let small = barrier_cycles(&Topology::torus(&[2, 2]), &link(), 300);
        let large = barrier_cycles(&Topology::torus(&[4, 4, 4]), &link(), 300);
        assert_eq!(large, 3 * small, "64 nodes take 6 rounds, 4 nodes take 2");
    }

    #[test]
    fn sixty_four_nodes_land_in_the_ten_microsecond_range() {
        // ~6 rounds x ~(300 + 17 + 20) cycles ~ 2000 cycles = 13.5 us at
        // 150 MHz — the fast-synchronization ballpark of the era.
        let t = barrier_cycles(&Topology::torus(&[4, 4, 4]), &link(), 300);
        assert!((1500..3000).contains(&t), "barrier {t} cycles");
    }

    #[test]
    fn single_node_barrier_is_free() {
        assert_eq!(barrier_cycles(&Topology::torus(&[1]), &link(), 300), 0);
    }
}
