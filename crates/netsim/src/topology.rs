//! Mesh and torus topologies.

use std::fmt;

/// A node's index in the machine (row-major over the dimensions).
pub type NodeId = usize;

/// A k-dimensional mesh or torus.
///
/// The T3D is a 3D torus (e.g. 2×8×8×8 compute nodes counting the shared
/// ports); the Paragon a 2D mesh with sometimes unfortunate aspect ratios
/// (e.g. 112×16). Wraparound links are per-machine: meshes have none.
///
/// # Examples
///
/// ```rust
/// use memcomm_netsim::Topology;
///
/// let t3d = Topology::torus(&[4, 4, 4]);
/// assert_eq!(t3d.len(), 64);
/// assert_eq!(t3d.coords(21), vec![1, 1, 1]);
/// assert_eq!(t3d.node_at(&[1, 1, 1]), 21);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    dims: Vec<u32>,
    wrap: bool,
}

impl Topology {
    /// A torus with the given dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or no dimensions are given.
    pub fn torus(dims: &[u32]) -> Self {
        Self::new(dims, true)
    }

    /// A mesh (no wraparound links) with the given dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or no dimensions are given.
    pub fn mesh(dims: &[u32]) -> Self {
        Self::new(dims, false)
    }

    fn new(dims: &[u32], wrap: bool) -> Self {
        assert!(!dims.is_empty(), "topology needs at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        Topology {
            dims: dims.to_vec(),
            wrap,
        }
    }

    /// Whether wraparound links exist.
    pub fn is_torus(&self) -> bool {
        self.wrap
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.dims.iter().map(|&d| d as usize).product()
    }

    /// Whether the machine has no nodes (never true — dimensions are
    /// positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The coordinates of a node (innermost dimension varies fastest).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: NodeId) -> Vec<u32> {
        assert!(node < self.len(), "node {node} outside machine");
        let mut rest = node;
        let mut out = vec![0; self.dims.len()];
        for (k, &d) in self.dims.iter().enumerate().rev() {
            out[k] = (rest % d as usize) as u32;
            rest /= d as usize;
        }
        out
    }

    /// The node at given coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range or of the wrong rank.
    pub fn node_at(&self, coords: &[u32]) -> NodeId {
        assert_eq!(coords.len(), self.dims.len(), "coordinate rank mismatch");
        let mut id = 0usize;
        for (k, (&c, &d)) in coords.iter().zip(&self.dims).enumerate() {
            assert!(c < d, "coordinate {c} out of range in dimension {k}");
            id = id * d as usize + c as usize;
        }
        id
    }

    /// Signed hop distance from `a` to `b` along dimension `dim` under the
    /// routing rule (shortest way around for a torus, direct for a mesh).
    pub fn hop_delta(&self, a: u32, b: u32, dim: usize) -> i64 {
        let d = i64::from(self.dims[dim]);
        let delta = i64::from(b) - i64::from(a);
        if !self.wrap {
            return delta;
        }
        // Shortest way around the ring; ties go positive.
        let wrapped = delta.rem_euclid(d);
        if wrapped * 2 <= d {
            wrapped
        } else {
            wrapped - d
        }
    }

    /// Manhattan routing distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        let (ca, cb) = (self.coords(a), self.coords(b));
        (0..self.dims.len())
            .map(|k| self.hop_delta(ca[k], cb[k], k).unsigned_abs())
            .sum()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shape = self
            .dims
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join("x");
        write!(f, "{} {}", shape, if self.wrap { "torus" } else { "mesh" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let t = Topology::torus(&[2, 8, 4]);
        for n in 0..t.len() {
            assert_eq!(t.node_at(&t.coords(n)), n);
        }
    }

    #[test]
    fn torus_wraps_shortest_way() {
        let t = Topology::torus(&[8]);
        assert_eq!(t.hop_delta(0, 7, 0), -1);
        assert_eq!(t.hop_delta(7, 0, 0), 1);
        assert_eq!(t.hop_delta(0, 4, 0), 4); // tie goes positive
        assert_eq!(t.hop_delta(0, 3, 0), 3);
    }

    #[test]
    fn mesh_does_not_wrap() {
        let m = Topology::mesh(&[8]);
        assert_eq!(m.hop_delta(0, 7, 0), 7);
        assert_eq!(m.distance(0, 7), 7);
    }

    #[test]
    fn distance_is_manhattan() {
        let t = Topology::torus(&[4, 4]);
        let a = t.node_at(&[0, 0]);
        let b = t.node_at(&[3, 2]);
        // dim0: 0->3 wraps to -1 (1 hop); dim1: 0->2 is 2 hops.
        assert_eq!(t.distance(a, b), 3);
    }

    #[test]
    fn display_shows_shape() {
        assert_eq!(Topology::torus(&[2, 8, 8]).to_string(), "2x8x8 torus");
        assert_eq!(Topology::mesh(&[112, 16]).to_string(), "112x16 mesh");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = Topology::torus(&[4, 0]);
    }
}
