//! Queue substrates of the engine: rank-ordered router queues (per-flow
//! lanes or the reference heap) and the in-flight delivery record.
//!
//! Everything here is ordering-critical: the differential tier
//! (`tests/wheel_vs_heap.rs`) proves both router-queue substrates pop the
//! same entries in the same order, case by case.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use memcomm_memsim::clock::Cycle;
use memcomm_util::arena::{Arena, NIL};

/// Queued word waiting to transmit on a link. Orders by (rank, ready);
/// `rank` is the word-major rotation of the globally unique `seq` (word
/// index in the high bits), so a backlogged link interleaves competing
/// flows word by word — the deterministic analogue of a router's
/// round-robin arbiter. Arrival-order service would instead let the flow
/// nearest the bottleneck convoy hundreds of words ahead, starving the
/// links downstream of the other flows' turns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct QEntry {
    pub rank: u64,
    pub ready: Cycle,
    pub seq: u64,
    pub hop: u16,
    /// Upstream buffer the word still occupies (`u32::MAX` = none, the word
    /// came straight off its injection port).
    pub prev_link: u32,
    pub prev_vc: u8,
    /// Fault-drop retransmissions already spent on this hop; the retry
    /// policy abandons the word once the budget runs out. Trails the
    /// ordering fields, so it never perturbs arbitration.
    pub tries: u32,
    /// Cycle the word left its injection port (for inject→eject latency).
    pub t_inject: Cycle,
    /// Critical-path attribution: cycles spent waiting in router/ejection
    /// queues so far. Like `tries`, these accumulators trail the ordering
    /// fields — they ride along without perturbing arbitration, and the
    /// charges telescope exactly: `ready` is always the word's previous
    /// milestone, so summing the floor-differences reconstructs the full
    /// inject→eject latency with no rounding gap.
    pub queue_cycles: u64,
    /// Attribution: cycles on wires (serialization, fault delay, latency).
    pub wire_cycles: u64,
    /// Attribution: cycles parked in retry backoff after fault drops.
    pub backoff_cycles: u64,
}

/// Word-major arbitration rank: `seq` packs `flow << 32 | word`, so the
/// rotation compares word index first and flow index only on ties. Ranks
/// are a bijection of the globally unique `seq`, so within any one queue
/// the rank alone already totals the order — the remaining [`QEntry`]
/// fields never break a tie.
pub(crate) fn word_rank(seq: u64) -> u64 {
    seq.rotate_left(32)
}

/// Per-flow FIFO lanes over a shared [`Arena`], plus a lazy min-heap of
/// lane-head `(rank, lane)` candidates.
///
/// Correctness rests on one invariant: *words of a flow reach any given
/// queue in ascending rank order.* Injection emits a flow's words in word
/// order; on every shared link the earlier word (lower rank in the same
/// lane) transmits first and the link's `free` cursor is monotone, so
/// arrival stamps — and barrier filing, which is globally `(arrive, seq)`
/// sorted — preserve per-flow order hop by hop, even under Delay faults
/// (the delay moves `free` for both words alike). A Drop retry re-files
/// the entry it just popped, which is a *prepend*, not an append. Each
/// lane is therefore pre-sorted, the queue minimum is always a lane head,
/// and the head heap is over flows (tens) instead of words (thousands).
///
/// The head heap is *lazy*: prepends push a fresh candidate without
/// retracting the old head's entry, so stale candidates linger and are
/// discarded when they surface ([`LaneQueue::settle`]). Every non-empty
/// lane always has its current head among the candidates.
#[derive(Debug)]
pub(crate) struct LaneQueue {
    /// `(head, tail)` arena indices per lane ([`NIL`] = empty lane).
    lanes: Vec<(u32, u32)>,
    /// Lazy min-heap of `(head rank, lane)` candidates.
    heads: BinaryHeap<Reverse<(u64, u32)>>,
    len: u32,
}

impl LaneQueue {
    fn new(lanes: u32) -> LaneQueue {
        LaneQueue {
            lanes: vec![(NIL, NIL); lanes as usize],
            heads: BinaryHeap::new(),
            len: 0,
        }
    }

    fn push_back(&mut self, lane: u32, e: QEntry, arena: &mut Arena<QEntry>) {
        let idx = arena.alloc(e);
        let slot = &mut self.lanes[lane as usize];
        if slot.0 == NIL {
            *slot = (idx, idx);
            self.heads.push(Reverse((e.rank, lane)));
        } else {
            debug_assert!(
                arena.get(slot.1).rank < e.rank,
                "lane rank monotonicity violated"
            );
            arena.set_next(slot.1, idx);
            slot.1 = idx;
        }
        self.len += 1;
    }

    fn push_front(&mut self, lane: u32, e: QEntry, arena: &mut Arena<QEntry>) {
        let idx = arena.alloc(e);
        let slot = &mut self.lanes[lane as usize];
        if slot.0 == NIL {
            slot.1 = idx;
        } else {
            arena.set_next(idx, slot.0);
        }
        slot.0 = idx;
        self.heads.push(Reverse((e.rank, lane)));
        self.len += 1;
    }

    /// Discards stale head candidates until the top one is live.
    fn settle(&mut self, arena: &Arena<QEntry>) {
        while let Some(&Reverse((rank, lane))) = self.heads.peek() {
            let head = self.lanes[lane as usize].0;
            if head != NIL && arena.get(head).rank == rank {
                return;
            }
            self.heads.pop();
        }
    }

    fn peek(&mut self, arena: &Arena<QEntry>) -> Option<QEntry> {
        self.settle(arena);
        let &Reverse((_, lane)) = self.heads.peek()?;
        Some(*arena.get(self.lanes[lane as usize].0))
    }

    fn pop(&mut self, arena: &mut Arena<QEntry>) -> QEntry {
        self.settle(arena);
        let Reverse((_, lane)) = self.heads.pop().expect("pop on an empty router queue");
        let slot = &mut self.lanes[lane as usize];
        let head = slot.0;
        let next = arena.next(head);
        let e = arena.free(head);
        slot.0 = next;
        if next == NIL {
            slot.1 = NIL;
        } else {
            self.heads.push(Reverse((arena.get(next).rank, lane)));
        }
        self.len -= 1;
        e
    }
}

/// A rank-ordered router queue under either scheduler substrate. Both pop
/// the same entries in the same order; the heap variant is the retired
/// reference implementation.
#[derive(Debug)]
pub(crate) enum RouterQueue {
    Heap(BinaryHeap<Reverse<QEntry>>),
    Lanes(LaneQueue),
}

impl RouterQueue {
    pub fn new(reference: bool, lanes: u32) -> RouterQueue {
        if reference {
            RouterQueue::Heap(BinaryHeap::new())
        } else {
            RouterQueue::Lanes(LaneQueue::new(lanes))
        }
    }

    pub fn len(&self) -> u64 {
        match self {
            RouterQueue::Heap(h) => h.len() as u64,
            RouterQueue::Lanes(l) => u64::from(l.len),
        }
    }

    /// Files a word that arrived over the network or off its injection
    /// port; lane mode appends (per-flow arrivals are rank-ascending).
    pub fn push_arrival(&mut self, lane: u32, e: QEntry, arena: &mut Arena<QEntry>) {
        match self {
            RouterQueue::Heap(h) => h.push(Reverse(e)),
            RouterQueue::Lanes(l) => l.push_back(lane, e, arena),
        }
    }

    /// Re-files the entry just popped (a dropped word retrying): its rank
    /// is still the lane minimum, so lane mode prepends.
    pub fn push_retry(&mut self, lane: u32, e: QEntry, arena: &mut Arena<QEntry>) {
        match self {
            RouterQueue::Heap(h) => h.push(Reverse(e)),
            RouterQueue::Lanes(l) => l.push_front(lane, e, arena),
        }
    }

    /// The minimum-rank entry, if any.
    pub fn peek(&mut self, arena: &Arena<QEntry>) -> Option<QEntry> {
        match self {
            RouterQueue::Heap(h) => h.peek().map(|&Reverse(e)| e),
            RouterQueue::Lanes(l) => l.peek(arena),
        }
    }

    pub fn pop(&mut self, arena: &mut Arena<QEntry>) -> QEntry {
        match self {
            RouterQueue::Heap(h) => h.pop().expect("pop on an empty router queue").0,
            RouterQueue::Lanes(l) => l.pop(arena),
        }
    }
}

/// A word in flight between windows: transmitted during one window,
/// delivered at the barrier opening the window containing `arrive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Delivery {
    pub arrive: Cycle,
    pub seq: u64,
    pub hop: u16,
    pub to_node: u32,
    pub via_link: u32,
    pub vc: u8,
    /// Injection cycle carried end-to-end (trails the `(arrive, seq)`
    /// ordering, which stays unique and unchanged).
    pub t_inject: Cycle,
    /// Critical-path queue-wait accumulator, carried across the barrier
    /// (trailing, like `t_inject`).
    pub queue_cycles: u64,
    /// Critical-path wire accumulator.
    pub wire_cycles: u64,
    /// Critical-path retry-backoff accumulator.
    pub backoff_cycles: u64,
}
