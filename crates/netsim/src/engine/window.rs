//! The conservative-window logic — one window of one shard, identical
//! under both schedulers (only the queue substrate behind
//! [`RouterQueue`](super::sched::RouterQueue) differs).
//!
//! Every event a stage emits lands in its stage's own output vector, with
//! sites visited in ascending order within the shard. Because each site
//! (port or link) is owned by exactly one shard under *any* port-group
//! partition, and a site's inputs arrive only through the barrier, the
//! per-site event sequence of a window does not depend on the partition —
//! the property the coordinator's canonical stage-major fold relies on.

use memcomm_memsim::clock::Cycle;
use memcomm_memsim::fault::{site, LinkFault};
use memcomm_memsim::nic::TimedFifo;

use super::build::Net;
use super::sched::{word_rank, QEntry};
use super::shard::{queued_words, Shard, WindowOut, BUSY_ONE};
use super::{EngineEvent, EventKind};

impl Shard {
    /// One window on the reference path: fresh output buffers every window,
    /// exactly as the retired scheduler allocated them.
    pub(crate) fn run_window(&mut self, t0: Cycle, t1: Cycle, net: &Net) -> WindowOut {
        let mut out = WindowOut::default();
        self.window_core(t0, t1, net, &mut out);
        out
    }

    /// One window on the production path: reuses the shard's persistent
    /// output buffers (the coordinator drains them at the barrier).
    pub(crate) fn run_window_in_place(&mut self, t0: Cycle, t1: Cycle, net: &Net) {
        let mut out = std::mem::take(&mut self.out);
        out.clear();
        self.window_core(t0, t1, net, &mut out);
        self.out = out;
    }

    fn window_core(&mut self, t0: Cycle, t1: Cycle, net: &Net, out: &mut WindowOut) {
        let Shard {
            node_lo,
            tx,
            rx,
            feed_list,
            feed_span,
            feed_pos,
            feed_word,
            src_free,
            drain_free,
            eject,
            links,
            link_globals,
            ports,
            inbox,
            credit_inbox,
            arena,
            lanes: use_lanes,
            drained_flows,
            lat_hist,
            lat_sums,
            stall_mark,
            telemetry,
            ..
        } = self;
        let node_lo = *node_lo;

        // Credits freed during the previous window become usable now.
        for (local, vc) in credit_inbox.drain(..) {
            links[local as usize].credits[vc as usize] += 1;
        }

        // 1. Deliveries due this window (coordinator pre-sorted by
        // (arrive, seq)): file each word into its next link queue, or into
        // the destination's ejection queue. The word keeps occupying its
        // upstream (via_link, vc) buffer until it moves on.
        for d in inbox.iter().copied() {
            let flow = &net.flows[(d.seq >> 32) as usize];
            let next = d.hop as usize + 1;
            if next == flow.hops.len() {
                let local = (d.to_node - node_lo) as usize;
                eject[local].push_arrival(
                    flow.eject_lane,
                    QEntry {
                        rank: word_rank(d.seq),
                        ready: d.arrive,
                        seq: d.seq,
                        hop: d.hop,
                        prev_link: d.via_link,
                        prev_vc: d.vc,
                        tries: 0,
                        t_inject: d.t_inject,
                        queue_cycles: d.queue_cycles,
                        wire_cycles: d.wire_cycles,
                        backoff_cycles: d.backoff_cycles,
                    },
                    arena,
                );
            } else {
                let h = flow.hops[next];
                let li = link_globals
                    .binary_search(&h.link)
                    .expect("delivery routed to a shard that does not own the link");
                links[li].queues[usize::from(h.vc)].push_arrival(
                    h.lane,
                    QEntry {
                        rank: word_rank(d.seq),
                        ready: d.arrive,
                        seq: d.seq,
                        hop: next as u16,
                        prev_link: d.via_link,
                        prev_vc: d.vc,
                        tries: 0,
                        t_inject: d.t_inject,
                        queue_cycles: d.queue_cycles,
                        wire_cycles: d.wire_cycles,
                        backoff_cycles: d.backoff_cycles,
                    },
                    arena,
                );
            }
        }
        inbox.clear();

        // 2. Source pump: memory feeds tx at its own pace, blocked by a full
        // FIFO (the processor stalls — the analytic model's port term).
        for i in 0..tx.len() {
            let (_, span_hi) = feed_span[i];
            loop {
                let pos = feed_pos[i];
                if pos >= span_hi {
                    break;
                }
                let fi = feed_list[pos as usize];
                let flow = &net.flows[fi as usize];
                if feed_word[i] >= flow.words {
                    feed_pos[i] += 1;
                    feed_word[i] = 0;
                    continue;
                }
                let t = src_free[i].max(t0);
                if t >= t1 {
                    break;
                }
                let seq = (u64::from(fi) << 32) | u64::from(feed_word[i]);
                let Some(at) = tx[i].push(t, net.word(seq)) else {
                    break;
                };
                src_free[i] = at + net.source_wc;
                feed_word[i] += 1;
                out.progress += 1;
            }
        }

        // 3. Injection: each port serializes the words of its node group
        // onto the network, arbitrating by (ready, node).
        for p in ports.iter_mut() {
            loop {
                let mut best: Option<(Cycle, u32)> = None;
                for node in p.node_lo..p.node_hi {
                    let local = (node - node_lo) as usize;
                    if let Some(r) = tx[local].front_ready() {
                        if best.is_none_or(|b| (r, node) < b) {
                            best = Some((r, node));
                        }
                    }
                }
                let Some((ready, node)) = best else {
                    break;
                };
                let start = (ready as f64).max(p.inject_free).max(t0 as f64);
                if start >= t1 as f64 {
                    break;
                }
                let local = (node - node_lo) as usize;
                let (_, w) = tx[local]
                    .pop(start.floor() as Cycle)
                    .expect("arbitration picked a non-empty tx FIFO");
                let seq = w.data;
                let h = net.flows[(seq >> 32) as usize].hops[0];
                let li = link_globals
                    .binary_search(&h.link)
                    .expect("flow injected on a shard that does not own its first link");
                p.inject_free = start + net.wt;
                let entry = p.inject_free.ceil() as Cycle;
                let port_id = p.id;
                links[li].queues[usize::from(h.vc)].push_arrival(
                    h.lane,
                    QEntry {
                        rank: word_rank(seq),
                        ready: entry,
                        seq,
                        hop: 0,
                        prev_link: u32::MAX,
                        prev_vc: 0,
                        tries: 0,
                        t_inject: start.floor() as Cycle,
                        queue_cycles: 0,
                        wire_cycles: 0,
                        backoff_cycles: 0,
                    },
                    arena,
                );
                out.inject_events.push(EngineEvent {
                    time: start.floor() as Cycle,
                    kind: EventKind::Inject,
                    site: port_id,
                    vc: h.vc,
                    seq,
                });
                out.progress += 1;
            }
        }

        // 4. Links: transmit queued words while the wire and window allow,
        // earliest feasible (start, seq) first across the two VCs; a
        // transmit consumes a credit of this link's downstream buffer and
        // returns the upstream one.
        for l in links.iter_mut() {
            loop {
                let mut best: Option<(f64, u64, usize)> = None;
                for vc in 0..2usize {
                    if l.credits[vc] == 0 {
                        continue;
                    }
                    let Some(e) = l.queues[vc].peek(arena) else {
                        continue;
                    };
                    let start = (e.ready as f64).max(l.free).max(t0 as f64);
                    if best.is_none_or(|(bs, bq, _)| (start, e.rank) < (bs, bq)) {
                        best = Some((start, e.rank, vc));
                    }
                }
                let Some((start, _, vc)) = best else {
                    break;
                };
                if start >= t1 as f64 {
                    break;
                }
                // Outage calendar: a link inside an outage window cannot
                // transmit; it parks until the window's recovery cycle (or
                // forever — the degraded accounting picks up what a
                // permanently dead link strands).
                if net.outages {
                    if let Some(end) = net
                        .fault
                        .link_outage_until(site::engine_link(l.global), start.floor() as Cycle)
                    {
                        if end > l.outage_mark {
                            l.outages += 1;
                            out.outaged += 1;
                            l.outage_mark = end;
                        }
                        if end == Cycle::MAX {
                            l.free = f64::INFINITY;
                            break;
                        }
                        l.free = l.free.max(end as f64);
                        continue;
                    }
                }
                let mut e = l.queues[vc].pop(arena);
                // Attribution: everything between the word's last milestone
                // (`ready`) and the floor the transmit actually starts on is
                // queueing — waiting for credits, the wire, or an outage.
                e.queue_cycles = e
                    .queue_cycles
                    .saturating_add((start.floor() as Cycle).saturating_sub(e.ready));
                let fault = net
                    .fault
                    .link_fault(site::engine_link(l.global), l.attempts);
                l.attempts += 1;
                let mut wire = net.wt;
                match fault {
                    Some(LinkFault::Drop) => {
                        // The wire is consumed but nothing arrives. Within
                        // the per-hop retry budget the word retransmits from
                        // its upstream buffer after a deterministic
                        // exponential backoff (links are lossless in
                        // hardware — this models the retry a real adapter
                        // schedules); past the budget it is abandoned, its
                        // upstream buffer freed, and the run degrades with
                        // exact accounting instead of wedging.
                        l.free = start + wire;
                        if net.sample_every > 0 {
                            l.busy_fp += (wire * BUSY_ONE).round() as u64;
                        }
                        out.link_events.push(EngineEvent {
                            time: start.floor() as Cycle,
                            kind: EventKind::Drop,
                            site: l.global,
                            vc: vc as u8,
                            seq: e.seq,
                        });
                        out.dropped += 1;
                        out.progress += 1;
                        if e.tries >= net.retry.max_retries {
                            if e.prev_link != u32::MAX {
                                out.credits.push((e.prev_link, e.prev_vc));
                            }
                            out.abandoned += 1;
                            continue;
                        }
                        let lane = net.flows[(e.seq >> 32) as usize].hops[usize::from(e.hop)].lane;
                        let next_ready =
                            (l.free.ceil() as Cycle).saturating_add(net.retry.delay(e.tries));
                        l.queues[vc].push_retry(
                            lane,
                            QEntry {
                                ready: next_ready,
                                tries: e.tries + 1,
                                // Attribution: the span from this transmit's
                                // start to the retry's ready cycle (wasted
                                // wire + exponential backoff) is charged to
                                // backoff; `ready` stays the milestone.
                                backoff_cycles: e.backoff_cycles.saturating_add(
                                    next_ready.saturating_sub(start.floor() as Cycle),
                                ),
                                ..e
                            },
                            arena,
                        );
                        out.retried += 1;
                        continue;
                    }
                    Some(LinkFault::Corrupt(_)) => out.corrupted += 1,
                    Some(LinkFault::Delay(d)) => wire += d as f64,
                    None => {}
                }
                l.credits[vc] -= 1;
                l.free = start + wire;
                if net.sample_every > 0 {
                    l.busy_fp += (wire * BUSY_ONE).round() as u64;
                }
                let arrive = (l.free.ceil() as Cycle) + net.latency;
                if e.prev_link != u32::MAX {
                    out.credits.push((e.prev_link, e.prev_vc));
                }
                out.link_events.push(EngineEvent {
                    time: start.floor() as Cycle,
                    kind: EventKind::Hop,
                    site: l.global,
                    vc: vc as u8,
                    seq: e.seq,
                });
                out.deliveries.push(super::sched::Delivery {
                    arrive,
                    seq: e.seq,
                    hop: e.hop,
                    to_node: net.link_to[l.global as usize],
                    via_link: l.global,
                    vc: vc as u8,
                    t_inject: e.t_inject,
                    queue_cycles: e.queue_cycles,
                    // Attribution: transmit start to delivery (serialization,
                    // fault delay, and link latency) is wire time; `arrive`
                    // becomes the word's next milestone.
                    wire_cycles: e
                        .wire_cycles
                        .saturating_add(arrive.saturating_sub(start.floor() as Cycle)),
                    backoff_cycles: e.backoff_cycles,
                });
                out.flit_hops += 1;
                out.progress += 1;
            }
        }

        // 5. Ejection: the port serializes arrived words into the
        // destination rx FIFO; a full FIFO backpressures into the network
        // (the upstream buffer credit stays consumed).
        for p in ports.iter_mut() {
            loop {
                let (p_lo, p_hi) = (p.node_lo, p.node_hi);
                let mut best: Option<(u64, Cycle, u32)> = None;
                for node in p_lo..p_hi {
                    let local = (node - node_lo) as usize;
                    if rx[local].len() == rx[local].capacity() {
                        continue;
                    }
                    if let Some(e) = eject[local].peek(arena) {
                        if best.is_none_or(|(br, bq, _)| (e.rank, e.ready) < (br, bq)) {
                            best = Some((e.rank, e.ready, node));
                        }
                    }
                }
                let Some((_, ready, node)) = best else {
                    break;
                };
                let start = (ready as f64).max(p.eject_free).max(t0 as f64);
                if start >= t1 as f64 {
                    break;
                }
                let local = (node - node_lo) as usize;
                let e = eject[local].pop(arena);
                p.eject_free = start + net.wt;
                let t_in = p.eject_free.ceil() as Cycle;
                if net.record_latency {
                    let class = usize::from(net.flows[(e.seq >> 32) as usize].class);
                    let lat = (start.floor() as Cycle).saturating_sub(e.t_inject);
                    lat_hist[class].record(lat);
                    if !lat_sums.is_empty() {
                        // The final queue charge: waiting for the ejection
                        // port. Inject wait is the residual, so the four
                        // components telescope to `lat` exactly.
                        let queue = e
                            .queue_cycles
                            .saturating_add((start.floor() as Cycle).saturating_sub(e.ready));
                        let b = &mut lat_sums[class];
                        b.count += 1;
                        b.queue += queue;
                        b.wire += e.wire_cycles;
                        b.backoff += e.backoff_cycles;
                        b.total += lat;
                        b.inject += lat
                            .saturating_sub(queue)
                            .saturating_sub(e.wire_cycles)
                            .saturating_sub(e.backoff_cycles);
                    }
                }
                rx[local]
                    .push(t_in, net.word(e.seq))
                    .expect("arbitration checked rx had space");
                out.credits.push((e.prev_link, e.prev_vc));
                out.eject_events.push(EngineEvent {
                    time: start.floor() as Cycle,
                    kind: EventKind::Eject,
                    site: p.id,
                    vc: e.prev_vc,
                    seq: e.seq,
                });
                out.progress += 1;
            }
        }

        // 6. Drain: the memory side unconditionally empties rx at its own
        // pace — this is what guarantees ejection eventually proceeds.
        for i in 0..rx.len() {
            while let Some(avail) = rx[i].front_ready() {
                let t = avail.max(drain_free[i]).max(t0);
                if t >= t1 {
                    break;
                }
                let (at, w) = rx[i].pop(t).expect("front_ready implies non-empty");
                drain_free[i] = at + net.drain_wc;
                drained_flows[net.drain_slot[(w.data >> 32) as usize] as usize] += 1;
                out.drained += 1;
                out.last_drain = out.last_drain.max(at);
                out.progress += 1;
            }
        }

        // The shard's contribution to the barrier's backlog gauge.
        out.queued = queued_words(*use_lanes, arena, links, eject);

        // NIC stall delta for the coordinator's once-per-window registry
        // flush (the FIFOs are armed quiet, so this is the only place the
        // stall ledger surfaces).
        if net.fault.is_active() {
            let fired: u64 = tx.iter().map(TimedFifo::stalls_fired).sum::<u64>()
                + rx.iter().map(TimedFifo::stalls_fired).sum::<u64>();
            out.stalls = fired - *stall_mark;
            *stall_mark = fired;
        }

        // Sampling ticks: every shard walks the same global tick schedule
        // (windows are uniform across shards), so per-shard series stay
        // aligned point for point under any partition.
        if let Some(tel) = telemetry {
            tel.pending_retries += out.retried;
            tel.pending_outages += out.outaged;
            while tel.next_tick <= t1 {
                tel.sample(tx, rx, eject, links, arena, *use_lanes);
                tel.next_tick += net.sample_every;
            }
        }
    }

    /// One extra sample covering the stub interval between the last on-grid
    /// tick and the run's final window — called uniformly across shards by
    /// the coordinator so counter series totals match the run ledger.
    pub(crate) fn telemetry_tail_flush(&mut self) {
        let Shard {
            tx,
            rx,
            eject,
            links,
            arena,
            lanes,
            telemetry,
            ..
        } = self;
        if let Some(tel) = telemetry {
            tel.sample(tx, rx, eject, links, arena, *lanes);
        }
    }
}
