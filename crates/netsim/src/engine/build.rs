//! Static build: link enumeration, dimension-ordered routes with dateline
//! VC labels, lane assignment, and the load-balanced N-way shard partition.

use std::collections::HashMap;

use memcomm_memsim::clock::Cycle;
use memcomm_memsim::error::{SimError, SimResult};
use memcomm_memsim::fault::{site, FaultPlan};
use memcomm_memsim::nic::{NetWord, TimedFifo};
use memcomm_util::arena::Arena;
use memcomm_util::par;

use crate::routing::{route, LinkId};
use crate::topology::Topology;
use crate::traffic::Flow;

use super::sched::RouterQueue;
use super::shard::{LinkState, PortState, Shard, ShardTelemetry, WindowOut};
use super::EngineConfig;

/// One hop of a flow's route: global link index, the virtual channel the
/// dateline rule assigns to it, and the flow's lane in that (link, VC)
/// queue under the lane scheduler.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Hop {
    pub link: u32,
    pub vc: u8,
    pub lane: u32,
}

#[derive(Debug, Clone)]
pub(crate) struct FlowPath {
    pub src: u32,
    pub words: u32,
    pub hops: Vec<Hop>,
    /// The flow's lane in its destination's ejection queue.
    pub eject_lane: u32,
    /// Latency class of the flow (from [`EngineConfig::flow_classes`],
    /// indexed by the *input* flow position; 0 when unclassed).
    pub class: u8,
}

/// Read-only context shared by every shard.
pub(crate) struct Net {
    pub flows: Vec<FlowPath>,
    pub link_to: Vec<u32>,
    pub wt: f64,
    pub latency: Cycle,
    pub source_wc: Cycle,
    pub drain_wc: Cycle,
    pub fault: FaultPlan,
    pub pairs: bool,
    /// Link-level retransmission policy (see [`super::RetryPolicy`]).
    pub retry: super::RetryPolicy,
    /// Whether the fault plan can take links out (checked per transmit).
    pub outages: bool,
    /// Flow index → slot in its draining shard's per-flow ledger.
    pub drain_slot: Vec<u32>,
    /// Record inject→eject latency per class at the ejection ports.
    pub record_latency: bool,
    /// Source node of each link, parallel to `link_to` (the heatmap keys
    /// utilization by link endpoints).
    pub link_from: Vec<u32>,
    /// Telemetry sampling interval in cycles (0 = off).
    pub sample_every: Cycle,
}

impl Net {
    pub fn word(&self, seq: u64) -> NetWord {
        if self.pairs {
            NetWord::addressed(seq.wrapping_mul(8), seq)
        } else {
            NetWord::data(seq)
        }
    }
}

fn changed_dim(topo: &Topology, from: usize, to: usize) -> usize {
    let a = topo.coords(from);
    let b = topo.coords(to);
    (0..a.len())
        .find(|&d| a[d] != b[d])
        .expect("a route hop must change exactly one coordinate")
}

fn is_wrap_hop(topo: &Topology, from: usize, to: usize, dim: usize) -> bool {
    let d = topo.dims()[dim];
    let a = topo.coords(from)[dim];
    let b = topo.coords(to)[dim];
    d >= 3 && a.abs_diff(b) == d - 1
}

/// Assigns each route hop its virtual channel under the dateline rule.
pub(crate) fn vc_labels(topo: &Topology, hops: &[LinkId]) -> Vec<u8> {
    let mut labels = Vec::with_capacity(hops.len());
    let mut cur_dim = usize::MAX;
    let mut crossed = false;
    for h in hops {
        let dim = changed_dim(topo, h.from, h.to);
        if dim != cur_dim {
            cur_dim = dim;
            crossed = false;
        }
        labels.push(u8::from(crossed));
        if is_wrap_hop(topo, h.from, h.to, dim) {
            crossed = true;
        }
    }
    labels
}

/// Enumerates every directed link of the topology in canonical (ascending
/// `LinkId`) order.
pub(crate) fn enumerate_links(topo: &Topology) -> Vec<LinkId> {
    let mut set = std::collections::BTreeSet::new();
    for node in 0..topo.len() {
        let coords = topo.coords(node);
        for (dim, &d) in topo.dims().iter().enumerate() {
            if d < 2 {
                continue;
            }
            let mut push = |c: u32| {
                let mut to = coords.clone();
                to[dim] = c;
                set.insert(LinkId {
                    from: node,
                    to: topo.node_at(&to),
                });
            };
            let c = coords[dim];
            if c + 1 < d {
                push(c + 1);
            } else if topo.is_torus() {
                push(0);
            }
            if c >= 1 {
                push(c - 1);
            } else if topo.is_torus() {
                push(d - 1);
            }
        }
    }
    set.into_iter().collect()
}

pub(crate) struct Sim<'a> {
    pub cfg: &'a EngineConfig,
    pub net: Net,
    pub shards: Vec<std::sync::Mutex<Shard>>,
    /// Global link index → (shard, local index).
    pub link_owner: Vec<(u32, u32)>,
    /// Node → shard.
    pub shard_of_node: Vec<u32>,
    pub total_words: u64,
}

pub(crate) fn protocol(detail: String) -> SimError {
    SimError::Protocol { detail, at: 0 }
}

/// Picks how many shards to carve the machine into. The partition itself
/// never depends on the worker count at a *given* shard count — and the
/// coordinator's stage-major fold makes the results independent of the
/// shard count too — so this is purely a throughput knob: roughly two
/// shards per worker keeps every worker busy despite uneven window costs,
/// without paying barrier overhead for hundreds of tiny shards.
fn pick_shard_count(cfg: &EngineConfig, jobs: usize, groups: usize) -> usize {
    if cfg.shards > 0 {
        return cfg.shards.clamp(1, groups.max(1));
    }
    if jobs <= 1 {
        1
    } else {
        (jobs * 2).clamp(1, groups.max(1))
    }
}

/// Splits port groups `0..weights.len()` into `shards` contiguous runs of
/// near-equal total weight: group `g` goes to the first shard whose weight
/// quota the running prefix sum has not yet filled. Returns the
/// (monotone non-decreasing) owner of each group; every shard gets at
/// least one group.
fn partition_groups(weights: &[u64], shards: usize) -> Vec<u32> {
    let groups = weights.len();
    debug_assert!(shards >= 1 && shards <= groups);
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    let mut owner = vec![0u32; groups];
    let mut s = 0usize;
    let mut acc: u128 = 0;
    for g in 0..groups {
        owner[g] = s as u32;
        acc += u128::from(weights[g]);
        if s + 1 < shards {
            // Close the shard once its quota is met, or when every
            // remaining shard needs one of the remaining groups.
            let must_close = groups - g - 1 == shards - s - 1;
            if must_close || acc * shards as u128 >= (s + 1) as u128 * total {
                s += 1;
            }
        }
    }
    owner
}

pub(crate) fn build_sim<'a>(
    topo: &Topology,
    flows: &[Flow],
    cfg: &'a EngineConfig,
) -> SimResult<Sim<'a>> {
    let n = topo.len();
    if n == 0 {
        return Err(protocol("engine needs a non-empty topology".into()));
    }
    if cfg.vc_slots == 0 {
        return Err(protocol(
            "engine needs at least one buffer slot per VC".into(),
        ));
    }

    // Routes first: validates the flow set before anything is allocated.
    let mut paths = Vec::with_capacity(flows.len());
    let links = enumerate_links(topo);
    let link_index: HashMap<LinkId, u32> = links
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, i as u32))
        .collect();
    for (fi, f) in flows.iter().enumerate() {
        if f.src >= n || f.dst >= n {
            return Err(protocol(format!(
                "flow {fi} endpoints ({}, {}) outside the {n}-node topology",
                f.src, f.dst
            )));
        }
        let words = f.bytes.div_ceil(8);
        if f.src == f.dst || words == 0 {
            // Local or empty flows never enter the network.
            continue;
        }
        if words > u64::from(u32::MAX) {
            return Err(protocol(format!("flow {fi} too large: {words} words")));
        }
        if paths.len() >= u32::MAX as usize {
            return Err(protocol("too many flows (need < 2^32)".into()));
        }
        let r = route(topo, f.src, f.dst);
        let vcs = vc_labels(topo, &r);
        let hops: Vec<Hop> = r
            .iter()
            .zip(&vcs)
            .map(|(l, &vc)| Hop {
                link: link_index[l],
                vc,
                lane: 0,
            })
            .collect();
        if hops.len() > u16::MAX as usize {
            return Err(protocol(format!("flow {fi} route too long")));
        }
        paths.push(FlowPath {
            src: f.src as u32,
            words: words as u32,
            hops,
            eject_lane: 0,
            class: cfg.flow_classes.get(fi).copied().unwrap_or(0),
        });
    }
    let classes = usize::from(paths.iter().map(|p| p.class).max().unwrap_or(0)) + 1;

    // Lane assignment: the flows crossing each (link, VC) queue — and the
    // flows terminating at each node — get consecutive lane indices in flow
    // order. Only the lane scheduler reads these.
    let mut q_lanes: Vec<[u32; 2]> = vec![[0, 0]; links.len()];
    let mut ej_lanes: Vec<u32> = vec![0; n];
    for p in &mut paths {
        for h in &mut p.hops {
            let c = &mut q_lanes[h.link as usize][usize::from(h.vc)];
            h.lane = *c;
            *c += 1;
        }
        let last = p.hops.last().expect("network flows have at least one hop");
        let dst = links[last.link as usize].to;
        p.eject_lane = ej_lanes[dst];
        ej_lanes[dst] += 1;
    }

    // Shard partition: contiguous runs of whole port groups, balanced by
    // each group's share of the run's work. A group's weight counts every
    // word that touches it — sourced at it, carried over a link it owns
    // (links belong to their `from` node's group), or ejected at it — plus
    // one so idle groups still spread evenly.
    let npp = cfg.nodes_per_port.max(1) as usize;
    let groups = n.div_ceil(npp);
    let jobs = if cfg.jobs == 0 { par::jobs() } else { cfg.jobs };
    let shard_count = pick_shard_count(cfg, jobs, groups);
    let mut weights = vec![1u64; groups];
    for p in &paths {
        let w = u64::from(p.words);
        weights[p.src as usize / npp] += w;
        for h in &p.hops {
            weights[links[h.link as usize].from / npp] += w;
        }
        let last = p.hops.last().expect("network flows have at least one hop");
        weights[links[last.link as usize].to / npp] += w;
    }
    let group_owner = partition_groups(&weights, shard_count);
    let shard_of_node: Vec<u32> = (0..n).map(|v| group_owner[v / npp]).collect();

    let total_words: u64 = paths.iter().map(|p| u64::from(p.words)).sum();

    let reference = cfg.reference_scheduler;
    let mut shards: Vec<Shard> = (0..shard_count)
        .map(|_| Shard {
            node_lo: u32::MAX,
            tx: Vec::new(),
            rx: Vec::new(),
            feed_list: Vec::new(),
            feed_span: Vec::new(),
            feed_pos: Vec::new(),
            feed_word: Vec::new(),
            src_free: Vec::new(),
            drain_free: Vec::new(),
            eject: Vec::new(),
            links: Vec::new(),
            link_globals: Vec::new(),
            ports: Vec::new(),
            inbox: Vec::new(),
            credit_inbox: Vec::new(),
            arena: Arena::new(),
            lanes: !reference,
            drain_flow_ids: Vec::new(),
            drained_flows: Vec::new(),
            lat_hist: if cfg.record_latency {
                vec![memcomm_obs::Histogram::default(); classes]
            } else {
                Vec::new()
            },
            lat_sums: if cfg.record_latency && cfg.sample_every > 0 {
                vec![super::ClassBreakdown::default(); classes]
            } else {
                Vec::new()
            },
            stall_mark: 0,
            telemetry: None,
            out: WindowOut::default(),
        })
        .collect();

    // Per-flow drain ledger: each flow gets one slot in the shard that owns
    // its destination, so degraded runs can account for every missing word.
    let mut drain_slot = vec![0u32; paths.len()];
    for (fi, p) in paths.iter().enumerate() {
        let last = p.hops.last().expect("network flows have at least one hop");
        let dst = links[last.link as usize].to;
        let shard = &mut shards[shard_of_node[dst] as usize];
        drain_slot[fi] = shard.drain_flow_ids.len() as u32;
        shard.drain_flow_ids.push(fi as u32);
        shard.drained_flows.push(0);
    }

    // Per-node feed lists (flow indices originating there, ascending),
    // flattened per shard below.
    let mut feeds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (fi, p) in paths.iter().enumerate() {
        feeds[p.src as usize].push(fi as u32);
    }

    for (node, &shard_id) in shard_of_node.iter().enumerate() {
        let shard = &mut shards[shard_id as usize];
        if shard.node_lo == u32::MAX {
            shard.node_lo = node as u32;
        }
        let mut tx = TimedFifo::new(cfg.node.tx_fifo_words);
        let mut rx = TimedFifo::new(cfg.node.rx_fifo_words);
        if cfg.fault.is_active() {
            // Quiet arming: the shards run inside the parallel window, so
            // per-event registry traffic would serialize them on the metrics
            // mutex. The coordinator diffs `stalls_fired` once per window
            // and flushes one aggregate delta — identical totals.
            tx.set_faults_quiet(cfg.fault, site::engine_tx(node));
            rx.set_faults_quiet(cfg.fault, site::engine_rx(node));
        }
        shard.tx.push(tx);
        shard.rx.push(rx);
        let lo = shard.feed_list.len() as u32;
        shard.feed_list.extend_from_slice(&feeds[node]);
        let hi = shard.feed_list.len() as u32;
        shard.feed_span.push((lo, hi));
        shard.feed_pos.push(lo);
        shard.feed_word.push(0);
        shard.src_free.push(0);
        shard.drain_free.push(0);
        shard
            .eject
            .push(RouterQueue::new(reference, ej_lanes[node]));
    }
    let mut link_owner = Vec::with_capacity(links.len());
    for (gi, l) in links.iter().enumerate() {
        let s = shard_of_node[l.from] as usize;
        let local = shards[s].links.len() as u32;
        shards[s].links.push(LinkState {
            global: gi as u32,
            queues: [
                RouterQueue::new(reference, q_lanes[gi][0]),
                RouterQueue::new(reference, q_lanes[gi][1]),
            ],
            credits: [cfg.vc_slots, cfg.vc_slots],
            free: 0.0,
            attempts: 0,
            outages: 0,
            outage_mark: 0,
            busy_fp: 0,
        });
        shards[s].link_globals.push(gi as u32);
        link_owner.push((s as u32, local));
    }
    for (g, &owner) in group_owner.iter().enumerate().take(groups) {
        let s = owner as usize;
        let lo = (g * npp) as u32;
        let hi = (((g + 1) * npp).min(n)) as u32;
        shards[s].ports.push(PortState {
            id: g as u32,
            node_lo: lo,
            node_hi: hi,
            inject_free: 0.0,
            eject_free: 0.0,
        });
    }
    if cfg.sample_every > 0 {
        for shard in &mut shards {
            shard.telemetry = Some(ShardTelemetry::new(cfg.sample_every, shard.tx.len()));
        }
    }

    let wt = cfg.word_cycles();
    let net = Net {
        flows: paths,
        link_to: links.iter().map(|l| l.to as u32).collect(),
        wt,
        latency: cfg.link.latency_cycles.max(1),
        source_wc: cfg.source_word_cycles,
        drain_wc: cfg.drain_word_cycles,
        fault: cfg.fault,
        pairs: cfg.address_data_pairs,
        retry: cfg.retry,
        outages: cfg.fault.has_link_outages(),
        drain_slot,
        record_latency: cfg.record_latency,
        link_from: links.iter().map(|l| l.from as u32).collect(),
        sample_every: cfg.sample_every,
    };

    Ok(Sim {
        cfg,
        net,
        shards: shards.into_iter().map(std::sync::Mutex::new).collect(),
        link_owner,
        shard_of_node,
        total_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_balanced_and_total() {
        // Skewed weights: the heavy head must not leave later shards empty.
        let w = [100, 1, 1, 1, 1, 1, 1, 1];
        for shards in 1..=8 {
            let owner = partition_groups(&w, shards);
            assert_eq!(owner.len(), w.len());
            assert!(owner.windows(2).all(|p| p[0] <= p[1]), "monotone owners");
            assert_eq!(owner[0], 0);
            assert_eq!(owner[w.len() - 1] as usize, shards - 1, "all shards used");
            // Contiguity + monotonicity + both ends pinned ⇒ every shard
            // owns at least one group.
        }
        // Even weights split evenly.
        let owner = partition_groups(&[1; 8], 4);
        let counts = (0..4)
            .map(|s| owner.iter().filter(|&&o| o as usize == s).count())
            .collect::<Vec<_>>();
        assert_eq!(counts, vec![2, 2, 2, 2]);
    }

    #[test]
    fn shard_count_tracks_jobs_and_respects_override() {
        use crate::link::LinkParams;
        use memcomm_memsim::node::NodeParams;
        let link = LinkParams {
            bytes_per_cycle: 8.0,
            packet_words: 16,
            header_bytes: 8,
            adp_extra_bytes: 8,
            latency_cycles: 4,
            congestion: 1.0,
        };
        let mut cfg = EngineConfig::new(link, NodeParams::default());
        assert_eq!(pick_shard_count(&cfg, 1, 512), 1);
        assert_eq!(pick_shard_count(&cfg, 4, 512), 8);
        assert_eq!(pick_shard_count(&cfg, 8, 3), 3, "clamped to group count");
        cfg.shards = 5;
        assert_eq!(pick_shard_count(&cfg, 1, 512), 5, "explicit override wins");
        cfg.shards = 99;
        assert_eq!(pick_shard_count(&cfg, 1, 7), 7, "override clamped");
    }
}
