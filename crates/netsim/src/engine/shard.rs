//! Per-shard simulation state: structure-of-arrays node state, link and
//! port records, and the window output buffers the coordinator folds.
//!
//! A shard owns a contiguous run of whole port groups — the nodes of those
//! groups, their NIC FIFOs, their outgoing links, and their ejection
//! queues. Per-node router state is stored as parallel arrays indexed by
//! `node - node_lo` rather than one struct per node: the engine only ever
//! touches a node's two NIC FIFOs and a handful of scalars, so the SoA
//! layout keeps a 4096-node torus at a few kilobytes per node (the old
//! layout embedded a full [`memcomm_memsim::Node`], cache model and
//! simulated DRAM included, which the engine never exercised).

use memcomm_memsim::clock::Cycle;
use memcomm_memsim::nic::TimedFifo;
use memcomm_obs::Histogram;
use memcomm_util::arena::Arena;

use super::sched::{Delivery, QEntry, RouterQueue};
use super::EngineEvent;

pub(crate) struct LinkState {
    pub global: u32,
    pub queues: [RouterQueue; 2],
    pub credits: [u32; 2],
    pub free: f64,
    pub attempts: u64,
    /// Distinct outage windows this link ran into while trying to transmit.
    pub outages: u64,
    /// Recovery cycle of the last counted outage (so re-encountering the
    /// same window across engine windows counts once).
    pub outage_mark: Cycle,
}

pub(crate) struct PortState {
    pub id: u32,
    pub node_lo: u32,
    pub node_hi: u32,
    pub inject_free: f64,
    pub eject_free: f64,
}

/// One shard: a contiguous slice of the machine, plus its window scratch.
/// All `Vec`s prefixed with a node meaning are parallel arrays indexed by
/// local node (`node - node_lo`).
pub(crate) struct Shard {
    pub node_lo: u32,
    /// Outgoing NIC FIFO per local node.
    pub tx: Vec<TimedFifo>,
    /// Incoming NIC FIFO per local node.
    pub rx: Vec<TimedFifo>,
    /// Flow indices originating at each local node, flattened; node `i`
    /// owns `feed_list[feed_span[i].0 .. feed_span[i].1]`, ascending.
    pub feed_list: Vec<u32>,
    pub feed_span: Vec<(u32, u32)>,
    /// Cursor into `feed_list` per local node (absolute index).
    pub feed_pos: Vec<u32>,
    /// Next word index of the flow under the cursor, per local node.
    pub feed_word: Vec<u32>,
    /// When the memory side may feed the next word into `tx`, per node.
    pub src_free: Vec<Cycle>,
    /// When the memory side may drain the next word from `rx`, per node.
    pub drain_free: Vec<Cycle>,
    /// Words awaiting the ejection port (same word-major order as links),
    /// per local node.
    pub eject: Vec<RouterQueue>,
    /// Owned links, ascending global index.
    pub links: Vec<LinkState>,
    /// Global index of each owned link, parallel to `links` (binary search).
    pub link_globals: Vec<u32>,
    pub ports: Vec<PortState>,
    pub inbox: Vec<Delivery>,
    pub credit_inbox: Vec<(u32, u8)>,
    /// Entry storage shared by every lane queue of the shard (unused by the
    /// reference scheduler). Its live count is exactly the shard's queued
    /// words.
    pub arena: Arena<QEntry>,
    /// Whether this shard's queues run on lanes (false = reference heaps).
    pub lanes: bool,
    /// Engine flow index of each flow this shard drains (its destinations),
    /// in build order; `Net::drain_slot` maps a flow to its slot here.
    pub drain_flow_ids: Vec<u32>,
    /// Words drained so far per local drain slot — the per-flow delivery
    /// ledger the degraded accounting settles against.
    pub drained_flows: Vec<u64>,
    /// Inject→eject latency per flow class, recorded at the ejection port
    /// (only when the run asked for latency; merged in shard order at the
    /// end — histogram merge is commutative, so the partition is invisible).
    pub lat_hist: Vec<Histogram>,
    /// Window output buffers, reused across windows on the production path.
    pub out: WindowOut,
}

/// One window's output, kept stage-split so the coordinator can fold the
/// event stream in canonical (stage, site) order across all shards — the
/// order every partition produces, which is what makes the digest
/// independent of the shard count.
#[derive(Default)]
pub(crate) struct WindowOut {
    pub deliveries: Vec<Delivery>,
    pub credits: Vec<(u32, u8)>,
    /// Injection events, ascending port id.
    pub inject_events: Vec<EngineEvent>,
    /// Link transit events (hops and fault drops interleaved per link),
    /// ascending global link index.
    pub link_events: Vec<EngineEvent>,
    /// Ejection events, ascending port id.
    pub eject_events: Vec<EngineEvent>,
    pub progress: u64,
    pub drained: u64,
    pub flit_hops: u64,
    pub dropped: u64,
    pub corrupted: u64,
    /// Drop retransmissions scheduled under the retry policy this window.
    pub retried: u64,
    /// Words abandoned after exhausting their per-hop retry budget.
    pub abandoned: u64,
    pub last_drain: Cycle,
    /// Words sitting in this shard's router/ejection queues at window end.
    pub queued: u64,
}

impl WindowOut {
    /// Resets for the next window, keeping buffer capacities.
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.credits.clear();
        self.inject_events.clear();
        self.link_events.clear();
        self.eject_events.clear();
        self.progress = 0;
        self.drained = 0;
        self.flit_hops = 0;
        self.dropped = 0;
        self.corrupted = 0;
        self.retried = 0;
        self.abandoned = 0;
        self.last_drain = 0;
        self.queued = 0;
    }
}
