//! Per-shard simulation state: structure-of-arrays node state, link and
//! port records, and the window output buffers the coordinator folds.
//!
//! A shard owns a contiguous run of whole port groups — the nodes of those
//! groups, their NIC FIFOs, their outgoing links, and their ejection
//! queues. Per-node router state is stored as parallel arrays indexed by
//! `node - node_lo` rather than one struct per node: the engine only ever
//! touches a node's two NIC FIFOs and a handful of scalars, so the SoA
//! layout keeps a 4096-node torus at a few kilobytes per node (the old
//! layout embedded a full [`memcomm_memsim::Node`], cache model and
//! simulated DRAM included, which the engine never exercised).

use memcomm_memsim::clock::Cycle;
use memcomm_memsim::nic::TimedFifo;
use memcomm_obs::{Histogram, Series, SeriesKind};
use memcomm_util::arena::Arena;

use super::sched::{Delivery, QEntry, RouterQueue};
use super::{ClassBreakdown, EngineEvent};

/// Ring capacity of every telemetry series: identical on all shards, so
/// shard-local series stay stride-aligned and merge pointwise.
pub(crate) const SERIES_POINTS: usize = 128;

/// Fixed-point scale for link busy time: 16.16, so fractional wire
/// occupancies accumulate as exact integer adds (which commute across any
/// shard partition — an f64 running sum would not).
pub(crate) const BUSY_ONE: f64 = 65536.0;

pub(crate) struct LinkState {
    pub global: u32,
    pub queues: [RouterQueue; 2],
    pub credits: [u32; 2],
    pub free: f64,
    pub attempts: u64,
    /// Distinct outage windows this link ran into while trying to transmit.
    pub outages: u64,
    /// Recovery cycle of the last counted outage (so re-encountering the
    /// same window across engine windows counts once).
    pub outage_mark: Cycle,
    /// Cycles this wire spent transmitting (drops included), in 16.16
    /// fixed point; only maintained when sampling is on.
    pub busy_fp: u64,
}

pub(crate) struct PortState {
    pub id: u32,
    pub node_lo: u32,
    pub node_hi: u32,
    pub inject_free: f64,
    pub eject_free: f64,
}

/// One shard: a contiguous slice of the machine, plus its window scratch.
/// All `Vec`s prefixed with a node meaning are parallel arrays indexed by
/// local node (`node - node_lo`).
pub(crate) struct Shard {
    pub node_lo: u32,
    /// Outgoing NIC FIFO per local node.
    pub tx: Vec<TimedFifo>,
    /// Incoming NIC FIFO per local node.
    pub rx: Vec<TimedFifo>,
    /// Flow indices originating at each local node, flattened; node `i`
    /// owns `feed_list[feed_span[i].0 .. feed_span[i].1]`, ascending.
    pub feed_list: Vec<u32>,
    pub feed_span: Vec<(u32, u32)>,
    /// Cursor into `feed_list` per local node (absolute index).
    pub feed_pos: Vec<u32>,
    /// Next word index of the flow under the cursor, per local node.
    pub feed_word: Vec<u32>,
    /// When the memory side may feed the next word into `tx`, per node.
    pub src_free: Vec<Cycle>,
    /// When the memory side may drain the next word from `rx`, per node.
    pub drain_free: Vec<Cycle>,
    /// Words awaiting the ejection port (same word-major order as links),
    /// per local node.
    pub eject: Vec<RouterQueue>,
    /// Owned links, ascending global index.
    pub links: Vec<LinkState>,
    /// Global index of each owned link, parallel to `links` (binary search).
    pub link_globals: Vec<u32>,
    pub ports: Vec<PortState>,
    pub inbox: Vec<Delivery>,
    pub credit_inbox: Vec<(u32, u8)>,
    /// Entry storage shared by every lane queue of the shard (unused by the
    /// reference scheduler). Its live count is exactly the shard's queued
    /// words.
    pub arena: Arena<QEntry>,
    /// Whether this shard's queues run on lanes (false = reference heaps).
    pub lanes: bool,
    /// Engine flow index of each flow this shard drains (its destinations),
    /// in build order; `Net::drain_slot` maps a flow to its slot here.
    pub drain_flow_ids: Vec<u32>,
    /// Words drained so far per local drain slot — the per-flow delivery
    /// ledger the degraded accounting settles against.
    pub drained_flows: Vec<u64>,
    /// Inject→eject latency per flow class, recorded at the ejection port
    /// (only when the run asked for latency; merged in shard order at the
    /// end — histogram merge is commutative, so the partition is invisible).
    pub lat_hist: Vec<Histogram>,
    /// Critical-path attribution sums per flow class (empty unless both
    /// latency recording and sampling are on); merged pointwise at the end.
    pub lat_sums: Vec<ClassBreakdown>,
    /// NIC stall count already flushed to the coordinator — the diff against
    /// the FIFOs' live totals is this window's aggregate delta.
    pub stall_mark: u64,
    /// Sampling state, present only when `EngineConfig::sample_every > 0`.
    pub telemetry: Option<Box<ShardTelemetry>>,
    /// Window output buffers, reused across windows on the production path.
    pub out: WindowOut,
}

/// Per-shard telemetry: the six utilization/congestion series plus the
/// spatial integrals behind the heatmaps. Every shard ticks on the same
/// global schedule (multiples of `sample_every`, which divide evenly into
/// the uniform window boundaries), so per-shard series have identical
/// lengths and merge by pointwise addition — the partition is invisible.
pub(crate) struct ShardTelemetry {
    /// Next global sampling tick (a multiple of `sample_every`).
    pub next_tick: Cycle,
    /// Links' `busy_fp` total already pushed into the series.
    pub busy_mark: u64,
    /// Retries since the last tick, staged for the next counter point.
    pub pending_retries: u64,
    /// Outage encounters since the last tick.
    pub pending_outages: u64,
    /// Counter: link busy time per interval, in 16.16 cycle units.
    pub link_busy: Series,
    /// Gauge: words in router + ejection queues at each tick.
    pub queue_depth: Series,
    /// Gauge: words backed up in tx NIC FIFOs at each tick.
    pub inject_backlog: Series,
    /// Gauge: words backed up in rx NIC FIFOs at each tick.
    pub eject_backlog: Series,
    /// Counter: retry transmissions per interval.
    pub retries: Series,
    /// Counter: outage-window encounters per interval.
    pub outages: Series,
    /// Per local node: Σ over ticks of (ejection queue + rx FIFO) occupancy
    /// — the hotspot integral the node heatmap renders.
    pub node_occ: Vec<u64>,
    /// Ticks sampled so far (same on every shard).
    pub ticks: u64,
}

impl ShardTelemetry {
    pub fn new(sample_every: Cycle, nodes: usize) -> Box<ShardTelemetry> {
        let series = |kind| Series::new(kind, sample_every, SERIES_POINTS);
        Box::new(ShardTelemetry {
            next_tick: sample_every,
            busy_mark: 0,
            pending_retries: 0,
            pending_outages: 0,
            link_busy: series(SeriesKind::Counter),
            queue_depth: series(SeriesKind::Gauge),
            inject_backlog: series(SeriesKind::Gauge),
            eject_backlog: series(SeriesKind::Gauge),
            retries: series(SeriesKind::Counter),
            outages: series(SeriesKind::Counter),
            node_occ: vec![0; nodes],
            ticks: 0,
        })
    }

    /// Records one sample point from the shard's live state: flushes the
    /// staged counter deltas and reads the gauge levels. Both window_core
    /// and the coordinator's tail flush go through here, so a tick looks
    /// the same wherever it fires.
    pub fn sample(
        &mut self,
        tx: &[TimedFifo],
        rx: &[TimedFifo],
        eject: &[RouterQueue],
        links: &[LinkState],
        arena: &Arena<QEntry>,
        lanes: bool,
    ) {
        let busy_total: u64 = links.iter().map(|l| l.busy_fp).sum();
        self.link_busy.push(busy_total - self.busy_mark);
        self.busy_mark = busy_total;
        self.queue_depth
            .push(queued_words(lanes, arena, links, eject));
        self.inject_backlog
            .push(tx.iter().map(|f| f.len() as u64).sum());
        self.eject_backlog
            .push(rx.iter().map(|f| f.len() as u64).sum());
        self.retries.push(self.pending_retries);
        self.pending_retries = 0;
        self.outages.push(self.pending_outages);
        self.pending_outages = 0;
        for (local, occ) in self.node_occ.iter_mut().enumerate() {
            *occ += eject[local].len() + rx[local].len() as u64;
        }
        self.ticks += 1;
    }
}

/// Words sitting in the shard's router/ejection queues. Under lanes the
/// arena's live count *is* the queued-word count; the reference path sums
/// its heaps — same quantity either way.
pub(crate) fn queued_words(
    lanes: bool,
    arena: &Arena<QEntry>,
    links: &[LinkState],
    eject: &[RouterQueue],
) -> u64 {
    if lanes {
        arena.len() as u64
    } else {
        links
            .iter()
            .map(|l| l.queues[0].len() + l.queues[1].len())
            .sum::<u64>()
            + eject.iter().map(|q| q.len()).sum::<u64>()
    }
}

/// One window's output, kept stage-split so the coordinator can fold the
/// event stream in canonical (stage, site) order across all shards — the
/// order every partition produces, which is what makes the digest
/// independent of the shard count.
#[derive(Default)]
pub(crate) struct WindowOut {
    pub deliveries: Vec<Delivery>,
    pub credits: Vec<(u32, u8)>,
    /// Injection events, ascending port id.
    pub inject_events: Vec<EngineEvent>,
    /// Link transit events (hops and fault drops interleaved per link),
    /// ascending global link index.
    pub link_events: Vec<EngineEvent>,
    /// Ejection events, ascending port id.
    pub eject_events: Vec<EngineEvent>,
    pub progress: u64,
    pub drained: u64,
    pub flit_hops: u64,
    pub dropped: u64,
    pub corrupted: u64,
    /// Drop retransmissions scheduled under the retry policy this window.
    pub retried: u64,
    /// Words abandoned after exhausting their per-hop retry budget.
    pub abandoned: u64,
    pub last_drain: Cycle,
    /// Words sitting in this shard's router/ejection queues at window end.
    pub queued: u64,
    /// Outage-window encounters this window (mirrors the per-link counts).
    pub outaged: u64,
    /// NIC fault stalls fired this window, diffed off the quiet FIFOs'
    /// local counters — the coordinator flushes one aggregate registry add
    /// per window instead of the FIFOs locking the registry per event.
    pub stalls: u64,
}

impl WindowOut {
    /// Resets for the next window, keeping buffer capacities.
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.credits.clear();
        self.inject_events.clear();
        self.link_events.clear();
        self.eject_events.clear();
        self.progress = 0;
        self.drained = 0;
        self.flit_hops = 0;
        self.dropped = 0;
        self.corrupted = 0;
        self.retried = 0;
        self.abandoned = 0;
        self.last_drain = 0;
        self.queued = 0;
        self.outaged = 0;
        self.stalls = 0;
    }
}
