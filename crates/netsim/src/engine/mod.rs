//! Sharded discrete-event interconnect engine.
//!
//! Where [`congestion`](crate::congestion) folds a traffic pattern into a
//! closed-form factor, this module actually *runs* the pattern: per-node
//! NIC FIFOs feed words through shared injection/ejection ports (the T3D
//! quirk that two nodes share one port falls out naturally), and flits
//! travel dimension-ordered over per-link wires guarded by credit-based
//! virtual-channel buffers with real backpressure.
//!
//! # Determinism and sharding
//!
//! The simulation advances in conservative windows of `L` cycles, where `L`
//! is the link latency: any word transmitted during window `[T, T+L)`
//! arrives no earlier than `T+L`, so every arrival of a window is known at
//! its opening barrier. Nodes are partitioned into shards along port-group
//! boundaries — the shard count scales with the worker count (two shards
//! per worker, or [`EngineConfig::shards`] to pin it), and the partition
//! balances each shard's share of the traffic's word·hop work, so a
//! 1024-node torus keeps 16 workers busy instead of idling 8 of them
//! behind a fixed 8-way split.
//!
//! Results do not depend on either knob. Within a window, every site (port
//! or link) belongs to exactly one shard, all cross-site coupling crosses
//! the barrier, and shards own contiguous node ranges — so each site's
//! event sequence is partition-invariant, and the coordinator can fold the
//! window's events in canonical *stage-major* order (all injections by
//! ascending port, then all link transits by ascending link, then all
//! ejections by ascending port — each the concatenation of the shards'
//! per-stage streams in shard order). `jobs = 1` and `jobs = N`, one shard
//! or sixty-four: byte-identical event streams and digests.
//!
//! # Memory at scale
//!
//! Per-node state lives in structure-of-arrays form inside each shard
//! ([`shard::Shard`]): two NIC FIFOs, a feed cursor, and two pacing
//! scalars per node — a few hundred bytes — instead of a full simulated
//! memory node. A 4096-node torus builds in tens of megabytes, dominated
//! by its flow table rather than by node state.
//!
//! # Deadlock freedom
//!
//! Routes are dimension-ordered and minimal; each directed link carries two
//! virtual channels with the classic dateline rule: a word starts each
//! dimension on VC 0 and moves to VC 1 for the hops after it crosses that
//! dimension's wraparound link. Minimal torus routes cross a wrap at most
//! once per ring, so the channel-dependency graph is acyclic; meshes have
//! no wrap links and run entirely on VC 0. This holds for tori of any rank
//! — the kilo-node configurations are 3D (16×8×8 at 1024 nodes). Ejection
//! drains into the bounded node `rx` FIFO, which the memory side empties
//! unconditionally.
//!
//! # Schedulers
//!
//! Two interchangeable queue substrates drive the identical window logic:
//!
//! * the **production scheduler** (the default): the coordinator's
//!   in-flight deliveries live in a cycle-bucketed
//!   [`TimingWheel`](memcomm_util::wheel::TimingWheel) (deliveries *are*
//!   time-keyed — the barrier releases everything below `t1`), and each
//!   router queue is a set of per-flow FIFO *lanes* carved from a shared
//!   freelist [`Arena`](memcomm_util::arena::Arena), with a small lazy heap
//!   over the lane heads. Router queues are *rank*-ordered, not
//!   time-ordered, so a cycle wheel cannot express them; lanes are the
//!   rank-domain analogue — a flow's words reach any given queue in
//!   ascending rank order, so each lane is pre-sorted and the queue minimum
//!   is always a lane head. Push is `O(1)`, pop is `O(log F)` in the
//!   handful of *flows* contending a queue rather than `O(log N)` in the
//!   hundreds of queued *words*;
//! * the **reference scheduler**: the retired `BinaryHeap` implementation,
//!   kept selectable via [`EngineConfig::reference_scheduler`] so the
//!   differential tier (`tests/wheel_vs_heap.rs`) can prove, case by case,
//!   that the fast path is observably invisible — event streams, digests,
//!   and counters match byte for byte.

mod build;
mod sched;
mod shard;
mod window;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use memcomm_util::wheel::TimingWheel;

use memcomm_memsim::clock::Cycle;
use memcomm_memsim::error::{SimError, SimResult};
use memcomm_memsim::fault::FaultPlan;
use memcomm_memsim::nic::NetWord;
use memcomm_memsim::node::{NodeParams, Watchdog};
use memcomm_obs::{Histogram, HistogramSummary, Obs, Series, SeriesKind};
use memcomm_util::backoff::exp_backoff;
use memcomm_util::par;

use crate::link::LinkParams;
use crate::topology::Topology;
use crate::traffic::Flow;

use build::{build_sim, Sim};
use sched::Delivery;
use shard::{WindowOut, SERIES_POINTS};

/// Engine name used in error diagnostics.
const ENGINE: &str = "netsim-engine";

/// FNV-1a offset basis, the digest seed.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv_fold(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(FNV_PRIME)
}

/// What happened at a simulated resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A word left a node's `tx` FIFO and serialized onto its injection port.
    Inject,
    /// A word traversed a network link.
    Hop,
    /// A link fault consumed the wire without delivering the word; the word
    /// retries from its upstream buffer.
    Drop,
    /// A word serialized off an ejection port into the destination `rx` FIFO.
    Eject,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::Inject => 1,
            EventKind::Hop => 2,
            EventKind::Drop => 3,
            EventKind::Eject => 4,
        }
    }
}

/// One entry of the canonical event stream.
///
/// The stream is ordered by (window, stage, site, time) — injections first,
/// then link transits, then ejections, sites ascending within each stage —
/// a deterministic order that is identical at any worker count *and* any
/// shard count, pinned by the run digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineEvent {
    /// Cycle the action started (integer part).
    pub time: Cycle,
    /// What happened.
    pub kind: EventKind,
    /// Link index for hops/drops, port index for injections/ejections.
    pub site: u32,
    /// Virtual channel involved.
    pub vc: u8,
    /// Word identity: `flow_index << 32 | word_index`.
    pub seq: u64,
}

impl EngineEvent {
    fn fold_into(&self, hash: u64) -> u64 {
        let h = fnv_fold(hash, self.time);
        let h = fnv_fold(h, self.kind.code());
        let h = fnv_fold(h, u64::from(self.site));
        fnv_fold(fnv_fold(h, u64::from(self.vc)), self.seq)
    }
}

/// Link-level retransmission policy: how the engine lifts the resilient
/// protocol's semantics (deterministic exponential backoff, bounded
/// retries) down to individual words on faulty links. A dropped word
/// retransmits from its upstream buffer after
/// [`exp_backoff`]`(base, factor, max, tries)` cycles; once a single hop
/// has burned `max_retries` retransmissions the word is *abandoned* — its
/// upstream buffer frees, the run completes, and the missing words are
/// reported exactly in [`Degraded`] instead of wedging the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmissions allowed per hop before a word is abandoned.
    pub max_retries: u32,
    /// First backoff wait, in cycles (0 = retry immediately, the classic
    /// lossless-link behaviour).
    pub backoff_base_cycles: Cycle,
    /// Geometric growth per attempt.
    pub backoff_factor: u32,
    /// Backoff saturation cap, in cycles.
    pub max_backoff_cycles: Cycle,
}

impl Default for RetryPolicy {
    /// Immediate retries with a generous budget: 64 consecutive drops of
    /// one word never happen by chance at any plausible fault rate, so the
    /// default is observationally identical to the old unbounded-retry
    /// engine while still guaranteeing termination under adversarial
    /// plans.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 64,
            backoff_base_cycles: 0,
            backoff_factor: 2,
            max_backoff_cycles: 1 << 16,
        }
    }
}

impl RetryPolicy {
    /// The backoff wait before retry `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Cycle {
        exp_backoff(
            self.backoff_base_cycles,
            u64::from(self.backoff_factor),
            self.max_backoff_cycles,
            attempt,
        )
    }

    /// The deepest wait the schedule can ever impose — the idle slack the
    /// liveness watchdog must grant before calling a quiet network wedged.
    pub fn max_delay(&self) -> Cycle {
        self.delay(self.max_retries)
    }
}

/// Engine configuration: the machine's link and node parameters plus the
/// engine-specific knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Wire parameters; the congestion factor is forced to 1.0 — contention
    /// is what the engine *simulates*, not a dial.
    pub link: LinkParams,
    /// Per-node parameters; `tx_fifo_words`/`rx_fifo_words` bound the NIC
    /// staging FIFOs (the only node state the engine keeps — see the
    /// module docs on memory at scale).
    pub node: NodeParams,
    /// Nodes sharing one injection/ejection port pair (2 on the T3D).
    pub nodes_per_port: u32,
    /// Buffer slots per (link, virtual channel) guarded by credits. Credits
    /// return one conservative window after the buffered word moves on, so
    /// small values throttle saturated multi-hop paths (tree saturation)
    /// well below the wire rate; the default is sized so the credit
    /// round-trip never limits a path and contention comes from the wires
    /// themselves, matching the fluid assumption of the analytic model.
    pub vc_slots: u32,
    /// Cycles between consecutive words the memory side feeds into `tx`
    /// (0 = unpaced: memory keeps the NIC saturated and the injection port
    /// is the bottleneck).
    pub source_word_cycles: Cycle,
    /// Cycles between consecutive words the memory side drains from `rx`
    /// (0 = unpaced).
    pub drain_word_cycles: Cycle,
    /// Send address-data pairs instead of data-only words.
    pub address_data_pairs: bool,
    /// Worker threads for the shard fan-out (0 = the process-wide setting).
    /// Never affects results, only wall-clock.
    pub jobs: usize,
    /// Shard count (0 = auto: about two per worker, clamped to the port
    /// group count). Never affects results, only wall-clock — the
    /// stage-major fold keeps digests byte-identical at any value.
    pub shards: usize,
    /// Watchdog: maximum simulation windows before declaring a wedge.
    pub max_windows: u64,
    /// Optional hard cycle budget.
    pub max_cycles: Option<Cycle>,
    /// Fault plan threaded through every per-node FIFO and link.
    pub fault: FaultPlan,
    /// Link-level retransmission policy for fault drops.
    pub retry: RetryPolicy,
    /// Latency class per *input* flow (missing or empty = every flow in
    /// class 0). Classes index the per-class inject→eject histograms when
    /// [`EngineConfig::record_latency`] is set; adversarial generators use
    /// them to split, say, incast victims from background traffic.
    pub flow_classes: Vec<u8>,
    /// Record per-class inject→eject latency histograms into
    /// [`EngineOutcome::flow_latency`].
    pub record_latency: bool,
    /// Telemetry sampling interval in cycles (0 = off, the default). When
    /// non-zero every shard records utilization/congestion series on the
    /// shared tick grid and the outcome carries
    /// [`EngineOutcome::telemetry`]; combined with
    /// [`EngineConfig::record_latency`] it also enables the critical-path
    /// attribution breakdown. Sampling never perturbs the simulation —
    /// events, digests, and cycle counts stay byte-identical with it on or
    /// off, at any jobs × shards, under either scheduler.
    pub sample_every: Cycle,
    /// Keep the full event stream in the outcome (tests); the digest is
    /// always computed.
    pub record_events: bool,
    /// Run on the retired `BinaryHeap` scheduler instead of the timing
    /// wheel + lane arena. Results are byte-identical either way; this
    /// knob exists so the differential tier and the perf harness can put
    /// the two substrates side by side.
    #[doc(hidden)]
    pub reference_scheduler: bool,
}

impl EngineConfig {
    /// Builds a configuration from machine link/node parameters.
    pub fn new(link: LinkParams, node: NodeParams) -> Self {
        let mut link = link;
        link.congestion = 1.0;
        let mut node = node;
        // Engine nodes never allocate regions; keep the nominal memory tiny
        // in case anything downstream sizes buffers from it.
        node.memory_words = 64;
        EngineConfig {
            link,
            node,
            nodes_per_port: 1,
            vc_slots: 64,
            source_word_cycles: 0,
            drain_word_cycles: 0,
            address_data_pairs: false,
            jobs: 0,
            shards: 0,
            max_windows: 1 << 22,
            max_cycles: None,
            fault: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
            flow_classes: Vec::new(),
            record_latency: false,
            sample_every: 0,
            record_events: false,
            reference_scheduler: false,
        }
    }

    fn word(&self, seq: u64) -> NetWord {
        if self.address_data_pairs {
            NetWord::addressed(seq.wrapping_mul(8), seq)
        } else {
            NetWord::data(seq)
        }
    }

    /// Wire cycles per word under this configuration's framing.
    pub fn word_cycles(&self) -> f64 {
        self.link.word_cycles(&self.word(0))
    }
}

/// Aggregate result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Completion cycle: when the last word left its destination `rx` FIFO.
    pub cycles: Cycle,
    /// Words that traversed the network.
    pub words: u64,
    /// Total link traversals (the flit-hop count).
    pub flit_hops: u64,
    /// Conservative windows executed.
    pub windows: u64,
    /// Link-fault drops (each deterministically retransmitted or, past the
    /// retry budget, abandoned into the degraded accounting).
    pub dropped: u64,
    /// Link-fault corruptions (counted; payloads are synthetic).
    pub corrupted: u64,
    /// Retransmissions scheduled under the retry policy
    /// (`dropped == retried + abandoned`, always).
    pub retried: u64,
    /// Words abandoned after exhausting their per-hop retry budget.
    pub abandoned: u64,
    /// FNV-1a fold over the canonical event stream.
    pub digest: u64,
    /// Deepest the run's event backlog ever got: the barrier maximum of
    /// in-flight deliveries plus router-queued words, summed over shards.
    /// Identical under both schedulers (and any worker or shard count) —
    /// it is a property of the traffic, not of the queue substrate.
    pub peak_queue_depth: u64,
    /// Per-class inject→eject latency summaries (p50/p99/p999), indexed by
    /// flow class, when [`EngineConfig::record_latency`] is set.
    pub flow_latency: Vec<HistogramSummary>,
    /// Graceful-degradation accounting: `Some` exactly when the run could
    /// not deliver every word (abandoned retries, dead links). The partial
    /// result above it — digest, counters, events — is still
    /// byte-deterministic at any jobs × shards.
    pub degraded: Option<Degraded>,
    /// Deep telemetry — series, spatial heat data, and the critical-path
    /// breakdown — when [`EngineConfig::sample_every`] is non-zero.
    pub telemetry: Option<Telemetry>,
    /// The event stream itself, when [`EngineConfig::record_events`] is set.
    pub events: Vec<EngineEvent>,
}

/// Critical-path attribution sums for one flow class: where the delivered
/// words' inject→eject cycles went. The components telescope exactly —
/// `inject + queue + wire + backoff == total` — and `count`/`total` equal
/// the class's [`EngineOutcome::flow_latency`] histogram count and sum,
/// because every charge spans two consecutive milestones of the same word.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassBreakdown {
    /// Delivered words of this class.
    pub count: u64,
    /// Injection-port serialization: leaving the source port until first
    /// queued at a link (the residual component).
    pub inject: u64,
    /// Waiting in router and ejection queues for credits, wires, ports, or
    /// outage recoveries.
    pub queue: u64,
    /// On wires: serialization, fault delay, and link latency.
    pub wire: u64,
    /// Parked in retry backoff after fault drops (wasted wire included).
    pub backoff: u64,
    /// Total inject→eject cycles (the sum the latency histogram records).
    pub total: u64,
}

impl ClassBreakdown {
    /// Pointwise accumulation — commutative, so shard merge order is
    /// invisible.
    pub fn merge(&mut self, other: &ClassBreakdown) {
        self.count += other.count;
        self.inject += other.inject;
        self.queue += other.queue;
        self.wire += other.wire;
        self.backoff += other.backoff;
        self.total += other.total;
    }
}

/// Deep engine telemetry, attached to the outcome when
/// [`EngineConfig::sample_every`] is non-zero. Everything here is merged in
/// canonical order from commutative per-shard state (integer sums only), so
/// it is byte-identical at any jobs × shards and under either scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Telemetry {
    /// Sampling interval, in cycles.
    pub sample_every: Cycle,
    /// Sample ticks taken over the run.
    pub ticks: u64,
    /// Counter series: link busy time per interval, in 1/65536-cycle units
    /// (fixed point, so fractional wire occupancies sum exactly).
    pub link_busy: Series,
    /// Gauge series: words in router + ejection queues at each tick.
    pub queue_depth: Series,
    /// Gauge series: words backed up in tx NIC FIFOs at each tick.
    pub inject_backlog: Series,
    /// Gauge series: words backed up in rx NIC FIFOs at each tick.
    pub eject_backlog: Series,
    /// Counter series: retry transmissions per interval.
    pub retries: Series,
    /// Counter series: outage-window encounters per interval.
    pub outages: Series,
    /// Source node of each link, ascending global link index (the heatmap
    /// keys utilization by endpoints).
    pub link_from: Vec<u32>,
    /// Destination node of each link.
    pub link_to: Vec<u32>,
    /// Cumulative busy time per link, in 1/65536-cycle units.
    pub link_busy_fp: Vec<u64>,
    /// Per node: Σ over ticks of its ejection-queue + rx-FIFO occupancy —
    /// the hotspot integral behind the node heatmap.
    pub node_occupancy: Vec<u64>,
    /// Critical-path attribution per flow class (empty unless
    /// [`EngineConfig::record_latency`] was also set).
    pub breakdown: Vec<ClassBreakdown>,
}

impl Telemetry {
    /// The six series under their canonical export names, for the
    /// OpenMetrics exporter.
    pub fn named_series(&self) -> Vec<(String, Series)> {
        [
            ("engine.series.link_busy", &self.link_busy),
            ("engine.series.queue_depth", &self.queue_depth),
            ("engine.series.inject_backlog", &self.inject_backlog),
            ("engine.series.eject_backlog", &self.eject_backlog),
            ("engine.series.retries", &self.retries),
            ("engine.series.outages", &self.outages),
        ]
        .into_iter()
        .map(|(name, s)| (name.to_string(), s.clone()))
        .collect()
    }
}

/// Exact accounting of a degraded run — what a wedged network owes instead
/// of a bare [`SimError::Deadlock`]. Built in canonical flow/link order, so
/// it is byte-identical at any worker or shard count and under either
/// scheduler substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degraded {
    /// `(flow index, undelivered words)` for every flow that came up short,
    /// ascending flow index. Flow indices match the high 32 bits of
    /// [`EngineEvent::seq`].
    pub missing_flows: Vec<(u32, u64)>,
    /// Start cycle of the last window in which the network made progress.
    pub last_progress_cycle: Cycle,
    /// `(link index, outage windows encountered)` for every link that hit
    /// at least one outage, ascending link index.
    pub per_link_outages: Vec<(u32, u64)>,
}

/// Result of running a multi-round schedule (rounds are barrier-separated:
/// round `r+1` starts only after round `r` fully drains).
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Per-round outcomes, in schedule order.
    pub rounds: Vec<EngineOutcome>,
    /// Sum of round completion cycles.
    pub cycles: Cycle,
    /// Digest folding every round's digest in order.
    pub digest: u64,
    /// Deepest event backlog across all rounds.
    pub peak_queue_depth: u64,
}

/// A topology of `nodes` nodes with the same rank and wrap-ness as `base`,
/// splitting the power-of-two node count as evenly as possible across the
/// base's dimensions (64 on a 3D torus → 4×4×4; 1024 → 16×8×8).
pub fn scaled_topology(base: &Topology, nodes: usize) -> SimResult<Topology> {
    if nodes < 2 || !nodes.is_power_of_two() {
        return Err(SimError::Protocol {
            detail: format!("engine topology needs a power-of-two node count >= 2, got {nodes}"),
            at: 0,
        });
    }
    let rank = base.dims().len();
    let exp = nodes.trailing_zeros() as usize;
    let dims: Vec<u32> = (0..rank)
        .map(|i| 1u32 << (exp / rank + usize::from(i < exp % rank)))
        .collect();
    Ok(if base.is_torus() {
        Topology::torus(&dims)
    } else {
        Topology::mesh(&dims)
    })
}

/// Runs one traffic pattern to completion.
///
/// Flows with `src == dst` or zero bytes never enter the network and are
/// skipped. Returns [`SimError::Deadlock`] if the network stops making
/// progress with words still in flight, [`SimError::Wedged`] /
/// [`SimError::CycleBudget`] when the watchdog limits trip, and
/// [`SimError::Protocol`] for invalid flow sets.
pub fn run_flows(topo: &Topology, flows: &[Flow], cfg: &EngineConfig) -> SimResult<EngineOutcome> {
    let sim = build_sim(topo, flows, cfg)?;
    run_sim(sim)
}

/// The coordinator's in-flight delivery store under either scheduler.
enum PendingQueue {
    /// The retired global heap.
    Heap(BinaryHeap<Reverse<Delivery>>),
    /// The production cycle-bucketed wheel; deliveries are genuinely
    /// time-keyed (the barrier releases everything below `t1`, tie-broken
    /// by the unique `seq` inside [`Delivery`]'s derived order).
    Wheel(TimingWheel<Delivery>),
}

impl PendingQueue {
    fn len(&self) -> usize {
        match self {
            PendingQueue::Heap(h) => h.len(),
            PendingQueue::Wheel(w) => w.len(),
        }
    }
}

/// Folds one window's outputs in canonical stage-major order: every
/// shard's injections (ports ascending within each shard, shards in node
/// order), then every shard's link transits, then every shard's ejections.
/// Any port-group-aligned partition produces exactly this sequence, which
/// is what makes the digest independent of the shard count.
fn fold_window(outs: &[&WindowOut], digest: &mut u64, record: bool, events: &mut Vec<EngineEvent>) {
    for stage in 0..3 {
        for out in outs {
            let evs = match stage {
                0 => &out.inject_events,
                1 => &out.link_events,
                _ => &out.eject_events,
            };
            for e in evs {
                *digest = e.fold_into(*digest);
            }
            if record {
                events.extend_from_slice(evs);
            }
        }
    }
}

fn run_sim(sim: Sim<'_>) -> SimResult<EngineOutcome> {
    let cfg = sim.cfg;
    let obs = Obs::current();
    let window = cfg.link.latency_cycles.max(1);
    let jobs = if cfg.jobs == 0 { par::jobs() } else { cfg.jobs };
    let shard_ids: Vec<usize> = (0..sim.shards.len()).collect();
    // Hand each worker a few shards at a time: one fetch-add per chunk
    // instead of per shard, while still leaving enough chunks (~4 per
    // worker) to absorb uneven window costs.
    let chunk = shard_ids.len().div_ceil(jobs.max(1) * 4).max(1);

    let mut outcome = EngineOutcome {
        cycles: 0,
        words: sim.total_words,
        flit_hops: 0,
        windows: 0,
        dropped: 0,
        corrupted: 0,
        retried: 0,
        abandoned: 0,
        digest: FNV_OFFSET,
        peak_queue_depth: 0,
        flow_latency: Vec::new(),
        degraded: None,
        telemetry: None,
        events: Vec::new(),
    };
    if sim.total_words == 0 {
        return Ok(outcome);
    }

    let mut watchdog = Watchdog::new(cfg.max_windows).with_cycle_budget(cfg.max_cycles);
    let jitter = if cfg.fault.is_active() {
        cfg.fault.config().max_jitter_cycles
    } else {
        0
    };
    let mut pending = if cfg.reference_scheduler {
        PendingQueue::Heap(BinaryHeap::new())
    } else {
        // A delivery lands at most wire + latency (+ fault jitter) cycles
        // past the window that transmitted it; anything further (an
        // oversized delay) takes the wheel's overflow path, so the horizon
        // only sets the fast-path hit rate, never correctness.
        let horizon =
            window + (cfg.word_cycles().ceil() as Cycle) + cfg.link.latency_cycles + jitter + 4;
        PendingQueue::Wheel(TimingWheel::new(horizon))
    };
    // Per-shard delivery/credit scratch, ping-ponged with the shard inboxes
    // at each barrier on the production path (no steady-state allocation).
    let mut scratch: Vec<Vec<Delivery>> = vec![Vec::new(); sim.shards.len()];
    let mut credit_scratch: Vec<Vec<(u32, u8)>> = vec![Vec::new(); sim.shards.len()];
    let mut credits_pending: Vec<(u32, u8)> = Vec::new();
    // Deepest each shard's router queues ever got, for the per-shard
    // balance gauges.
    let mut shard_peaks: Vec<u64> = vec![0; sim.shards.len()];
    let mut drained = 0u64;
    let mut idle_windows = 0u64;
    let mut last_progress_t0: Cycle = 0;
    // How long legitimate inactivity can last, in windows: fault stalls and
    // jitter park words in the future, backoff waits park retries with
    // nothing in flight, transient link outages silence whole links for a
    // window, and slow memory pacing leaves gaps. Saturating throughout —
    // adversarial fault bounds (jitter or stalls near `u64::MAX`) must
    // widen the budget, never wrap it into a hair trigger.
    let fault_slack = if cfg.fault.is_active() {
        let c = cfg.fault.config();
        let mut slack = c.max_stall_cycles.saturating_add(c.max_jitter_cycles);
        if cfg.fault.has_link_outages() {
            slack = slack.saturating_add(c.outage_window_cycles.min(c.outage_period_cycles.max(1)));
        }
        slack.saturating_add(cfg.retry.max_delay())
    } else {
        0
    };
    // A single port/drain action can jump its follow-up work a full word
    // time past the current window with nothing in `pending` meanwhile
    // (e.g. the last word's rx-ready stamp lands `wt` cycles ahead while
    // the drain idles), so the wire time bounds legitimate gaps too.
    let word_gap = 2 * (cfg.word_cycles().ceil() as Cycle);
    let idle_limit = 2 + fault_slack
        .saturating_add(cfg.source_word_cycles)
        .saturating_add(cfg.drain_word_cycles)
        .saturating_add(word_gap)
        / window;

    let mut t0: Cycle = 0;
    loop {
        watchdog.tick(ENGINE, t0)?;
        let t1 = t0 + window;

        // Barrier: hand due deliveries (globally sorted by (arrive, seq))
        // and freed credits to their owning shards.
        match &mut pending {
            PendingQueue::Heap(pending) => {
                let mut per_shard: Vec<Vec<Delivery>> = vec![Vec::new(); sim.shards.len()];
                while pending.peek().is_some_and(|Reverse(d)| d.arrive < t1) {
                    let Reverse(d) = pending.pop().expect("peeked");
                    per_shard[sim.shard_of_node[d.to_node as usize] as usize].push(d);
                }
                let mut credit_shard: Vec<Vec<(u32, u8)>> = vec![Vec::new(); sim.shards.len()];
                for (link, vc) in credits_pending.drain(..) {
                    let (s, local) = sim.link_owner[link as usize];
                    credit_shard[s as usize].push((local, vc));
                }
                for (i, (inbox, credits)) in per_shard.into_iter().zip(credit_shard).enumerate() {
                    let mut shard = sim.shards[i].lock().expect("shard lock poisoned");
                    shard.inbox = inbox;
                    shard.credit_inbox = credits;
                }
            }
            PendingQueue::Wheel(wheel) => {
                // The wheel emits in ascending (arrive, seq) order — the
                // same global order the heap pop loop produced — and each
                // shard receives its subsequence of it.
                wheel.drain_until(t1, |_, d| {
                    scratch[sim.shard_of_node[d.to_node as usize] as usize].push(d);
                });
                for (link, vc) in credits_pending.drain(..) {
                    let (s, local) = sim.link_owner[link as usize];
                    credit_scratch[s as usize].push((local, vc));
                }
                for i in 0..sim.shards.len() {
                    let mut shard = sim.shards[i].lock().expect("shard lock poisoned");
                    std::mem::swap(&mut shard.inbox, &mut scratch[i]);
                    std::mem::swap(&mut shard.credit_inbox, &mut credit_scratch[i]);
                    // The vectors coming back were cleared by the previous
                    // window, keeping their capacity.
                }
            }
        }

        let mut progress = 0u64;
        let mut queued = 0u64;
        let mut stalls_w = 0u64;
        match &mut pending {
            PendingQueue::Heap(pending) => {
                let outs: Vec<WindowOut> = par::par_map_chunked(jobs, chunk, &shard_ids, |&i| {
                    sim.shards[i]
                        .lock()
                        .expect("shard lock poisoned")
                        .run_window(t0, t1, &sim.net)
                });
                let refs: Vec<&WindowOut> = outs.iter().collect();
                fold_window(
                    &refs,
                    &mut outcome.digest,
                    cfg.record_events,
                    &mut outcome.events,
                );
                for (i, out) in outs.into_iter().enumerate() {
                    for d in out.deliveries {
                        pending.push(Reverse(d));
                    }
                    credits_pending.extend(out.credits);
                    progress += out.progress;
                    drained += out.drained;
                    queued += out.queued;
                    stalls_w += out.stalls;
                    shard_peaks[i] = shard_peaks[i].max(out.queued);
                    outcome.flit_hops += out.flit_hops;
                    outcome.dropped += out.dropped;
                    outcome.corrupted += out.corrupted;
                    outcome.retried += out.retried;
                    outcome.abandoned += out.abandoned;
                    outcome.cycles = outcome.cycles.max(out.last_drain);
                }
            }
            PendingQueue::Wheel(wheel) => {
                par::par_map_chunked(jobs, chunk, &shard_ids, |&i| {
                    sim.shards[i]
                        .lock()
                        .expect("shard lock poisoned")
                        .run_window_in_place(t0, t1, &sim.net);
                });
                // The coordinator is the only thread running here; take all
                // the guards at once so the stage-major fold can walk the
                // shards three times without re-locking.
                let guards: Vec<_> = sim
                    .shards
                    .iter()
                    .map(|s| s.lock().expect("shard lock poisoned"))
                    .collect();
                {
                    let refs: Vec<&WindowOut> = guards.iter().map(|g| &g.out).collect();
                    fold_window(
                        &refs,
                        &mut outcome.digest,
                        cfg.record_events,
                        &mut outcome.events,
                    );
                }
                for (i, shard) in guards.into_iter().enumerate() {
                    let out = &shard.out;
                    for &d in &out.deliveries {
                        wheel.push(d.arrive, d);
                    }
                    credits_pending.extend_from_slice(&out.credits);
                    progress += out.progress;
                    drained += out.drained;
                    queued += out.queued;
                    stalls_w += out.stalls;
                    shard_peaks[i] = shard_peaks[i].max(out.queued);
                    outcome.flit_hops += out.flit_hops;
                    outcome.dropped += out.dropped;
                    outcome.corrupted += out.corrupted;
                    outcome.retried += out.retried;
                    outcome.abandoned += out.abandoned;
                    outcome.cycles = outcome.cycles.max(out.last_drain);
                }
            }
        }
        // One aggregate registry add per window for the quiet NIC FIFOs'
        // fault stalls — identical totals to per-event counting, with the
        // shards never touching the metrics mutex from the parallel region.
        if stalls_w > 0 {
            obs.count(memcomm_memsim::stats::fault_metric::INJECTED, stalls_w);
        }
        outcome.windows += 1;
        outcome.peak_queue_depth = outcome.peak_queue_depth.max(pending.len() as u64 + queued);
        if progress > 0 {
            last_progress_t0 = t0;
        }

        if drained + outcome.abandoned == sim.total_words {
            // Every word is accounted for: delivered, or abandoned past its
            // retry budget (a degraded completion, settled below).
            break;
        }
        if progress == 0 && pending.len() == 0 {
            idle_windows += 1;
            if idle_windows > idle_limit {
                if cfg.fault.is_active() {
                    // Faults are the only legitimate way a run stops short
                    // (words stranded behind dead links): close the run with
                    // exact accounting instead of erroring. A wedge without
                    // faults is an engine bug and stays a hard error.
                    break;
                }
                return Err(SimError::Deadlock {
                    detail: format!(
                        "engine idle for {idle_windows} windows with {} of {} words undelivered",
                        sim.total_words - drained,
                        sim.total_words
                    ),
                    at: t0,
                });
            }
        } else {
            idle_windows = 0;
        }
        t0 = t1;
    }

    if drained < sim.total_words {
        outcome.degraded = Some(degraded_accounting(&sim, last_progress_t0));
    }
    if cfg.record_latency {
        outcome.flow_latency = merge_flow_latency(&sim, &obs);
    }
    if cfg.sample_every > 0 {
        // The loop breaks before `t0 = t1`, so the final barrier boundary
        // is `t0 + window`.
        let tel = collect_telemetry(&sim, t0 + window);
        if obs.is_enabled() {
            obs.count("engine.telemetry.ticks", tel.ticks);
            for (c, b) in tel.breakdown.iter().enumerate() {
                obs.count(&format!("engine.breakdown.class{c}.inject"), b.inject);
                obs.count(&format!("engine.breakdown.class{c}.queue"), b.queue);
                obs.count(&format!("engine.breakdown.class{c}.wire"), b.wire);
                obs.count(&format!("engine.breakdown.class{c}.backoff"), b.backoff);
                obs.count(&format!("engine.breakdown.class{c}.total"), b.total);
            }
            // Chrome counter tracks, one sample per series point.
            let per = tel.queue_depth.cycles_per_point();
            for (i, &v) in tel.queue_depth.points().iter().enumerate() {
                obs.trace_counter("engine.telemetry", "queue_depth", i as u64 * per, v);
            }
            let per = tel.link_busy.cycles_per_point();
            for (i, &v) in tel.link_busy.points().iter().enumerate() {
                obs.trace_counter("engine.telemetry", "link_busy", i as u64 * per, v);
            }
        }
        outcome.telemetry = Some(tel);
    }

    obs.count("engine.words", outcome.words);
    obs.count("engine.flit_hops", outcome.flit_hops);
    obs.count("engine.windows", outcome.windows);
    if outcome.retried > 0 {
        obs.count("engine.retries", outcome.retried);
    }
    if outcome.abandoned > 0 {
        obs.count("engine.abandoned", outcome.abandoned);
    }
    obs.gauge_max("engine.peak_queue_depth", outcome.peak_queue_depth);
    if obs.is_enabled() {
        // Per-shard balance gauges: how evenly the partition spread the
        // queue pressure. Guarded — the format! per shard is wasted work
        // when nothing is recording.
        obs.gauge_max("engine.shards", shard_peaks.len() as u64);
        for (i, &peak) in shard_peaks.iter().enumerate() {
            obs.gauge_max(&format!("engine.shard{i}.peak_queued"), peak);
        }
    }
    obs.span("engine", "run_flows", 0, outcome.cycles);
    Ok(outcome)
}

/// Settles the per-flow delivery ledger and per-link outage counters into
/// the exact [`Degraded`] accounting. Both walks are in canonical order
/// (ascending flow index, ascending global link index) regardless of how
/// the machine was sharded, so the accounting is partition-invariant.
fn degraded_accounting(sim: &Sim<'_>, last_progress_cycle: Cycle) -> Degraded {
    let mut drained_of = vec![0u64; sim.net.flows.len()];
    let mut per_link_outages = Vec::new();
    for s in &sim.shards {
        let shard = s.lock().expect("shard lock poisoned");
        for (&fi, &n) in shard.drain_flow_ids.iter().zip(&shard.drained_flows) {
            drained_of[fi as usize] = n;
        }
        for l in &shard.links {
            if l.outages > 0 {
                per_link_outages.push((l.global, l.outages));
            }
        }
    }
    per_link_outages.sort_unstable();
    let missing_flows = sim
        .net
        .flows
        .iter()
        .enumerate()
        .filter_map(|(fi, p)| {
            let missing = u64::from(p.words) - drained_of[fi];
            (missing > 0).then_some((fi as u32, missing))
        })
        .collect();
    Degraded {
        missing_flows,
        last_progress_cycle,
        per_link_outages,
    }
}

/// Merges the shards' per-class inject→eject histograms (commutative, so
/// the shard partition is invisible) into per-class summaries, mirroring
/// them into the metrics registry when one is recording.
fn merge_flow_latency(sim: &Sim<'_>, obs: &Obs) -> Vec<HistogramSummary> {
    let classes = sim
        .shards
        .iter()
        .map(|s| s.lock().expect("shard lock poisoned").lat_hist.len())
        .max()
        .unwrap_or(0);
    let mut merged = vec![Histogram::default(); classes];
    for s in &sim.shards {
        let shard = s.lock().expect("shard lock poisoned");
        for (m, h) in merged.iter_mut().zip(&shard.lat_hist) {
            m.merge(h);
        }
    }
    if obs.is_enabled() {
        for (c, h) in merged.iter().enumerate() {
            obs.merge_histogram(&format!("engine.flow_latency.class{c}"), h);
        }
    }
    merged.iter().map(Histogram::summary).collect()
}

/// Merges the shards' sampled telemetry into one [`Telemetry`]: series add
/// pointwise (every shard ticked the same global schedule), spatial state
/// scatters by global link index / node number, and the attribution sums
/// accumulate per class. All integer adds over disjoint or commutative
/// state — the shard partition and the scheduler substrate are invisible.
fn collect_telemetry(sim: &Sim<'_>, final_t1: Cycle) -> Telemetry {
    let se = sim.cfg.sample_every;
    // A stub interval past the last on-grid tick gets one uniform tail
    // sample, so counter series totals equal the run ledger.
    let flush_tail = !final_t1.is_multiple_of(se);
    let mk = |kind| Series::new(kind, se, SERIES_POINTS);
    let mut tel = Telemetry {
        sample_every: se,
        ticks: 0,
        link_busy: mk(SeriesKind::Counter),
        queue_depth: mk(SeriesKind::Gauge),
        inject_backlog: mk(SeriesKind::Gauge),
        eject_backlog: mk(SeriesKind::Gauge),
        retries: mk(SeriesKind::Counter),
        outages: mk(SeriesKind::Counter),
        link_from: sim.net.link_from.clone(),
        link_to: sim.net.link_to.clone(),
        link_busy_fp: vec![0; sim.net.link_to.len()],
        node_occupancy: vec![0; sim.shard_of_node.len()],
        breakdown: Vec::new(),
    };
    let classes = sim
        .shards
        .iter()
        .map(|s| s.lock().expect("shard lock poisoned").lat_sums.len())
        .max()
        .unwrap_or(0);
    tel.breakdown = vec![ClassBreakdown::default(); classes];
    for s in &sim.shards {
        let mut shard = s.lock().expect("shard lock poisoned");
        if flush_tail {
            shard.telemetry_tail_flush();
        }
        for (b, sb) in tel.breakdown.iter_mut().zip(&shard.lat_sums) {
            b.merge(sb);
        }
        for (li, &g) in shard.link_globals.iter().enumerate() {
            tel.link_busy_fp[g as usize] = shard.links[li].busy_fp;
        }
        let st = shard
            .telemetry
            .as_ref()
            .expect("sampling shards carry telemetry");
        let lo = shard.node_lo as usize;
        for (i, &occ) in st.node_occ.iter().enumerate() {
            tel.node_occupancy[lo + i] = occ;
        }
        tel.ticks = tel.ticks.max(st.ticks);
        tel.link_busy.merge(&st.link_busy);
        tel.queue_depth.merge(&st.queue_depth);
        tel.inject_backlog.merge(&st.inject_backlog);
        tel.eject_backlog.merge(&st.eject_backlog);
        tel.retries.merge(&st.retries);
        tel.outages.merge(&st.outages);
    }
    tel
}

/// Runs a barrier-separated schedule of rounds; each round must fully drain
/// before the next starts (the semantics of the paper's phased kernels).
pub fn run_schedule(
    topo: &Topology,
    rounds: &[Vec<Flow>],
    cfg: &EngineConfig,
) -> SimResult<ScheduleOutcome> {
    let mut out = ScheduleOutcome {
        rounds: Vec::with_capacity(rounds.len()),
        cycles: 0,
        digest: FNV_OFFSET,
        peak_queue_depth: 0,
    };
    for (i, round) in rounds.iter().enumerate() {
        let r = run_flows(topo, round, cfg)?;
        out.cycles += r.cycles;
        out.digest = fnv_fold(fnv_fold(out.digest, i as u64), r.digest);
        out.peak_queue_depth = out.peak_queue_depth.max(r.peak_queue_depth);
        out.rounds.push(r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::build::vc_labels;
    use super::*;
    use crate::routing::route;
    use crate::traffic;

    fn small_cfg() -> EngineConfig {
        let link = LinkParams {
            bytes_per_cycle: 8.0,
            packet_words: 16,
            header_bytes: 8,
            adp_extra_bytes: 8,
            latency_cycles: 4,
            congestion: 1.0,
        };
        EngineConfig::new(link, NodeParams::default())
    }

    #[test]
    fn single_flow_delivers_all_words() {
        let topo = Topology::torus(&[4]);
        let flows = [Flow {
            src: 0,
            dst: 2,
            bytes: 64 * 8,
        }];
        let out = run_flows(&topo, &flows, &small_cfg()).unwrap();
        assert_eq!(out.words, 64);
        // Two hops per word, no faults.
        assert_eq!(out.flit_hops, 128);
        assert!(out.cycles > 0);
    }

    #[test]
    fn local_and_empty_flows_are_skipped() {
        let topo = Topology::mesh(&[2, 2]);
        let flows = [
            Flow {
                src: 1,
                dst: 1,
                bytes: 800,
            },
            Flow {
                src: 0,
                dst: 1,
                bytes: 0,
            },
        ];
        let out = run_flows(&topo, &flows, &small_cfg()).unwrap();
        assert_eq!(out.words, 0);
        assert_eq!(out.windows, 0);
    }

    #[test]
    fn invalid_flow_is_a_protocol_error() {
        let topo = Topology::mesh(&[2, 2]);
        let flows = [Flow {
            src: 0,
            dst: 9,
            bytes: 8,
        }];
        assert!(matches!(
            run_flows(&topo, &flows, &small_cfg()),
            Err(SimError::Protocol { .. })
        ));
    }

    #[test]
    fn wire_rate_is_approached_on_an_uncontended_path() {
        let topo = Topology::torus(&[8]);
        let words = 512u64;
        let flows = [Flow {
            src: 0,
            dst: 1,
            bytes: words * 8,
        }];
        let cfg = small_cfg();
        let out = run_flows(&topo, &flows, &cfg).unwrap();
        let wt = cfg.word_cycles();
        let ideal = words as f64 * wt;
        let t = out.cycles as f64;
        assert!(t >= ideal, "cannot beat the wire: {t} < {ideal}");
        assert!(
            t < 2.0 * ideal + 200.0,
            "an uncontended flow should run near wire rate: {t} vs {ideal}"
        );
    }

    #[test]
    fn contended_link_doubles_the_time() {
        // Two flows share the 2→3 link on a ring; each alone would take
        // ~W*wt, together the shared link serializes them.
        let topo = Topology::mesh(&[8]);
        let words = 256u64;
        let flows = [
            Flow {
                src: 2,
                dst: 4,
                bytes: words * 8,
            },
            Flow {
                src: 1,
                dst: 5,
                bytes: words * 8,
            },
        ];
        let cfg = small_cfg();
        let uncontended = run_flows(&topo, &flows[..1], &cfg).unwrap().cycles as f64;
        let contended = run_flows(&topo, &flows, &cfg).unwrap().cycles as f64;
        assert!(
            contended > 1.6 * uncontended,
            "sharing a link must show up: {contended} vs {uncontended}"
        );
    }

    #[test]
    fn digest_is_identical_across_worker_counts() {
        let topo = Topology::torus(&[4, 4]);
        let rounds = traffic::aapc_xor_schedule(16, 32 * 8);
        let run = |jobs: usize| {
            let mut cfg = small_cfg();
            cfg.jobs = jobs;
            cfg.nodes_per_port = 2;
            cfg.record_events = true;
            run_schedule(&topo, &rounds, &cfg).unwrap()
        };
        let base = run(1);
        for jobs in [2, 4, 7] {
            let out = run(jobs);
            assert_eq!(out.digest, base.digest, "jobs={jobs}");
            assert_eq!(out.cycles, base.cycles, "jobs={jobs}");
            for (a, b) in out.rounds.iter().zip(&base.rounds) {
                assert_eq!(a.events, b.events, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn digest_is_identical_across_shard_counts() {
        // The stage-major fold makes the shard partition invisible: one
        // shard, an odd count, or one per port group — same events, same
        // digest, same cycle count.
        let topo = Topology::torus(&[4, 4]);
        let rounds = traffic::aapc_xor_schedule(16, 24 * 8);
        let run = |shards: usize| {
            let mut cfg = small_cfg();
            cfg.jobs = 2;
            cfg.shards = shards;
            cfg.nodes_per_port = 2;
            cfg.record_events = true;
            run_schedule(&topo, &rounds, &cfg).unwrap()
        };
        let base = run(1);
        for shards in [2, 3, 5, 8] {
            let out = run(shards);
            assert_eq!(out.digest, base.digest, "shards={shards}");
            assert_eq!(out.cycles, base.cycles, "shards={shards}");
            for (a, b) in out.rounds.iter().zip(&base.rounds) {
                assert_eq!(a.events, b.events, "shards={shards}");
            }
        }
        // And the auto count (whatever it resolves to on this host) agrees.
        let mut cfg = small_cfg();
        cfg.nodes_per_port = 2;
        let auto = run_schedule(&topo, &rounds, &cfg).unwrap();
        assert_eq!(auto.digest, base.digest);
        assert_eq!(auto.cycles, base.cycles);
    }

    #[test]
    fn torus_wraps_use_the_second_virtual_channel() {
        let topo = Topology::torus(&[5]);
        // 4 → 1 wraps: hops 4→0 (wrap, VC0) then 0→1 (VC1).
        let r = route(&topo, 4, 1);
        let vcs = vc_labels(&topo, &r);
        assert_eq!(vcs, vec![0, 1]);
        // Mesh routes never leave VC0.
        let m = Topology::mesh(&[5]);
        let rm = route(&m, 0, 4);
        assert!(vc_labels(&m, &rm).iter().all(|&v| v == 0));
    }

    #[test]
    fn scaled_topology_splits_evenly() {
        let t3d = Topology::torus(&[4, 4, 4]);
        assert_eq!(scaled_topology(&t3d, 64).unwrap().dims(), &[4, 4, 4]);
        assert_eq!(scaled_topology(&t3d, 8).unwrap().dims(), &[2, 2, 2]);
        assert_eq!(scaled_topology(&t3d, 4).unwrap().dims(), &[2, 2, 1]);
        // The kilo-node configurations.
        assert_eq!(scaled_topology(&t3d, 256).unwrap().dims(), &[8, 8, 4]);
        assert_eq!(scaled_topology(&t3d, 1024).unwrap().dims(), &[16, 8, 8]);
        assert_eq!(scaled_topology(&t3d, 4096).unwrap().dims(), &[16, 16, 16]);
        let mesh = Topology::mesh(&[8, 8]);
        let m16 = scaled_topology(&mesh, 16).unwrap();
        assert_eq!(m16.dims(), &[4, 4]);
        assert!(!m16.is_torus());
        assert!(scaled_topology(&t3d, 3).is_err());
        assert!(scaled_topology(&t3d, 0).is_err());
    }

    #[test]
    fn retry_storm_retransmits_every_drop() {
        // A drop-heavy plan under adversarial retry-storm traffic: with the
        // default (generous) retry budget every dropped word retransmits —
        // the counters prove it — and the result is byte-identical at any
        // jobs × shards.
        use crate::adversary::{self, AdversaryConfig, AdversaryKind};
        use memcomm_memsim::fault::FaultConfig;
        let topo = Topology::torus(&[2, 2]);
        let t = adversary::generate(
            &topo,
            &AdversaryConfig {
                kind: AdversaryKind::RetryStorm,
                base_bytes: 64,
                ..AdversaryConfig::default()
            },
        );
        let run = |jobs: usize, shards: usize| {
            let mut cfg = small_cfg();
            cfg.jobs = jobs;
            cfg.shards = shards;
            cfg.fault = FaultPlan::new(FaultConfig {
                seed: 21,
                rate: 0.4,
                ..FaultConfig::default()
            });
            run_flows(&topo, &t.flows, &cfg).unwrap()
        };
        let a = run(1, 1);
        assert!(a.dropped > 0, "a 40% fault rate must drop words");
        assert_eq!(a.dropped, a.retried + a.abandoned, "every drop accounted");
        assert_eq!(a.abandoned, 0, "default budget absorbs the storm");
        assert!(a.degraded.is_none());
        for (jobs, shards) in [(4, 0), (2, 3)] {
            let b = run(jobs, shards);
            assert_eq!(b.digest, a.digest, "jobs={jobs} shards={shards}");
            assert_eq!(b.retried, a.retried);
            assert_eq!(b.cycles, a.cycles);
        }
    }

    #[test]
    fn backoff_waits_do_not_trip_the_watchdog() {
        // Regression: a retry policy with real backoff waits parks dropped
        // words far in the future with nothing else in flight; the idle
        // watchdog must grant that slack instead of calling it a wedge.
        use memcomm_memsim::fault::FaultConfig;
        let topo = Topology::torus(&[4]);
        let flows = [Flow {
            src: 0,
            dst: 1,
            bytes: 16 * 8,
        }];
        let mut cfg = small_cfg();
        cfg.fault = FaultPlan::new(FaultConfig {
            seed: 9,
            rate: 0.5,
            ..FaultConfig::default()
        });
        cfg.retry = RetryPolicy {
            max_retries: 64,
            backoff_base_cycles: 512,
            backoff_factor: 2,
            max_backoff_cycles: 1 << 14,
        };
        let out = run_flows(&topo, &flows, &cfg).unwrap();
        assert_eq!(out.words, 16);
        assert!(out.dropped > 0, "half the attempts drop at seed 9");
        assert_eq!(out.dropped, out.retried, "all retried, none abandoned");
        assert!(out.degraded.is_none());
    }

    #[test]
    fn watchdog_slack_survives_adversarial_fault_bounds() {
        // Regression: the idle-slack arithmetic used to add stall and
        // jitter bounds unchecked, so a plan advertising near-u64 bounds
        // overflowed (a debug panic) before the first window ran.
        use memcomm_memsim::fault::FaultConfig;
        let topo = Topology::torus(&[4]);
        let flows = [Flow {
            src: 0,
            dst: 2,
            bytes: 8 * 8,
        }];
        let mut cfg = small_cfg();
        cfg.fault = FaultPlan::new(FaultConfig {
            seed: 5,
            rate: 1e-12, // active, but effectively never fires
            max_stall_cycles: u64::MAX,
            max_jitter_cycles: 1,
            ..FaultConfig::default()
        });
        let out = run_flows(&topo, &flows, &cfg).unwrap();
        assert_eq!(out.words, 8);
        assert!(out.degraded.is_none());
    }

    #[test]
    fn permanent_outages_degrade_with_exact_accounting() {
        // Every link dead: the run cannot deliver a single word, and must
        // close with exact per-flow and per-link accounting instead of a
        // bare deadlock — byte-identically at any jobs × shards and under
        // both scheduler substrates.
        use memcomm_memsim::fault::FaultConfig;
        let topo = Topology::torus(&[4]);
        let flows = traffic::cyclic_shift(&topo, 1, 32 * 8);
        let run = |jobs: usize, shards: usize, reference: bool| {
            let mut cfg = small_cfg();
            cfg.jobs = jobs;
            cfg.shards = shards;
            cfg.reference_scheduler = reference;
            cfg.fault = FaultPlan::new(FaultConfig {
                seed: 3,
                permanent_outage_rate: 1.0,
                ..FaultConfig::default()
            });
            run_flows(&topo, &flows, &cfg).unwrap()
        };
        let a = run(1, 1, false);
        let d = a.degraded.as_ref().expect("dead links must degrade");
        assert_eq!(
            d.missing_flows.iter().map(|&(_, m)| m).sum::<u64>(),
            a.words,
            "every word is missing"
        );
        assert_eq!(d.missing_flows.len(), 4, "all four flows came up short");
        assert!(
            d.missing_flows.windows(2).all(|w| w[0].0 < w[1].0),
            "canonical flow order"
        );
        assert!(!d.per_link_outages.is_empty());
        assert!(
            d.per_link_outages.windows(2).all(|w| w[0].0 < w[1].0),
            "canonical link order"
        );
        for (jobs, shards, reference) in [(4, 0, false), (2, 3, false), (1, 1, true)] {
            let b = run(jobs, shards, reference);
            assert_eq!(b.digest, a.digest, "jobs={jobs} shards={shards}");
            assert_eq!(b.degraded, a.degraded, "jobs={jobs} shards={shards}");
        }
    }

    #[test]
    fn exhausted_retry_budget_abandons_and_accounts() {
        // max_retries = 0 with a high drop rate: some words burn their
        // (empty) budget on the first drop and are abandoned; the run still
        // completes, with dropped == retried + abandoned and the missing
        // words reported per flow.
        use memcomm_memsim::fault::FaultConfig;
        let topo = Topology::torus(&[4]);
        let flows = traffic::cyclic_shift(&topo, 1, 64 * 8);
        let run = |jobs: usize, shards: usize| {
            let mut cfg = small_cfg();
            cfg.jobs = jobs;
            cfg.shards = shards;
            cfg.fault = FaultPlan::new(FaultConfig {
                seed: 13,
                rate: 0.25,
                ..FaultConfig::default()
            });
            cfg.retry = RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            };
            run_flows(&topo, &flows, &cfg).unwrap()
        };
        let a = run(1, 1);
        assert!(a.abandoned > 0, "a quarter of first attempts drop");
        assert_eq!(a.retried, 0, "no budget, no retries");
        assert_eq!(a.dropped, a.abandoned);
        let d = a.degraded.as_ref().expect("lost words must degrade");
        assert_eq!(
            d.missing_flows.iter().map(|&(_, m)| m).sum::<u64>(),
            a.abandoned,
            "missing words are exactly the abandoned ones"
        );
        for (jobs, shards) in [(4, 0), (3, 2)] {
            let b = run(jobs, shards);
            assert_eq!(b.digest, a.digest);
            assert_eq!(b.abandoned, a.abandoned);
            assert_eq!(b.degraded, a.degraded);
        }
    }

    #[test]
    fn flow_latency_histograms_are_partition_invariant() {
        use crate::adversary::{self, AdversaryConfig, AdversaryKind};
        let topo = Topology::torus(&[4, 4]);
        let t = adversary::generate(
            &topo,
            &AdversaryConfig {
                kind: AdversaryKind::Incast,
                base_bytes: 128,
                ..AdversaryConfig::default()
            },
        );
        let run = |jobs: usize, shards: usize| {
            let mut cfg = small_cfg();
            cfg.jobs = jobs;
            cfg.shards = shards;
            cfg.flow_classes = t.classes.clone();
            cfg.record_latency = true;
            run_flows(&topo, &t.flows, &cfg).unwrap()
        };
        let a = run(1, 1);
        assert_eq!(a.flow_latency.len(), 2, "background and adversarial");
        let delivered: u64 = a.flow_latency.iter().map(|h| h.count).sum();
        assert_eq!(delivered, a.words, "every word's latency is recorded");
        for h in &a.flow_latency {
            assert!(h.p50 <= h.p99 && h.p99 <= h.p999 && h.p999 <= h.max);
            assert!(h.min <= h.p50);
        }
        for (jobs, shards) in [(4, 0), (2, 5)] {
            let b = run(jobs, shards);
            assert_eq!(
                b.flow_latency, a.flow_latency,
                "jobs={jobs} shards={shards}"
            );
        }
    }

    #[test]
    fn telemetry_is_partition_invariant_and_telescopes() {
        use crate::adversary::{self, AdversaryConfig, AdversaryKind};
        let topo = Topology::torus(&[4, 4]);
        let t = adversary::generate(
            &topo,
            &AdversaryConfig {
                kind: AdversaryKind::Incast,
                base_bytes: 128,
                ..AdversaryConfig::default()
            },
        );
        let run = |jobs: usize, shards: usize, reference: bool| {
            let mut cfg = small_cfg();
            cfg.jobs = jobs;
            cfg.shards = shards;
            cfg.reference_scheduler = reference;
            cfg.flow_classes = t.classes.clone();
            cfg.record_latency = true;
            cfg.sample_every = 16;
            run_flows(&topo, &t.flows, &cfg).unwrap()
        };
        let a = run(1, 1, false);
        let tel = a.telemetry.as_ref().expect("sampling was on");
        assert!(tel.ticks > 0);
        assert_eq!(tel.queue_depth.samples(), tel.ticks);
        // Counter series totals equal the run ledger (the tail flush closes
        // any stub interval). No faults here, so both fault counters stay
        // flat and the busy ledger is exactly one wire time per flit hop.
        assert_eq!(tel.retries.total(), a.retried);
        assert_eq!(tel.outages.total(), 0);
        let wt_fp = (small_cfg().word_cycles() * 65536.0).round() as u64;
        assert_eq!(tel.link_busy.total(), a.flit_hops * wt_fp);
        assert_eq!(tel.link_busy_fp.iter().sum::<u64>(), tel.link_busy.total());
        assert!(tel.node_occupancy.iter().any(|&o| o > 0), "incast hotspot");
        // Critical-path attribution telescopes exactly to the latency
        // histograms, class by class.
        assert_eq!(tel.breakdown.len(), a.flow_latency.len());
        for (b, h) in tel.breakdown.iter().zip(&a.flow_latency) {
            assert_eq!(b.count, h.count);
            assert_eq!(b.total, h.sum);
            assert_eq!(b.inject + b.queue + b.wire + b.backoff, b.total);
            assert!(b.queue > 0, "an incast must show queueing");
        }
        // The whole telemetry block is partition- and substrate-invariant.
        for (jobs, shards, reference) in [(4, 0, false), (2, 5, false), (1, 1, true)] {
            let b = run(jobs, shards, reference);
            assert_eq!(b.digest, a.digest, "jobs={jobs} shards={shards}");
            assert_eq!(
                b.telemetry.as_ref().unwrap(),
                tel,
                "jobs={jobs} shards={shards} reference={reference}"
            );
        }
    }

    #[test]
    fn sampling_never_perturbs_results_and_stalls_flush_in_aggregate() {
        use memcomm_memsim::fault::FaultConfig;
        let topo = Topology::torus(&[4]);
        let flows = traffic::cyclic_shift(&topo, 1, 64 * 8);
        let mut base = small_cfg();
        base.record_events = true;
        base.fault = FaultPlan::new(FaultConfig {
            seed: 7,
            rate: 0.3,
            max_stall_cycles: 8,
            ..FaultConfig::default()
        });
        let a = run_flows(&topo, &flows, &base).unwrap();
        let mut sampled = base.clone();
        sampled.sample_every = 8;
        let obs = Obs::new(false);
        let b = {
            let _guard = obs.install();
            run_flows(&topo, &flows, &sampled).unwrap()
        };
        // Sampling on: same events, digest, and cycles — only the outputs
        // grow.
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
        assert_eq!(a.cycles, b.cycles);
        let tel = b.telemetry.as_ref().expect("sampling was on");
        assert_eq!(tel.retries.total(), b.retried);
        // The quiet NIC FIFOs' fault stalls reached the registry through
        // the coordinator's once-per-window aggregate flush.
        assert!(obs.counter(memcomm_memsim::stats::fault_metric::INJECTED) > 0);
    }

    #[test]
    fn zero_fault_adversarial_run_matches_faultless_baseline() {
        // An adversary plan with every rate at zero must be byte-identical
        // to no plan at all — the fault hooks and the retry/latency
        // plumbing are observationally free when disabled.
        use crate::adversary::{self, AdversaryConfig, AdversaryKind};
        use memcomm_memsim::fault::FaultConfig;
        let topo = Topology::torus(&[4, 4]);
        let t = adversary::generate(&topo, &AdversaryConfig::default());
        let _ = AdversaryKind::ALL; // canonical order is public API
        let mut base = small_cfg();
        base.record_events = true;
        let a = run_flows(&topo, &t.flows, &base).unwrap();
        let mut zeroed = base.clone();
        zeroed.fault = FaultPlan::new(FaultConfig {
            seed: 99,
            ..FaultConfig::default()
        });
        let b = run_flows(&topo, &t.flows, &zeroed).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn fault_plan_replays_identically() {
        use memcomm_memsim::fault::FaultConfig;
        let topo = Topology::torus(&[4]);
        let flows = traffic::cyclic_shift(&topo, 1, 64 * 8);
        let plan = FaultPlan::new(FaultConfig {
            seed: 7,
            rate: 0.05,
            ..FaultConfig::default()
        });
        let mut cfg = small_cfg();
        cfg.fault = plan;
        cfg.record_events = true;
        let a = run_flows(&topo, &flows, &cfg).unwrap();
        let b = run_flows(&topo, &flows, &cfg).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
        assert!(a.dropped > 0 || a.corrupted > 0, "faults should fire at 5%");
        // Dropped words are retransmitted, never lost: all four 64-word
        // flows of the shift complete.
        assert_eq!(a.words, 256);
    }
}
