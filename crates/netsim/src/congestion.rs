//! Flow-level congestion analysis.
//!
//! "Congestion two means a network link is traversed by twice as much data
//! as it can support at peak speed." Given a set of simultaneously active
//! flows, this module routes each with dimension-order routing, accumulates
//! per-link loads, and reports the pattern's congestion factor — including
//! the T3D's port quirk: "two adjacent nodes share a single communication
//! port [so] the minimal congestion is *two* unless half of the processors
//! remain unused."

use std::collections::HashMap;

use crate::routing::{route, LinkId};
use crate::topology::Topology;
use crate::traffic::Flow;

/// Result of analysing one pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionReport {
    /// Maximum over links of (bytes crossing the link ÷ largest single
    /// flow): how overcommitted the worst link is.
    pub max_link: f64,
    /// Mean load over links that carry any traffic, in the same unit.
    pub mean_link: f64,
    /// Maximum over ports of injected+ejected flows per shared port,
    /// relative to one flow (≥ `nodes_per_port` when every node is active).
    pub port: f64,
    /// The overall congestion factor: `max(max_link, port)`, at least 1.
    pub factor: f64,
}

/// Accumulates per-link byte loads for a flow set under dimension-order
/// routing.
pub fn link_loads(topo: &Topology, flows: &[Flow]) -> HashMap<LinkId, u64> {
    let mut loads = HashMap::new();
    for f in flows {
        for link in route(topo, f.src, f.dst) {
            *loads.entry(link).or_insert(0) += f.bytes;
        }
    }
    loads
}

/// Analyses the congestion of a set of simultaneously active flows.
///
/// `nodes_per_port` captures endpoint sharing (2 on the T3D, 1 on the
/// Paragon): the injection/ejection load of a port is the total flow count
/// of all nodes mapped to it.
///
/// # Panics
///
/// Panics if `nodes_per_port` is zero.
pub fn pattern_congestion(
    topo: &Topology,
    flows: &[Flow],
    nodes_per_port: u32,
) -> CongestionReport {
    assert!(nodes_per_port >= 1, "ports serve at least one node");
    let unit = flows.iter().map(|f| f.bytes).max().unwrap_or(0).max(1) as f64;
    let loads = link_loads(topo, flows);
    let max_link = loads.values().copied().max().unwrap_or(0) as f64 / unit;
    let mean_link = if loads.is_empty() {
        0.0
    } else {
        loads.values().copied().sum::<u64>() as f64 / loads.len() as f64 / unit
    };

    // Injection + ejection per shared port, whichever direction is worse.
    let mut inject: HashMap<usize, u64> = HashMap::new();
    let mut eject: HashMap<usize, u64> = HashMap::new();
    for f in flows {
        if f.src != f.dst {
            *inject.entry(f.src / nodes_per_port as usize).or_insert(0) += f.bytes;
            *eject.entry(f.dst / nodes_per_port as usize).or_insert(0) += f.bytes;
        }
    }
    let port = inject
        .values()
        .chain(eject.values())
        .copied()
        .max()
        .unwrap_or(0) as f64
        / unit;

    CongestionReport {
        max_link,
        mean_link,
        port,
        factor: max_link.max(port).max(1.0),
    }
}

/// The worst round of a scheduled pattern (e.g. the XOR all-to-all
/// schedule): the congestion a correctly scheduled implementation actually
/// experiences.
pub fn scheduled_congestion(
    topo: &Topology,
    rounds: &[Vec<Flow>],
    nodes_per_port: u32,
) -> CongestionReport {
    rounds
        .iter()
        .map(|r| pattern_congestion(topo, r, nodes_per_port))
        .max_by(|a, b| a.factor.total_cmp(&b.factor))
        .unwrap_or(CongestionReport {
            max_link: 0.0,
            mean_link: 0.0,
            port: 0.0,
            factor: 1.0,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic;

    #[test]
    fn unit_shift_on_torus_has_link_congestion_one() {
        let t = Topology::torus(&[8]);
        let flows = traffic::cyclic_shift(&t, 1, 1024);
        let r = pattern_congestion(&t, &flows, 1);
        assert_eq!(r.max_link, 1.0);
        assert_eq!(r.factor, 1.0);
    }

    #[test]
    fn shared_ports_double_the_congestion() {
        // Same shift, but two nodes per port as on the T3D: each port
        // injects two flows.
        let t = Topology::torus(&[8]);
        let flows = traffic::cyclic_shift(&t, 1, 1024);
        let r = pattern_congestion(&t, &flows, 2);
        assert_eq!(r.port, 2.0);
        assert_eq!(r.factor, 2.0);
    }

    #[test]
    fn longer_shifts_load_links_more() {
        let t = Topology::torus(&[16]);
        let near = pattern_congestion(&t, &traffic::cyclic_shift(&t, 1, 8), 1);
        let far = pattern_congestion(&t, &traffic::cyclic_shift(&t, 4, 8), 1);
        assert!(far.max_link > near.max_link);
        assert_eq!(far.max_link, 4.0, "k overlapping routes per ring link");
    }

    #[test]
    fn scheduled_aapc_beats_naive_all_to_all() {
        let t = Topology::torus(&[4, 4, 4]);
        let naive = pattern_congestion(&t, &traffic::all_to_all(&t, 64), 2);
        let rounds = traffic::aapc_xor_schedule(t.len(), 64);
        let scheduled = scheduled_congestion(&t, &rounds, 2);
        assert!(
            scheduled.factor < naive.factor / 4.0,
            "scheduling must reduce congestion drastically: {} vs {}",
            scheduled.factor,
            naive.factor
        );
    }

    #[test]
    fn xor_rounds_on_t3d_torus_run_near_port_limit() {
        // The paper's claim: dense patterns can be scheduled with minimal
        // congestion on T3D tori; the floor is the shared-port factor 2.
        let t = Topology::torus(&[4, 4, 4]);
        let rounds = traffic::aapc_xor_schedule(t.len(), 64);
        let r = scheduled_congestion(&t, &rounds, 2);
        assert!(r.factor >= 2.0);
        assert!(r.factor <= 4.0, "worst round factor {}", r.factor);
    }

    #[test]
    fn empty_flow_set_is_factor_one() {
        let t = Topology::torus(&[4]);
        let r = pattern_congestion(&t, &[], 1);
        assert_eq!(r.factor, 1.0);
    }

    #[test]
    fn link_loads_accumulate_bytes() {
        let t = Topology::mesh(&[3]);
        // Two flows crossing the middle link 0->1->2.
        let flows = [
            Flow {
                src: 0,
                dst: 2,
                bytes: 100,
            },
            Flow {
                src: 0,
                dst: 1,
                bytes: 50,
            },
        ];
        let loads = link_loads(&t, &flows);
        let l01 = LinkId { from: 0, to: 1 };
        assert_eq!(loads[&l01], 150);
    }
}
