//! Property-based tests of the copy-transfer algebra.

use memcomm_model::{
    AccessPattern, BasicTransfer, MBps, ModelError, RateTable, Throughput, TransferExpr,
};
use proptest::prelude::*;

fn rate_strategy() -> impl Strategy<Value = Throughput> {
    (0.1f64..1000.0).prop_map(MBps)
}

fn pattern_strategy() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::Contiguous),
        (2u32..5000).prop_map(|s| AccessPattern::strided(s).unwrap()),
        Just(AccessPattern::Indexed),
    ]
}

fn basic_strategy() -> impl Strategy<Value = BasicTransfer> {
    prop_oneof![
        (pattern_strategy(), pattern_strategy()).prop_map(|(x, y)| BasicTransfer::copy(x, y)),
        pattern_strategy().prop_map(BasicTransfer::load_send),
        pattern_strategy().prop_map(BasicTransfer::fetch_send),
        pattern_strategy().prop_map(BasicTransfer::receive_store),
        pattern_strategy().prop_map(BasicTransfer::receive_deposit),
        pattern_strategy().prop_map(BasicTransfer::load_stream),
        pattern_strategy().prop_map(BasicTransfer::store_stream),
        Just(BasicTransfer::net_data()),
        Just(BasicTransfer::net_addr_data()),
    ]
}

proptest! {
    #[test]
    fn seq_is_commutative(a in rate_strategy(), b in rate_strategy()) {
        let ab = a.seq(b).as_mbps();
        let ba = b.seq(a).as_mbps();
        prop_assert!((ab - ba).abs() < 1e-9 * ab.max(1.0));
    }

    #[test]
    fn seq_is_associative(a in rate_strategy(), b in rate_strategy(), c in rate_strategy()) {
        let left = a.seq(b).seq(c).as_mbps();
        let right = a.seq(b.seq(c)).as_mbps();
        prop_assert!((left - right).abs() < 1e-6 * left.max(1.0));
    }

    #[test]
    fn seq_is_strictly_below_min(a in rate_strategy(), b in rate_strategy()) {
        let z = a.seq(b);
        prop_assert!(z < a.par(b));
        prop_assert!(z.as_mbps() > 0.0);
    }

    #[test]
    fn par_is_min(a in rate_strategy(), b in rate_strategy()) {
        let z = a.par(b);
        prop_assert_eq!(z.as_mbps(), a.as_mbps().min(b.as_mbps()));
    }

    #[test]
    fn harmonic_bound_for_equal_rates(a in rate_strategy()) {
        // n identical sequential stages run at rate/n.
        let n = 4;
        let composed = Throughput::seq_all(std::iter::repeat_n(a, n)).unwrap();
        prop_assert!((composed.as_mbps() - a.as_mbps() / n as f64).abs() < 1e-9 * a.as_mbps());
    }

    #[test]
    fn cap_never_raises(a in rate_strategy(), limit in rate_strategy(), m in 0.5f64..8.0) {
        prop_assert!(a.capped(limit, m) <= a);
    }

    #[test]
    fn notation_round_trips(t in basic_strategy()) {
        let rendered = t.to_string();
        let parsed = BasicTransfer::parse(&rendered).unwrap();
        prop_assert_eq!(parsed, t);
    }

    /// Raising the rate of any single basic transfer never lowers the
    /// estimate of an expression that contains it (the estimator is
    /// monotone).
    #[test]
    fn estimator_is_monotone(
        base in 1.0f64..300.0,
        bump in 1.0f64..300.0,
    ) {
        let gather = BasicTransfer::copy(AccessPattern::Indexed, AccessPattern::Contiguous);
        let send = BasicTransfer::load_send(AccessPattern::Contiguous);
        let net = BasicTransfer::net_data();
        let expr = TransferExpr::seq(vec![
            gather.into(),
            TransferExpr::par(vec![send.into(), net.into()]).unwrap(),
        ]).unwrap();

        let mut table = RateTable::new();
        table.insert(gather, MBps(base));
        table.insert(send, MBps(120.0));
        table.insert(net, MBps(70.0));
        let before = expr.estimate(&table).unwrap();

        table.insert(gather, MBps(base + bump));
        let after = expr.estimate(&table).unwrap();
        prop_assert!(after >= before);
    }

    /// Stride interpolation always answers within the envelope of its
    /// anchors and is monotone in stride when the anchors are monotone.
    #[test]
    fn interpolation_stays_in_envelope(
        s in 2u32..100_000,
        lo in 5.0f64..50.0,
        hi in 50.0f64..200.0,
    ) {
        let mut table = RateTable::new();
        let anchor = |stride: u32| BasicTransfer::copy(
            AccessPattern::Contiguous,
            AccessPattern::strided(stride).unwrap(),
        );
        table.insert(anchor(2), MBps(hi));
        table.insert(anchor(64), MBps(lo));
        let probe = table.rate(anchor(s)).unwrap().as_mbps();
        prop_assert!(probe >= lo - 1e-9 && probe <= hi + 1e-9);
    }

    /// An estimate is always bounded above by the slowest leaf (every leaf
    /// participates either in a min or a reciprocal sum).
    #[test]
    fn estimate_bounded_by_leaves(r1 in rate_strategy(), r2 in rate_strategy(), r3 in rate_strategy()) {
        let a = BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Contiguous);
        let b = BasicTransfer::load_send(AccessPattern::Contiguous);
        let c = BasicTransfer::net_data();
        let mut table = RateTable::new();
        table.insert(a, r1);
        table.insert(b, r2);
        table.insert(c, r3);
        let expr = TransferExpr::seq(vec![
            a.into(),
            TransferExpr::par(vec![b.into(), c.into()]).unwrap(),
        ]).unwrap();
        let est = expr.estimate(&table).unwrap();
        prop_assert!(est <= r1 && est <= r2.par(r3));
    }
}

#[test]
fn empty_seq_is_rejected() {
    assert!(matches!(
        TransferExpr::seq(vec![]),
        Err(ModelError::EmptyComposition)
    ));
}
