//! Property-based tests of the copy-transfer algebra: the paper's two
//! composition rules — `∘` (sequential, reciprocal throughput sum) and `‖`
//! (concurrent, minimum) — plus the resource cap, the estimator and the
//! notation parser.

use memcomm_model::{
    AccessPattern, BasicTransfer, MBps, ModelError, RateTable, Throughput, TransferExpr,
};
use memcomm_util::check::forall;
use memcomm_util::rng::Rng;

fn random_rate(rng: &mut Rng) -> Throughput {
    MBps(rng.range_f64(0.1, 1000.0))
}

fn random_pattern(rng: &mut Rng) -> AccessPattern {
    match rng.range_u32(0, 3) {
        0 => AccessPattern::Contiguous,
        1 => AccessPattern::strided(rng.range_u32(2, 5000)).unwrap(),
        _ => AccessPattern::Indexed,
    }
}

fn random_basic(rng: &mut Rng) -> BasicTransfer {
    match rng.range_u32(0, 9) {
        0 => BasicTransfer::copy(random_pattern(rng), random_pattern(rng)),
        1 => BasicTransfer::load_send(random_pattern(rng)),
        2 => BasicTransfer::fetch_send(random_pattern(rng)),
        3 => BasicTransfer::receive_store(random_pattern(rng)),
        4 => BasicTransfer::receive_deposit(random_pattern(rng)),
        5 => BasicTransfer::load_stream(random_pattern(rng)),
        6 => BasicTransfer::store_stream(random_pattern(rng)),
        7 => BasicTransfer::net_data(),
        _ => BasicTransfer::net_addr_data(),
    }
}

#[test]
fn seq_is_commutative() {
    forall("seq_is_commutative", 256, |rng| {
        let (a, b) = (random_rate(rng), random_rate(rng));
        let ab = a.seq(b).as_mbps();
        let ba = b.seq(a).as_mbps();
        assert!((ab - ba).abs() < 1e-9 * ab.max(1.0));
    });
}

#[test]
fn seq_is_associative() {
    forall("seq_is_associative", 256, |rng| {
        let (a, b, c) = (random_rate(rng), random_rate(rng), random_rate(rng));
        let left = a.seq(b).seq(c).as_mbps();
        let right = a.seq(b.seq(c)).as_mbps();
        assert!((left - right).abs() < 1e-6 * left.max(1.0));
    });
}

#[test]
fn par_is_commutative() {
    forall("par_is_commutative", 256, |rng| {
        let (a, b) = (random_rate(rng), random_rate(rng));
        assert_eq!(a.par(b), b.par(a));
    });
}

#[test]
fn par_is_associative() {
    forall("par_is_associative", 256, |rng| {
        let (a, b, c) = (random_rate(rng), random_rate(rng), random_rate(rng));
        assert_eq!(a.par(b).par(c), a.par(b.par(c)));
    });
}

#[test]
fn seq_is_strictly_below_min() {
    forall("seq_is_strictly_below_min", 256, |rng| {
        let (a, b) = (random_rate(rng), random_rate(rng));
        let z = a.seq(b);
        assert!(z < a.par(b));
        assert!(z.as_mbps() > 0.0);
    });
}

#[test]
fn par_is_min() {
    forall("par_is_min", 256, |rng| {
        let (a, b) = (random_rate(rng), random_rate(rng));
        let z = a.par(b);
        assert_eq!(z.as_mbps(), a.as_mbps().min(b.as_mbps()));
    });
}

/// Both composition rules are monotone: speeding up either operand never
/// slows the composite down.
#[test]
fn compositions_are_monotone() {
    forall("compositions_are_monotone", 256, |rng| {
        let a = random_rate(rng);
        let b = random_rate(rng);
        let faster = MBps(a.as_mbps() + rng.range_f64(0.0, 500.0));
        assert!(faster.seq(b) >= a.seq(b));
        assert!(faster.par(b) >= a.par(b));
    });
}

#[test]
fn harmonic_bound_for_equal_rates() {
    forall("harmonic_bound_for_equal_rates", 256, |rng| {
        // n identical sequential stages run at rate/n.
        let a = random_rate(rng);
        let n = 4;
        let composed = Throughput::seq_all(std::iter::repeat_n(a, n)).unwrap();
        assert!((composed.as_mbps() - a.as_mbps() / n as f64).abs() < 1e-9 * a.as_mbps());
    });
}

/// A shared resource cap can only ever lower throughput.
#[test]
fn cap_never_raises() {
    forall("cap_never_raises", 256, |rng| {
        let a = random_rate(rng);
        let limit = random_rate(rng);
        let m = rng.range_f64(0.5, 8.0);
        assert!(a.capped(limit, m) <= a);
    });
}

#[test]
fn notation_round_trips() {
    forall("notation_round_trips", 256, |rng| {
        let t = random_basic(rng);
        let rendered = t.to_string();
        let parsed = BasicTransfer::parse(&rendered).unwrap();
        assert_eq!(parsed, t);
    });
}

/// Raising the rate of any single basic transfer never lowers the estimate
/// of an expression that contains it (the estimator is monotone).
#[test]
fn estimator_is_monotone() {
    forall("estimator_is_monotone", 256, |rng| {
        let base = rng.range_f64(1.0, 300.0);
        let bump = rng.range_f64(1.0, 300.0);
        let gather = BasicTransfer::copy(AccessPattern::Indexed, AccessPattern::Contiguous);
        let send = BasicTransfer::load_send(AccessPattern::Contiguous);
        let net = BasicTransfer::net_data();
        let expr = TransferExpr::seq(vec![
            gather.into(),
            TransferExpr::par(vec![send.into(), net.into()]).unwrap(),
        ])
        .unwrap();

        let mut table = RateTable::new();
        table.insert(gather, MBps(base));
        table.insert(send, MBps(120.0));
        table.insert(net, MBps(70.0));
        let before = expr.estimate(&table).unwrap();

        table.insert(gather, MBps(base + bump));
        let after = expr.estimate(&table).unwrap();
        assert!(after >= before);
    });
}

/// Stride interpolation always answers within the envelope of its anchors
/// and is monotone in stride when the anchors are monotone.
#[test]
fn interpolation_stays_in_envelope() {
    forall("interpolation_stays_in_envelope", 256, |rng| {
        let s = rng.range_u32(2, 100_000);
        let lo = rng.range_f64(5.0, 50.0);
        let hi = rng.range_f64(50.0, 200.0);
        let mut table = RateTable::new();
        let anchor = |stride: u32| {
            BasicTransfer::copy(
                AccessPattern::Contiguous,
                AccessPattern::strided(stride).unwrap(),
            )
        };
        table.insert(anchor(2), MBps(hi));
        table.insert(anchor(64), MBps(lo));
        let probe = table.rate(anchor(s)).unwrap().as_mbps();
        assert!(probe >= lo - 1e-9 && probe <= hi + 1e-9);
    });
}

/// An estimate is always bounded above by the slowest leaf (every leaf
/// participates either in a min or a reciprocal sum).
#[test]
fn estimate_bounded_by_leaves() {
    forall("estimate_bounded_by_leaves", 256, |rng| {
        let (r1, r2, r3) = (random_rate(rng), random_rate(rng), random_rate(rng));
        let a = BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Contiguous);
        let b = BasicTransfer::load_send(AccessPattern::Contiguous);
        let c = BasicTransfer::net_data();
        let mut table = RateTable::new();
        table.insert(a, r1);
        table.insert(b, r2);
        table.insert(c, r3);
        let expr = TransferExpr::seq(vec![
            a.into(),
            TransferExpr::par(vec![b.into(), c.into()]).unwrap(),
        ])
        .unwrap();
        let est = expr.estimate(&table).unwrap();
        assert!(est <= r1 && est <= r2.par(r3));
    });
}

#[test]
fn empty_seq_is_rejected() {
    assert!(matches!(
        TransferExpr::seq(vec![]),
        Err(ModelError::EmptyComposition)
    ));
}
