//! Basic transfers — the atoms of the copy-transfer model.

use std::fmt;

use crate::{AccessPattern, ModelError};

/// The functional unit executing a basic transfer.
///
/// Sequential composition (`∘`) is mandatory between transfers that share an
/// engine-class resource (the processor executes [`Copy`](Engine::Copy),
/// [`LoadSend`](Engine::LoadSend) and [`ReceiveStore`](Engine::ReceiveStore));
/// background engines ([`FetchSend`](Engine::FetchSend),
/// [`ReceiveDeposit`](Engine::ReceiveDeposit), the network) may run in
/// parallel (`‖`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Engine {
    /// Local memory-to-memory copy executed by the processor (`xCy`).
    Copy,
    /// Processor loads from memory and stores to the NIC port (`xS0`).
    LoadSend,
    /// DMA or fetch engine feeds the NIC in the background (`xF0`).
    FetchSend,
    /// Processor drains the NIC port and stores to memory (`0Ry`).
    ReceiveStore,
    /// Deposit engine stores incoming data in the background (`0Dy`).
    ReceiveDeposit,
    /// Network transfer carrying data words only (`Nd`).
    NetData,
    /// Network transfer carrying address-data pairs (`Nadp`).
    NetAddrData,
}

impl Engine {
    /// Returns `true` if the engine occupies the node's main processor.
    ///
    /// Two transfers that both need the processor cannot run in parallel; the
    /// model composes them sequentially.
    pub fn uses_processor(self) -> bool {
        matches!(self, Engine::Copy | Engine::LoadSend | Engine::ReceiveStore)
    }

    /// Short mnemonic used in the paper's notation.
    pub fn symbol(self) -> &'static str {
        match self {
            Engine::Copy => "C",
            Engine::LoadSend => "S",
            Engine::FetchSend => "F",
            Engine::ReceiveStore => "R",
            Engine::ReceiveDeposit => "D",
            Engine::NetData => "Nd",
            Engine::NetAddrData => "Nadp",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A basic transfer: an [`Engine`] together with its read and write access
/// patterns, e.g. `1C64`, `wS0`, `0D1`, `Nadp`.
///
/// Instances are built through the pattern-checked constructors
/// ([`copy`](BasicTransfer::copy), [`load_send`](BasicTransfer::load_send),
/// …) so that ill-formed combinations such as a load-send writing to memory
/// cannot be represented.
///
/// # Examples
///
/// ```rust
/// use memcomm_model::{AccessPattern, BasicTransfer};
///
/// let t = BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Indexed);
/// assert_eq!(t.to_string(), "1Cw");
/// assert!(t.engine().uses_processor());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BasicTransfer {
    engine: Engine,
    read: AccessPattern,
    write: AccessPattern,
}

impl BasicTransfer {
    /// Local memory-to-memory copy `xCy`.
    ///
    /// # Panics
    ///
    /// Panics if either pattern is [`AccessPattern::Fixed`]; a copy walks
    /// memory on both sides. Use [`load_send`](Self::load_send) /
    /// [`receive_store`](Self::receive_store) for port transfers.
    pub fn copy(read: AccessPattern, write: AccessPattern) -> Self {
        assert!(
            read.is_memory() && write.is_memory(),
            "a local copy reads and writes memory; got {read}C{write}"
        );
        BasicTransfer {
            engine: Engine::Copy,
            read,
            write,
        }
    }

    /// Pure store stream `0Cy`: the processor writes a constant to memory
    /// with pattern `y`, measuring raw memory-store bandwidth.
    ///
    /// The paper uses `|0Cx|` as the limit in resource constraints such as
    /// `2 × |xQy| < |0Cx|` (Section 3.4.1).
    ///
    /// # Panics
    ///
    /// Panics if `write` is not a memory pattern.
    pub fn store_stream(write: AccessPattern) -> Self {
        assert!(
            write.is_memory(),
            "store stream writes memory; got 0C{write}"
        );
        BasicTransfer {
            engine: Engine::Copy,
            read: AccessPattern::Fixed,
            write,
        }
    }

    /// Pure load stream `xC0`: the processor reads memory with pattern `x`
    /// into a register sink, measuring raw memory-load bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `read` is not a memory pattern.
    pub fn load_stream(read: AccessPattern) -> Self {
        assert!(read.is_memory(), "load stream reads memory; got {read}C0");
        BasicTransfer {
            engine: Engine::Copy,
            read,
            write: AccessPattern::Fixed,
        }
    }

    /// Processor load-send `xS0`: memory to the NIC port.
    ///
    /// # Panics
    ///
    /// Panics if `read` is not a memory pattern.
    pub fn load_send(read: AccessPattern) -> Self {
        assert!(read.is_memory(), "load-send reads memory; got {read}S0");
        BasicTransfer {
            engine: Engine::LoadSend,
            read,
            write: AccessPattern::Fixed,
        }
    }

    /// Background fetch-send `xF0`: DMA/fetch engine to the NIC port.
    ///
    /// # Panics
    ///
    /// Panics if `read` is not a memory pattern. (Whether a concrete DMA can
    /// execute a non-contiguous `read` is a property of the machine, checked
    /// when the transfer is run or rated, not of the notation.)
    pub fn fetch_send(read: AccessPattern) -> Self {
        assert!(read.is_memory(), "fetch-send reads memory; got {read}F0");
        BasicTransfer {
            engine: Engine::FetchSend,
            read,
            write: AccessPattern::Fixed,
        }
    }

    /// Processor receive-store `0Ry`: NIC port to memory.
    ///
    /// # Panics
    ///
    /// Panics if `write` is not a memory pattern.
    pub fn receive_store(write: AccessPattern) -> Self {
        assert!(
            write.is_memory(),
            "receive-store writes memory; got 0R{write}"
        );
        BasicTransfer {
            engine: Engine::ReceiveStore,
            read: AccessPattern::Fixed,
            write,
        }
    }

    /// Background receive-deposit `0Dy`: deposit engine to memory.
    ///
    /// # Panics
    ///
    /// Panics if `write` is not a memory pattern.
    pub fn receive_deposit(write: AccessPattern) -> Self {
        assert!(
            write.is_memory(),
            "receive-deposit writes memory; got 0D{write}"
        );
        BasicTransfer {
            engine: Engine::ReceiveDeposit,
            read: AccessPattern::Fixed,
            write,
        }
    }

    /// Data-only network transfer `Nd`.
    pub fn net_data() -> Self {
        BasicTransfer {
            engine: Engine::NetData,
            read: AccessPattern::Fixed,
            write: AccessPattern::Fixed,
        }
    }

    /// Address-data-pair network transfer `Nadp`, used when remote store
    /// addresses travel with the data (chained transfers with non-contiguous
    /// destination patterns).
    pub fn net_addr_data() -> Self {
        BasicTransfer {
            engine: Engine::NetAddrData,
            read: AccessPattern::Fixed,
            write: AccessPattern::Fixed,
        }
    }

    /// The executing engine.
    pub fn engine(self) -> Engine {
        self.engine
    }

    /// The read (left-subscript) access pattern.
    pub fn read_pattern(self) -> AccessPattern {
        self.read
    }

    /// The write (right-subscript) access pattern.
    pub fn write_pattern(self) -> AccessPattern {
        self.write
    }

    /// Returns `true` for the network stages `Nd` / `Nadp`.
    pub fn is_network(self) -> bool {
        matches!(self.engine, Engine::NetData | Engine::NetAddrData)
    }

    /// Returns the memory pattern this transfer reads, if it reads memory at
    /// all (network stages and receive stages do not).
    pub fn memory_read(self) -> Option<AccessPattern> {
        (!self.is_network() && self.read.is_memory()).then_some(self.read)
    }

    /// Returns the memory pattern this transfer writes, if it writes memory.
    pub fn memory_write(self) -> Option<AccessPattern> {
        (!self.is_network() && self.write.is_memory()).then_some(self.write)
    }

    /// Parses the paper's notation, e.g. `"1C64"`, `"wS0"`, `"0D1"`,
    /// `"Nd"`, `"Nadp"`. See the [`notation`](crate) module documentation
    /// for the grammar.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Parse`] for malformed strings and
    /// [`ModelError::InvalidStride`] for a zero stride.
    pub fn parse(s: &str) -> Result<Self, ModelError> {
        crate::notation::parse_basic(s)
    }
}

impl fmt::Display for BasicTransfer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_network() {
            write!(f, "{}", self.engine)
        } else {
            write!(f, "{}{}{}", self.read, self.engine, self.write)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper() {
        assert_eq!(
            BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Strided(64)).to_string(),
            "1C64"
        );
        assert_eq!(
            BasicTransfer::load_send(AccessPattern::Indexed).to_string(),
            "wS0"
        );
        assert_eq!(
            BasicTransfer::receive_deposit(AccessPattern::Contiguous).to_string(),
            "0D1"
        );
        assert_eq!(BasicTransfer::net_data().to_string(), "Nd");
        assert_eq!(BasicTransfer::net_addr_data().to_string(), "Nadp");
    }

    #[test]
    fn processor_usage() {
        assert!(
            BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Contiguous)
                .engine()
                .uses_processor()
        );
        assert!(!BasicTransfer::fetch_send(AccessPattern::Contiguous)
            .engine()
            .uses_processor());
        assert!(!BasicTransfer::net_data().engine().uses_processor());
    }

    #[test]
    #[should_panic(expected = "reads and writes memory")]
    fn copy_rejects_port_pattern() {
        let _ = BasicTransfer::copy(AccessPattern::Fixed, AccessPattern::Contiguous);
    }

    #[test]
    fn memory_sides() {
        let s = BasicTransfer::load_send(AccessPattern::Strided(8));
        assert_eq!(s.memory_read(), Some(AccessPattern::Strided(8)));
        assert_eq!(s.memory_write(), None);
        let d = BasicTransfer::receive_deposit(AccessPattern::Indexed);
        assert_eq!(d.memory_read(), None);
        assert_eq!(d.memory_write(), Some(AccessPattern::Indexed));
        assert_eq!(BasicTransfer::net_data().memory_read(), None);
        assert_eq!(BasicTransfer::net_data().memory_write(), None);
    }
}
