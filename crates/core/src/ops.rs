//! Canonical communication-operation formulas from Section 5 of the paper.
//!
//! A compiler's performance-critical operation is the local-to-remote memory
//! copy `xQy`. This module builds the model expressions for its two
//! implementation families:
//!
//! * **buffer packing** (`xQy`): gather into a contiguous buffer, move the
//!   block, scatter at the destination —
//!   `xQy = xC1 ∘ (1S0 ‖ Nd ‖ 0D1) ∘ 1Cy`;
//! * **chained** (`xQ'y`): gather, transfer and scatter in one step, sending
//!   address-data pairs so the deposit engine can store any pattern —
//!   `xQ'y = xS0 ‖ Nadp ‖ 0Dy` (and `1Q'1 = 1S0 ‖ Nd ‖ 0D1`).
//!
//! The plans are parameterized by which engine feeds the network (processor
//! or DMA) and which drains it (processor or deposit engine), which is how
//! the T3D and Paragon variants of Sections 5.1.1–5.1.4 differ.

use crate::{AccessPattern, BasicTransfer, ModelError, ResourceCap, TransferExpr};

/// Which engine moves outgoing data from memory to the network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SendEngine {
    /// The node processor executes a load-send loop (`xS0`).
    Processor,
    /// A DMA / fetch engine streams the data in the background (`xF0`).
    /// Real DMAs typically restrict the access pattern to contiguous blocks.
    Dma,
}

/// Which engine moves incoming data from the network interface to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReceiveEngine {
    /// The (co-)processor executes a receive-store loop (`0Ry`).
    Processor,
    /// A deposit engine stores in the background (`0Dy`).
    Deposit,
}

impl SendEngine {
    fn transfer(self, pattern: AccessPattern) -> BasicTransfer {
        match self {
            SendEngine::Processor => BasicTransfer::load_send(pattern),
            SendEngine::Dma => BasicTransfer::fetch_send(pattern),
        }
    }
}

impl ReceiveEngine {
    fn transfer(self, pattern: AccessPattern) -> BasicTransfer {
        match self {
            ReceiveEngine::Processor => BasicTransfer::receive_store(pattern),
            ReceiveEngine::Deposit => BasicTransfer::receive_deposit(pattern),
        }
    }
}

/// Configuration of a buffer-packing implementation of `xQy`.
///
/// The defaults describe the PVM-style implementation on the T3D
/// (processor send, deposit-engine receive, copies never elided, no
/// overlap of the unpack copy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferPackingPlan {
    /// Engine feeding the network with the packed buffer.
    pub send: SendEngine,
    /// Engine draining the network into the receive buffer.
    pub recv: ReceiveEngine,
    /// Skip the gather/scatter copy when the corresponding pattern is
    /// already contiguous. Standard libraries like PVM force the copy in all
    /// cases to comply with their interface; expert implementations elide it.
    pub elide_contiguous_copies: bool,
    /// Overlap the unpack copy with the transfer (`… ‖ 1Cy` instead of
    /// `… ∘ 1Cy`), as when the Paragon communication co-processor attends
    /// the DMA engines and the main processor is free to scatter.
    pub overlap_unpack: bool,
}

impl Default for BufferPackingPlan {
    fn default() -> Self {
        BufferPackingPlan {
            send: SendEngine::Processor,
            recv: ReceiveEngine::Deposit,
            elide_contiguous_copies: false,
            overlap_unpack: false,
        }
    }
}

/// Configuration of a chained implementation of `xQ'y`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainedPlan {
    /// Engine draining the network. The T3D annex is a
    /// [`ReceiveEngine::Deposit`]; the Paragon substitutes its co-processor,
    /// a [`ReceiveEngine::Processor`].
    pub recv: ReceiveEngine,
}

impl Default for ChainedPlan {
    fn default() -> Self {
        ChainedPlan {
            recv: ReceiveEngine::Deposit,
        }
    }
}

/// Builds the model expression for a buffer-packing `xQy`.
///
/// # Errors
///
/// Propagates composition errors; with a well-formed plan these cannot occur.
pub fn buffer_packing_expr(
    x: AccessPattern,
    y: AccessPattern,
    plan: BufferPackingPlan,
) -> Result<TransferExpr, ModelError> {
    assert!(x.is_memory() && y.is_memory(), "Q moves memory to memory");
    let middle = TransferExpr::par(vec![
        plan.send.transfer(AccessPattern::Contiguous).into(),
        BasicTransfer::net_data().into(),
        plan.recv.transfer(AccessPattern::Contiguous).into(),
    ])?;
    let gather = (!(plan.elide_contiguous_copies && x == AccessPattern::Contiguous))
        .then(|| BasicTransfer::copy(x, AccessPattern::Contiguous));
    let scatter = (!(plan.elide_contiguous_copies && y == AccessPattern::Contiguous))
        .then(|| BasicTransfer::copy(AccessPattern::Contiguous, y));

    let mut stages: Vec<TransferExpr> = Vec::new();
    if let Some(g) = gather {
        stages.push(g.into());
    }
    stages.push(middle);
    match (scatter, plan.overlap_unpack) {
        (None, _) => TransferExpr::seq(stages),
        (Some(s), false) => {
            stages.push(s.into());
            TransferExpr::seq(stages)
        }
        (Some(s), true) => {
            let pipeline = TransferExpr::seq(stages)?;
            TransferExpr::par(vec![pipeline, s.into()])
        }
    }
}

/// Builds the model expression for a chained `xQ'y`.
///
/// Contiguous-to-contiguous transfers ride the data-only network (`Nd`);
/// any other pattern combination must send address-data pairs (`Nadp`) so
/// the receiving engine knows where to store each word.
///
/// # Errors
///
/// Propagates composition errors; with a well-formed plan these cannot occur.
pub fn chained_expr(
    x: AccessPattern,
    y: AccessPattern,
    plan: ChainedPlan,
) -> Result<TransferExpr, ModelError> {
    assert!(x.is_memory() && y.is_memory(), "Q' moves memory to memory");
    let contiguous = x == AccessPattern::Contiguous && y == AccessPattern::Contiguous;
    let network = if contiguous {
        BasicTransfer::net_data()
    } else {
        BasicTransfer::net_addr_data()
    };
    TransferExpr::par(vec![
        BasicTransfer::load_send(x).into(),
        network.into(),
        plan.recv.transfer(y).into(),
    ])
}

/// The resource constraints of a symmetric exchange, where every node sends
/// and receives simultaneously: twice the operation's throughput must fit in
/// the raw store bandwidth `0Cy` and the raw load bandwidth `xC0`
/// (Sections 3.4.1 and 5.1.3).
pub fn symmetric_exchange_caps(x: AccessPattern, y: AccessPattern) -> Vec<ResourceCap> {
    vec![
        ResourceCap::rate_of(
            "memory store bandwidth 0Cy",
            2.0,
            BasicTransfer::store_stream(y),
        ),
        ResourceCap::rate_of(
            "memory load bandwidth xC0",
            2.0,
            BasicTransfer::load_stream(x),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: AccessPattern = AccessPattern::Indexed;
    const ONE: AccessPattern = AccessPattern::Contiguous;

    #[test]
    fn buffer_packing_formula_matches_paper() {
        let q = buffer_packing_expr(W, AccessPattern::Strided(64), BufferPackingPlan::default())
            .unwrap();
        assert_eq!(q.to_string(), "wC1 o (1S0 || Nd || 0D1) o 1C64");
    }

    #[test]
    fn buffer_packing_keeps_copies_for_contiguous_by_default() {
        // PVM forces the copies even for 1Q1.
        let q = buffer_packing_expr(ONE, ONE, BufferPackingPlan::default()).unwrap();
        assert_eq!(q.to_string(), "1C1 o (1S0 || Nd || 0D1) o 1C1");
    }

    #[test]
    fn buffer_packing_can_elide_contiguous_copies() {
        let plan = BufferPackingPlan {
            elide_contiguous_copies: true,
            ..BufferPackingPlan::default()
        };
        let q = buffer_packing_expr(ONE, ONE, plan).unwrap();
        assert_eq!(q.to_string(), "(1S0 || Nd || 0D1)");
    }

    #[test]
    fn paragon_overlap_variant() {
        // xQy = xC1 o (1F0 || Nd || 0D1) || 1Cy
        let plan = BufferPackingPlan {
            send: SendEngine::Dma,
            recv: ReceiveEngine::Deposit,
            elide_contiguous_copies: false,
            overlap_unpack: true,
        };
        let q = buffer_packing_expr(AccessPattern::Strided(16), W, plan).unwrap();
        assert_eq!(q.to_string(), "(16C1 o (1F0 || Nd || 0D1) || 1Cw)");
    }

    #[test]
    fn chained_contiguous_uses_data_only_network() {
        let q = chained_expr(ONE, ONE, ChainedPlan::default()).unwrap();
        assert_eq!(q.to_string(), "(1S0 || Nd || 0D1)");
    }

    #[test]
    fn chained_noncontiguous_uses_address_data_pairs() {
        let q = chained_expr(ONE, AccessPattern::Strided(64), ChainedPlan::default()).unwrap();
        assert_eq!(q.to_string(), "(1S0 || Nadp || 0D64)");
        let q = chained_expr(
            W,
            W,
            ChainedPlan {
                recv: ReceiveEngine::Processor,
            },
        )
        .unwrap();
        assert_eq!(q.to_string(), "(wS0 || Nadp || 0Rw)");
    }

    #[test]
    fn symmetric_caps_reference_raw_streams() {
        let caps = symmetric_exchange_caps(ONE, W);
        assert_eq!(caps.len(), 2);
        assert!(caps.iter().all(|c| c.multiplier == 2.0));
    }
}
