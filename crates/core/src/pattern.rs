//! Memory access patterns.

use std::fmt;

use crate::ModelError;

/// A memory access pattern, the `x`/`y` subscripts of the copy-transfer
/// notation.
///
/// The paper distinguishes four classes of access (Section 2.2 / 3.2):
///
/// * [`Fixed`](AccessPattern::Fixed) (`0`) — a constant location, e.g. the
///   head or tail of a network-interface FIFO;
/// * [`Contiguous`](AccessPattern::Contiguous) (`1`) — a contiguous block of
///   64-bit words, the result of *block* distributions;
/// * [`Strided`](AccessPattern::Strided)`(s)` (`s ≥ 2`) — words separated by
///   a constant stride of `s` words, the result of *cyclic* or *block-cyclic*
///   distributions;
/// * [`Indexed`](AccessPattern::Indexed) (`ω`) — an arbitrary sequence of
///   words designated by an index array. Reading the index array is overhead
///   that counts against the transfer's throughput but not its volume.
///
/// # Examples
///
/// ```rust
/// use memcomm_model::AccessPattern;
///
/// # fn main() -> Result<(), memcomm_model::ModelError> {
/// let column = AccessPattern::strided(1024)?;
/// assert_eq!(column.to_string(), "1024");
/// assert_eq!(AccessPattern::Indexed.to_string(), "w");
/// assert!(column.is_memory());
/// assert!(!AccessPattern::Fixed.is_memory());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessPattern {
    /// A fixed location (`0`), e.g. a memory-mapped FIFO port.
    Fixed,
    /// Contiguous word accesses (`1`).
    Contiguous,
    /// Constant-stride accesses (`n`), stride measured in 64-bit words,
    /// always `≥ 2`.
    Strided(u32),
    /// Indexed (gather/scatter) accesses through an index array (`ω`).
    Indexed,
}

impl AccessPattern {
    /// Creates a strided pattern, normalizing degenerate strides.
    ///
    /// A stride of 1 is the contiguous pattern; a stride of 0 is not a valid
    /// memory walk.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidStride`] for stride 0.
    pub fn strided(stride: u32) -> Result<Self, ModelError> {
        match stride {
            0 => Err(ModelError::InvalidStride(stride)),
            1 => Ok(AccessPattern::Contiguous),
            s => Ok(AccessPattern::Strided(s)),
        }
    }

    /// Returns `true` if the pattern walks memory (as opposed to a fixed
    /// communication port).
    pub fn is_memory(self) -> bool {
        !matches!(self, AccessPattern::Fixed)
    }

    /// Returns the constant stride in words of this walk: 1 for contiguous,
    /// `s` for strided, and `None` for fixed or indexed patterns.
    pub fn stride(self) -> Option<u32> {
        match self {
            AccessPattern::Contiguous => Some(1),
            AccessPattern::Strided(s) => Some(s),
            AccessPattern::Fixed | AccessPattern::Indexed => None,
        }
    }

    /// Returns `true` if two patterns are compatible as the write side of one
    /// transfer feeding the read side of the next in a sequential
    /// composition.
    ///
    /// The model requires the patterns to match exactly; a fixed port matches
    /// a fixed port.
    pub fn chains_into(self, next: AccessPattern) -> bool {
        self == next
    }
}

/// Classifies an ordered sequence of word offsets as the access pattern a
/// compiler would use for it: contiguous, constant-stride, or indexed.
///
/// Sequences shorter than two elements are contiguous; non-positive or
/// non-constant deltas are indexed.
///
/// # Examples
///
/// ```rust
/// use memcomm_model::{classify_offsets, AccessPattern};
///
/// assert_eq!(classify_offsets(&[5, 6, 7]), AccessPattern::Contiguous);
/// assert_eq!(classify_offsets(&[0, 4, 8]), AccessPattern::Strided(4));
/// assert_eq!(classify_offsets(&[0, 4, 9]), AccessPattern::Indexed);
/// ```
pub fn classify_offsets(offsets: &[u64]) -> AccessPattern {
    if offsets.len() < 2 {
        return AccessPattern::Contiguous;
    }
    let delta = offsets[1] as i128 - offsets[0] as i128;
    if delta <= 0 || delta > i128::from(u32::MAX) {
        return AccessPattern::Indexed;
    }
    for pair in offsets.windows(2) {
        if pair[1] as i128 - pair[0] as i128 != delta {
            return AccessPattern::Indexed;
        }
    }
    AccessPattern::strided(delta as u32).expect("delta in 1..=u32::MAX")
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPattern::Fixed => write!(f, "0"),
            AccessPattern::Contiguous => write!(f, "1"),
            AccessPattern::Strided(s) => write!(f, "{s}"),
            AccessPattern::Indexed => write!(f, "w"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_normalizes_stride_one() {
        assert_eq!(
            AccessPattern::strided(1).unwrap(),
            AccessPattern::Contiguous
        );
    }

    #[test]
    fn strided_rejects_zero() {
        assert!(matches!(
            AccessPattern::strided(0),
            Err(ModelError::InvalidStride(0))
        ));
    }

    #[test]
    fn strided_keeps_real_strides() {
        assert_eq!(
            AccessPattern::strided(64).unwrap(),
            AccessPattern::Strided(64)
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(AccessPattern::Fixed.to_string(), "0");
        assert_eq!(AccessPattern::Contiguous.to_string(), "1");
        assert_eq!(AccessPattern::Strided(16).to_string(), "16");
        assert_eq!(AccessPattern::Indexed.to_string(), "w");
    }

    #[test]
    fn memory_classification() {
        assert!(!AccessPattern::Fixed.is_memory());
        assert!(AccessPattern::Contiguous.is_memory());
        assert!(AccessPattern::Strided(2).is_memory());
        assert!(AccessPattern::Indexed.is_memory());
    }

    #[test]
    fn stride_accessor() {
        assert_eq!(AccessPattern::Contiguous.stride(), Some(1));
        assert_eq!(AccessPattern::Strided(7).stride(), Some(7));
        assert_eq!(AccessPattern::Indexed.stride(), None);
        assert_eq!(AccessPattern::Fixed.stride(), None);
    }

    #[test]
    fn classify_offsets_covers_the_three_classes() {
        assert_eq!(classify_offsets(&[]), AccessPattern::Contiguous);
        assert_eq!(classify_offsets(&[9]), AccessPattern::Contiguous);
        assert_eq!(classify_offsets(&[3, 4, 5, 6]), AccessPattern::Contiguous);
        assert_eq!(classify_offsets(&[0, 64, 128]), AccessPattern::Strided(64));
        assert_eq!(classify_offsets(&[0, 64, 120]), AccessPattern::Indexed);
        assert_eq!(
            classify_offsets(&[5, 5]),
            AccessPattern::Indexed,
            "zero delta"
        );
        assert_eq!(
            classify_offsets(&[9, 3]),
            AccessPattern::Indexed,
            "descending"
        );
    }

    #[test]
    fn chaining_requires_equality() {
        assert!(AccessPattern::Contiguous.chains_into(AccessPattern::Contiguous));
        assert!(!AccessPattern::Contiguous.chains_into(AccessPattern::Strided(2)));
    }
}
