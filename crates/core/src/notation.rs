//! Parser for the paper's transfer notation.
//!
//! Grammar for a basic transfer:
//!
//! ```text
//! basic   := "Nd" | "Nadp" | pattern engine pattern
//! engine  := "C" | "S" | "F" | "R" | "D"
//! pattern := "0" | "1" | "w" | "ω" | integer (>= 2, a stride in words)
//! ```
//!
//! Engine-specific pattern constraints are enforced: `S`/`F` write to the
//! port (`0`), `R`/`D` read from the port, and `C` must touch memory on at
//! least one side (`xC0`/`0Cy` are the pure load/store streams).

use crate::{AccessPattern, BasicTransfer, ModelError};

fn parse_pattern(s: &str, input: &str) -> Result<AccessPattern, ModelError> {
    match s {
        "0" => Ok(AccessPattern::Fixed),
        "1" => Ok(AccessPattern::Contiguous),
        "w" | "ω" => Ok(AccessPattern::Indexed),
        digits => {
            let stride: u32 = digits.parse().map_err(|_| ModelError::Parse {
                input: input.to_owned(),
                reason: "access pattern must be 0, 1, w, or a stride",
            })?;
            AccessPattern::strided(stride)
        }
    }
}

/// Parses a basic transfer from the paper's notation. See the module
/// documentation for the grammar.
pub(crate) fn parse_basic(input: &str) -> Result<BasicTransfer, ModelError> {
    let s = input.trim();
    match s {
        "Nd" => return Ok(BasicTransfer::net_data()),
        "Nadp" => return Ok(BasicTransfer::net_addr_data()),
        _ => {}
    }
    let engine_pos = s
        .char_indices()
        .find(|(_, c)| matches!(c, 'C' | 'S' | 'F' | 'R' | 'D'))
        .map(|(i, _)| i)
        .ok_or(ModelError::Parse {
            input: input.to_owned(),
            reason: "expected an engine letter C, S, F, R, or D (or Nd/Nadp)",
        })?;
    let (read_str, rest) = s.split_at(engine_pos);
    let engine = &rest[..1];
    let write_str = &rest[1..];
    if read_str.is_empty() || write_str.is_empty() {
        return Err(ModelError::Parse {
            input: input.to_owned(),
            reason: "expected <pattern><engine><pattern>",
        });
    }
    let read = parse_pattern(read_str, input)?;
    let write = parse_pattern(write_str, input)?;
    let mismatch = |reason| ModelError::Parse {
        input: input.to_owned(),
        reason,
    };
    match engine {
        "C" => match (read.is_memory(), write.is_memory()) {
            (true, true) => Ok(BasicTransfer::copy(read, write)),
            (true, false) => Ok(BasicTransfer::load_stream(read)),
            (false, true) => Ok(BasicTransfer::store_stream(write)),
            (false, false) => Err(mismatch("a copy must touch memory on at least one side")),
        },
        "S" => {
            if write != AccessPattern::Fixed || !read.is_memory() {
                Err(mismatch("load-send is written xS0 with x a memory pattern"))
            } else {
                Ok(BasicTransfer::load_send(read))
            }
        }
        "F" => {
            if write != AccessPattern::Fixed || !read.is_memory() {
                Err(mismatch(
                    "fetch-send is written xF0 with x a memory pattern",
                ))
            } else {
                Ok(BasicTransfer::fetch_send(read))
            }
        }
        "R" => {
            if read != AccessPattern::Fixed || !write.is_memory() {
                Err(mismatch(
                    "receive-store is written 0Ry with y a memory pattern",
                ))
            } else {
                Ok(BasicTransfer::receive_store(write))
            }
        }
        "D" => {
            if read != AccessPattern::Fixed || !write.is_memory() {
                Err(mismatch(
                    "receive-deposit is written 0Dy with y a memory pattern",
                ))
            } else {
                Ok(BasicTransfer::receive_deposit(write))
            }
        }
        _ => unreachable!("engine_pos only matches known letters"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_examples() {
        for s in [
            "1C1", "1C64", "64C1", "1Cw", "wC1", "1S0", "1F0", "64S0", "wS0", "0R1", "0D1", "0R64",
            "0D64", "0Rw", "0Dw", "Nd", "Nadp", "0C1", "1C0",
        ] {
            let t = BasicTransfer::parse(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(t.to_string(), s, "round trip of {s}");
        }
    }

    #[test]
    fn unicode_omega_accepted() {
        assert_eq!(
            BasicTransfer::parse("ωC1").unwrap(),
            BasicTransfer::copy(AccessPattern::Indexed, AccessPattern::Contiguous)
        );
    }

    #[test]
    fn rejects_garbage() {
        for s in [
            "", "Q", "1Q1", "C", "1C", "S0", "xSy", "0C0", "1S1", "1R1", "0F0", "1D1",
        ] {
            assert!(BasicTransfer::parse(s).is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn rejects_zero_stride_via_validation() {
        // "00" parses as the integer 0 -> invalid stride.
        assert!(BasicTransfer::parse("00C1").is_err());
    }

    #[test]
    fn whitespace_is_trimmed() {
        assert!(BasicTransfer::parse(" 1C1 ").is_ok());
    }
}
