//! Throughput values and the arithmetic of the composition rules.

use std::fmt;
use std::iter::Sum;

/// A throughput in megabytes per second (1 MB = 10⁶ bytes, as in the paper).
///
/// `Throughput` carries the arithmetic of the model's composition rules:
/// [`seq`](Throughput::seq) is the reciprocal-sum rule for transfers that
/// share a resource, [`par`](Throughput::par) the minimum rule for transfers
/// on disjoint resources.
///
/// # Examples
///
/// ```rust
/// use memcomm_model::MBps;
///
/// let gather = MBps(93.0);
/// let send = MBps(126.0);
/// // Gather and send share the processor: reciprocal sum.
/// assert!((gather.seq(send).as_mbps() - 53.5).abs() < 0.1);
/// // A network stage in parallel only matters if it is the bottleneck.
/// assert_eq!(gather.par(MBps(160.0)), gather);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Throughput(f64);

/// Constructs a [`Throughput`] from a value in MB/s.
///
/// This free-function constructor mirrors the way the paper writes rates
/// ("93 MB/s") and keeps call sites short.
#[allow(non_snake_case)]
pub fn MBps(mbps: f64) -> Throughput {
    Throughput::from_mbps(mbps)
}

impl Throughput {
    /// Creates a throughput from MB/s.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is negative or not finite; throughputs are physical
    /// rates.
    pub fn from_mbps(mbps: f64) -> Self {
        assert!(
            mbps.is_finite() && mbps >= 0.0,
            "throughput must be a finite non-negative rate, got {mbps}"
        );
        Throughput(mbps)
    }

    /// Creates a throughput from a byte count moved in a number of seconds.
    ///
    /// Returns zero throughput for non-positive durations of zero-byte
    /// transfers; a positive byte count over a zero duration panics.
    ///
    /// # Panics
    ///
    /// Panics if `seconds <= 0` while `bytes > 0`.
    pub fn from_bytes_per_sec(bytes: u64, seconds: f64) -> Self {
        if bytes == 0 {
            return Throughput(0.0);
        }
        assert!(seconds > 0.0, "positive volume needs positive duration");
        Throughput(bytes as f64 / seconds / 1.0e6)
    }

    /// The rate in MB/s.
    pub fn as_mbps(self) -> f64 {
        self.0
    }

    /// The rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0 * 1.0e6
    }

    /// Sequential composition (`∘`): the two transfers share a resource, so
    /// their times add and the composite throughput is
    /// `1 / (1/|X| + 1/|Y|)`.
    ///
    /// A zero rate on either side yields zero (the shared resource never
    /// finishes that stage).
    pub fn seq(self, other: Throughput) -> Throughput {
        if self.0 == 0.0 || other.0 == 0.0 {
            return Throughput(0.0);
        }
        Throughput(1.0 / (1.0 / self.0 + 1.0 / other.0))
    }

    /// Parallel composition (`‖`): disjoint resources, so the slowest stage
    /// dictates the composite throughput, `min(|X|, |Y|)`.
    pub fn par(self, other: Throughput) -> Throughput {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Applies a resource constraint: the composite may not exceed
    /// `limit / multiplier`, i.e. `multiplier × |Z| ≤ limit`.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is not a positive finite number.
    pub fn capped(self, limit: Throughput, multiplier: f64) -> Throughput {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "constraint multiplier must be positive, got {multiplier}"
        );
        self.par(Throughput(limit.0 / multiplier))
    }

    /// Scales the rate by a factor (e.g. dividing link bandwidth by a
    /// congestion factor).
    ///
    /// # Panics
    ///
    /// Panics if the factor is negative or not finite.
    pub fn scaled(self, factor: f64) -> Throughput {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative, got {factor}"
        );
        Throughput(self.0 * factor)
    }

    /// Sequentially composes an iterator of rates (reciprocal sum of all).
    ///
    /// Returns `None` for an empty iterator: an empty sequential composition
    /// has no meaningful rate.
    pub fn seq_all<I: IntoIterator<Item = Throughput>>(rates: I) -> Option<Throughput> {
        rates.into_iter().reduce(Throughput::seq)
    }

    /// Parallel-composes an iterator of rates (minimum of all).
    ///
    /// Returns `None` for an empty iterator.
    pub fn par_all<I: IntoIterator<Item = Throughput>>(rates: I) -> Option<Throughput> {
        rates.into_iter().reduce(Throughput::par)
    }

    /// Relative error of `self` against a reference rate, as a fraction
    /// (`|self - reference| / reference`).
    ///
    /// Used by the calibration report to compare simulated throughputs
    /// against the paper's published figures.
    ///
    /// # Panics
    ///
    /// Panics if the reference rate is zero.
    pub fn relative_error(self, reference: Throughput) -> f64 {
        assert!(reference.0 > 0.0, "reference rate must be positive");
        (self.0 - reference.0).abs() / reference.0
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MB/s", self.0)
    }
}

impl Sum for Throughput {
    /// Summing throughputs adds rates — the aggregate bandwidth of
    /// independent flows (used for resource-constraint checks, not for
    /// composition).
    fn sum<I: Iterator<Item = Throughput>>(iter: I) -> Throughput {
        Throughput(iter.map(|t| t.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_is_reciprocal_sum() {
        let z = MBps(100.0).seq(MBps(100.0));
        assert!((z.as_mbps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn par_is_min() {
        assert_eq!(MBps(80.0).par(MBps(120.0)), MBps(80.0));
        assert_eq!(MBps(120.0).par(MBps(80.0)), MBps(80.0));
    }

    #[test]
    fn seq_never_exceeds_either_operand() {
        let a = MBps(93.0);
        let b = MBps(126.0);
        let z = a.seq(b);
        assert!(z < a && z < b);
    }

    #[test]
    fn seq_with_zero_is_zero() {
        assert_eq!(MBps(0.0).seq(MBps(100.0)), MBps(0.0));
        assert_eq!(MBps(100.0).seq(MBps(0.0)), MBps(0.0));
    }

    #[test]
    fn capped_applies_multiplier() {
        // 2 x |Q| <= 93  =>  |Q| <= 46.5
        let q = MBps(70.0).capped(MBps(93.0), 2.0);
        assert!((q.as_mbps() - 46.5).abs() < 1e-9);
        // A loose constraint changes nothing.
        assert_eq!(MBps(10.0).capped(MBps(93.0), 2.0), MBps(10.0));
    }

    #[test]
    fn from_bytes_per_sec_converts() {
        let t = Throughput::from_bytes_per_sec(8_000_000, 1.0);
        assert!((t.as_mbps() - 8.0).abs() < 1e-9);
        assert_eq!(Throughput::from_bytes_per_sec(0, 0.0).as_mbps(), 0.0);
    }

    #[test]
    fn seq_all_and_par_all() {
        let rates = [MBps(93.0), MBps(69.0), MBps(67.9)];
        let seq = Throughput::seq_all(rates).unwrap();
        assert!((seq.as_mbps() - 25.1).abs() < 0.1); // the paper's 1Q64 buffer packing
        let par = Throughput::par_all(rates).unwrap();
        assert_eq!(par, MBps(67.9));
        assert!(Throughput::seq_all(std::iter::empty()).is_none());
    }

    #[test]
    fn sum_adds_rates() {
        let total: Throughput = [MBps(10.0), MBps(20.0)].into_iter().sum();
        assert_eq!(total, MBps(30.0));
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_rate_rejected() {
        let _ = MBps(-1.0);
    }

    #[test]
    fn relative_error_is_symmetric_fraction() {
        assert!((MBps(20.0).relative_error(MBps(25.0)) - 0.2).abs() < 1e-12);
    }
}
