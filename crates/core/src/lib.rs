//! # memcomm-model — the copy-transfer model
//!
//! This crate implements the *copy-transfer model* of Stricker & Gross
//! (ISCA 1995), a throughput-oriented model of inter-node communication in
//! message-passing parallel computers.
//!
//! In the model, every communication operation is a composition of **basic
//! transfers**. A basic transfer moves a stream of 64-bit words between a
//! memory access pattern and either another memory access pattern, a network
//! port, or across the network:
//!
//! | Notation | Constructor | Meaning |
//! |---|---|---|
//! | `xCy` | [`BasicTransfer::copy`] | local memory-to-memory copy by the processor |
//! | `xS0` | [`BasicTransfer::load_send`] | processor loads, stores to the NIC port |
//! | `xF0` | [`BasicTransfer::fetch_send`] | DMA/fetch engine feeds the NIC in the background |
//! | `0Ry` | [`BasicTransfer::receive_store`] | processor drains the NIC, stores to memory |
//! | `0Dy` | [`BasicTransfer::receive_deposit`] | deposit engine stores incoming data in the background |
//! | `Nd` | [`BasicTransfer::net_data`] | network transfer, data words only |
//! | `Nadp` | [`BasicTransfer::net_addr_data`] | network transfer, address-data pairs |
//!
//! where `x`/`y` are [`AccessPattern`]s: `0` a fixed port, `1` contiguous,
//! `n ≥ 2` strided with stride `n`, and `ω` indexed through an index array.
//!
//! Basic transfers compose **sequentially** (`∘`, shared resource — composite
//! throughput is the reciprocal sum) or **in parallel** (`‖`, disjoint
//! resources — composite throughput is the minimum), subject to **resource
//! constraints** (`<`) that cap the total throughput of parallel activity.
//!
//! ## Example: estimating a buffer-packing transpose on the Cray T3D
//!
//! ```rust
//! use memcomm_model::{AccessPattern, BasicTransfer, RateTable, TransferExpr, MBps};
//!
//! # fn main() -> Result<(), memcomm_model::ModelError> {
//! // Throughputs of the basic transfers (MB/s), as measured on a machine.
//! let mut rates = RateTable::new();
//! rates.insert(BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Contiguous), MBps(93.0));
//! rates.insert(BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::strided(64)?), MBps(67.9));
//! rates.insert(BasicTransfer::load_send(AccessPattern::Contiguous), MBps(126.0));
//! rates.insert(BasicTransfer::net_data(), MBps(69.0));
//! rates.insert(BasicTransfer::receive_deposit(AccessPattern::Contiguous), MBps(142.0));
//!
//! // 1Q1024 = 1C1 o (1S0 || Nd || 0D1) o 1C1024
//! let q = TransferExpr::seq(vec![
//!     BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Contiguous).into(),
//!     TransferExpr::par(vec![
//!         BasicTransfer::load_send(AccessPattern::Contiguous).into(),
//!         BasicTransfer::net_data().into(),
//!         BasicTransfer::receive_deposit(AccessPattern::Contiguous).into(),
//!     ])?,
//!     BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::strided(1024)?).into(),
//! ])?;
//! let estimate = q.estimate(&rates)?;
//! assert!((estimate.as_mbps() - 25.0).abs() < 0.5); // the paper's Section 3.4.1 estimate
//! # Ok(())
//! # }
//! ```
//!
//! The sibling crates build the machines this model describes:
//! `memcomm-memsim` simulates the node memory systems, `memcomm-netsim` the
//! interconnect, and `memcomm-commops` the end-to-end communication
//! operations whose measured throughput this model predicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod expr;
mod notation;
mod ops;
mod pattern;
mod rate;
mod rates;
mod transfer;

pub use error::ModelError;
pub use expr::{ResourceCap, TransferExpr};
pub use ops::{
    buffer_packing_expr, chained_expr, symmetric_exchange_caps, BufferPackingPlan, ChainedPlan,
    ReceiveEngine, SendEngine,
};
pub use pattern::{classify_offsets, AccessPattern};
pub use rate::{MBps, Throughput};
pub use rates::RateTable;
pub use transfer::{BasicTransfer, Engine};

/// Size in bytes of the model's basic unit of transfer (a 64-bit word,
/// typically a double-precision floating-point number).
pub const WORD_BYTES: u64 = 8;
