//! Error type of the model crate.

use std::error::Error;
use std::fmt;

use crate::{AccessPattern, BasicTransfer};

/// Errors produced while building or evaluating copy-transfer expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A stride of zero words does not describe a memory walk.
    InvalidStride(u32),
    /// Sequential composition where the write pattern of one stage does not
    /// match the read pattern of the next.
    PatternMismatch {
        /// Write pattern produced by the upstream stage.
        produced: AccessPattern,
        /// Read pattern expected by the downstream stage.
        expected: AccessPattern,
    },
    /// A composition with no operands has no throughput.
    EmptyComposition,
    /// The rate table has no entry (and no usable interpolation anchors) for
    /// a basic transfer.
    MissingRate(BasicTransfer),
    /// A notation string could not be parsed.
    Parse {
        /// The offending input.
        input: String,
        /// What went wrong.
        reason: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidStride(s) => write!(f, "invalid stride {s}: strides are >= 1 word"),
            ModelError::PatternMismatch { produced, expected } => write!(
                f,
                "sequential composition mismatch: upstream writes pattern {produced}, \
                 downstream reads pattern {expected}"
            ),
            ModelError::EmptyComposition => write!(f, "composition needs at least one transfer"),
            ModelError::MissingRate(t) => write!(f, "no throughput entry for basic transfer {t}"),
            ModelError::Parse { input, reason } => {
                write!(
                    f,
                    "cannot parse {input:?} as copy-transfer notation: {reason}"
                )
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = ModelError::InvalidStride(0);
        assert!(e.to_string().starts_with("invalid stride 0"));
        let e = ModelError::PatternMismatch {
            produced: AccessPattern::Contiguous,
            expected: AccessPattern::Indexed,
        };
        assert!(e.to_string().contains("writes pattern 1"));
        assert!(e.to_string().contains("reads pattern w"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<ModelError>();
    }
}
