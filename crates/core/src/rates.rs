//! Tables of measured basic-transfer throughputs.

use std::collections::BTreeMap;

use crate::{AccessPattern, BasicTransfer, Engine, ModelError, Throughput};

/// A table of measured throughputs for basic transfers, the input to
/// [`TransferExpr::estimate`](crate::TransferExpr::estimate).
///
/// Tables are populated either from the microbenchmarks that
/// `memcomm-machines` runs on the simulated nodes, or from the paper's
/// published figures for comparison.
///
/// ## Stride interpolation
///
/// Strided patterns form a family; a table rarely holds every stride. A
/// lookup for `Strided(s)` without an exact entry interpolates linearly in
/// `ln(stride)` between the nearest measured strides of the same transfer
/// shape, clamping outside the measured range. This encodes the paper's
/// observation that "the numbers do not vary for large strides, [so] the
/// throughput for stride 64 applies to any larger stride" while still
/// modelling the contiguous→strided falloff at small strides.
///
/// # Examples
///
/// ```rust
/// use memcomm_model::{AccessPattern, BasicTransfer, MBps, RateTable};
///
/// # fn main() -> Result<(), memcomm_model::ModelError> {
/// let mut table = RateTable::new();
/// let c8 = BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::strided(8)?);
/// let c64 = BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::strided(64)?);
/// table.insert(c8, MBps(80.0));
/// table.insert(c64, MBps(68.0));
///
/// // Stride 1024 clamps to the stride-64 entry.
/// let c1024 = BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::strided(1024)?);
/// assert_eq!(table.rate(c1024)?, MBps(68.0));
/// // Stride 16 interpolates between 8 and 64.
/// let c16 = BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::strided(16)?);
/// let r = table.rate(c16)?.as_mbps();
/// assert!(r < 80.0 && r > 68.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RateTable {
    entries: BTreeMap<BasicTransfer, Throughput>,
}

impl RateTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RateTable::default()
    }

    /// Inserts (or replaces) the measured rate for a basic transfer,
    /// returning the previous rate if any.
    pub fn insert(&mut self, transfer: BasicTransfer, rate: Throughput) -> Option<Throughput> {
        self.entries.insert(transfer, rate)
    }

    /// The exact entry for a transfer, without interpolation.
    pub fn get(&self, transfer: BasicTransfer) -> Option<Throughput> {
        self.entries.get(&transfer).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(transfer, rate)` entries in notation order.
    pub fn iter(&self) -> impl Iterator<Item = (BasicTransfer, Throughput)> + '_ {
        self.entries.iter().map(|(t, r)| (*t, *r))
    }

    /// Copies all entries of `other` into `self`, overwriting duplicates.
    pub fn extend_from(&mut self, other: &RateTable) {
        for (t, r) in other.iter() {
            self.entries.insert(t, r);
        }
    }

    /// Looks up (or interpolates) the throughput of a basic transfer.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingRate`] if there is neither an exact entry
    /// nor any strided anchor of the same transfer shape to interpolate from.
    pub fn rate(&self, transfer: BasicTransfer) -> Result<Throughput, ModelError> {
        if let Some(rate) = self.get(transfer) {
            return Ok(rate);
        }
        // Interpolate along the strided side, holding the other side fixed.
        if let AccessPattern::Strided(s) = transfer.read_pattern() {
            if let Some(rate) = self.interpolate(transfer.engine(), s, Side::Read, transfer) {
                return Ok(rate);
            }
        }
        if let AccessPattern::Strided(s) = transfer.write_pattern() {
            if let Some(rate) = self.interpolate(transfer.engine(), s, Side::Write, transfer) {
                return Ok(rate);
            }
        }
        Err(ModelError::MissingRate(transfer))
    }

    fn interpolate(
        &self,
        engine: Engine,
        stride: u32,
        side: Side,
        probe: BasicTransfer,
    ) -> Option<Throughput> {
        let mut anchors: Vec<(u32, f64)> = self
            .entries
            .iter()
            .filter_map(|(t, r)| {
                if t.engine() != engine {
                    return None;
                }
                let (varying, fixed_probe, fixed_entry) = match side {
                    Side::Read => (t.read_pattern(), probe.write_pattern(), t.write_pattern()),
                    Side::Write => (t.write_pattern(), probe.read_pattern(), t.read_pattern()),
                };
                if fixed_entry != fixed_probe {
                    return None;
                }
                match varying {
                    AccessPattern::Strided(a) => Some((a, r.as_mbps())),
                    _ => None,
                }
            })
            .collect();
        if anchors.is_empty() {
            return None;
        }
        anchors.sort_unstable_by_key(|(a, _)| *a);
        let first = anchors[0];
        let last = anchors[anchors.len() - 1];
        if stride <= first.0 {
            return Some(Throughput::from_mbps(first.1));
        }
        if stride >= last.0 {
            return Some(Throughput::from_mbps(last.1));
        }
        let hi = anchors.iter().position(|(a, _)| *a >= stride)?;
        let (a0, r0) = anchors[hi - 1];
        let (a1, r1) = anchors[hi];
        let t = ((stride as f64).ln() - (a0 as f64).ln()) / ((a1 as f64).ln() - (a0 as f64).ln());
        Some(Throughput::from_mbps(r0 + (r1 - r0) * t))
    }
}

#[derive(Clone, Copy)]
enum Side {
    Read,
    Write,
}

impl FromIterator<(BasicTransfer, Throughput)> for RateTable {
    fn from_iter<I: IntoIterator<Item = (BasicTransfer, Throughput)>>(iter: I) -> Self {
        RateTable {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(BasicTransfer, Throughput)> for RateTable {
    fn extend<I: IntoIterator<Item = (BasicTransfer, Throughput)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MBps;

    fn strided_copy(s: u32) -> BasicTransfer {
        BasicTransfer::copy(
            AccessPattern::Contiguous,
            AccessPattern::strided(s).unwrap(),
        )
    }

    fn table_with_anchors() -> RateTable {
        let mut t = RateTable::new();
        t.insert(strided_copy(2), MBps(90.0));
        t.insert(strided_copy(8), MBps(80.0));
        t.insert(strided_copy(64), MBps(68.0));
        t
    }

    #[test]
    fn exact_hit_wins() {
        let t = table_with_anchors();
        assert_eq!(t.rate(strided_copy(8)).unwrap(), MBps(80.0));
    }

    #[test]
    fn clamps_above_largest_anchor() {
        let t = table_with_anchors();
        assert_eq!(t.rate(strided_copy(1024)).unwrap(), MBps(68.0));
    }

    #[test]
    fn clamps_below_smallest_anchor() {
        // No contiguous entry: stride 2 is the smallest anchor; nothing
        // smaller exists to ask for except contiguous, which is a different
        // pattern and must not be served by interpolation.
        let t = table_with_anchors();
        let contiguous = BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Contiguous);
        assert!(matches!(
            t.rate(contiguous),
            Err(ModelError::MissingRate(_))
        ));
    }

    #[test]
    fn interpolates_between_anchors() {
        let t = table_with_anchors();
        let r16 = t.rate(strided_copy(16)).unwrap().as_mbps();
        assert!(r16 < 80.0 && r16 > 68.0, "got {r16}");
        // Log interpolation: stride 16 is 1/3 of the way from 8 to 64 in
        // log space.
        let expected = 80.0 + (68.0 - 80.0) / 3.0;
        assert!((r16 - expected).abs() < 1e-9);
    }

    #[test]
    fn interpolation_respects_transfer_shape() {
        // Anchors for 1C_s must not answer queries for sC1.
        let t = table_with_anchors();
        let transposed = BasicTransfer::copy(
            AccessPattern::strided(16).unwrap(),
            AccessPattern::Contiguous,
        );
        assert!(matches!(
            t.rate(transposed),
            Err(ModelError::MissingRate(_))
        ));
    }

    #[test]
    fn send_strides_interpolate_too() {
        let mut t = RateTable::new();
        t.insert(
            BasicTransfer::load_send(AccessPattern::strided(2).unwrap()),
            MBps(50.0),
        );
        t.insert(
            BasicTransfer::load_send(AccessPattern::strided(64).unwrap()),
            MBps(35.0),
        );
        let r = t
            .rate(BasicTransfer::load_send(
                AccessPattern::strided(16).unwrap(),
            ))
            .unwrap()
            .as_mbps();
        assert!(r < 50.0 && r > 35.0);
    }

    #[test]
    fn from_iterator_collects() {
        let t: RateTable = vec![(BasicTransfer::net_data(), MBps(69.0))]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn extend_from_overwrites() {
        let mut a = RateTable::new();
        a.insert(BasicTransfer::net_data(), MBps(69.0));
        let mut b = RateTable::new();
        b.insert(BasicTransfer::net_data(), MBps(142.0));
        a.extend_from(&b);
        assert_eq!(a.rate(BasicTransfer::net_data()).unwrap(), MBps(142.0));
    }
}
