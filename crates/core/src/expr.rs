//! Composition expressions over basic transfers.

use std::fmt;

use crate::{AccessPattern, BasicTransfer, ModelError, RateTable, Throughput};

/// A resource constraint (`<` in the paper's notation): the throughput of
/// the constrained expression, multiplied by `multiplier`, may not exceed the
/// limit.
///
/// The limit can be a fixed rate or the rate of another basic transfer looked
/// up in the same [`RateTable`] at evaluation time — e.g. the paper's
/// `2 × |xQy| < |0Cx|` caps a symmetric exchange at half the raw memory
/// store bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceCap {
    /// Human-readable name of the shared resource ("memory store bandwidth").
    pub name: String,
    /// How many concurrent streams load the resource (the `2 ×` above).
    pub multiplier: f64,
    /// The capacity of the resource.
    pub limit: CapLimit,
}

/// The capacity side of a [`ResourceCap`].
#[derive(Debug, Clone, PartialEq)]
pub enum CapLimit {
    /// A fixed rate.
    Fixed(Throughput),
    /// The rate of a basic transfer, resolved against the rate table in use.
    RateOf(BasicTransfer),
}

impl ResourceCap {
    /// Convenience constructor for a cap expressed against a basic
    /// transfer's rate.
    pub fn rate_of(name: &str, multiplier: f64, transfer: BasicTransfer) -> Self {
        ResourceCap {
            name: name.to_owned(),
            multiplier,
            limit: CapLimit::RateOf(transfer),
        }
    }

    /// Convenience constructor for a fixed-rate cap.
    pub fn fixed(name: &str, multiplier: f64, limit: Throughput) -> Self {
        ResourceCap {
            name: name.to_owned(),
            multiplier,
            limit: CapLimit::Fixed(limit),
        }
    }

    fn resolve(&self, table: &RateTable) -> Result<Throughput, ModelError> {
        match &self.limit {
            CapLimit::Fixed(t) => Ok(*t),
            CapLimit::RateOf(b) => table.rate(*b),
        }
    }
}

/// A copy-transfer expression: a tree of basic transfers combined with
/// sequential (`∘`) and parallel (`‖`) composition and resource constraints.
///
/// Expressions are built with [`TransferExpr::seq`], [`TransferExpr::par`]
/// and [`TransferExpr::capped`]; `From<BasicTransfer>` lifts an atom into an
/// expression. [`TransferExpr::estimate`] evaluates the expression against a
/// [`RateTable`] using the model's three rules.
///
/// # Examples
///
/// Chained strided transfer on the T3D, `xQ'y = xS0 ‖ Nadp ‖ 0Dy`:
///
/// ```rust
/// use memcomm_model::{AccessPattern, BasicTransfer, TransferExpr};
///
/// # fn main() -> Result<(), memcomm_model::ModelError> {
/// let q = TransferExpr::par(vec![
///     BasicTransfer::load_send(AccessPattern::strided(64)?).into(),
///     BasicTransfer::net_addr_data().into(),
///     BasicTransfer::receive_deposit(AccessPattern::Contiguous).into(),
/// ])?;
/// assert_eq!(q.to_string(), "(64S0 || Nadp || 0D1)");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum TransferExpr {
    /// A single basic transfer.
    Basic(BasicTransfer),
    /// Sequential composition: stages share a resource, times add.
    Seq(Vec<TransferExpr>),
    /// Parallel composition: disjoint resources, the minimum dominates.
    Par(Vec<TransferExpr>),
    /// An expression subject to resource constraints.
    Capped {
        /// The constrained expression.
        inner: Box<TransferExpr>,
        /// The constraints; all are applied.
        caps: Vec<ResourceCap>,
    },
}

impl From<BasicTransfer> for TransferExpr {
    fn from(b: BasicTransfer) -> Self {
        TransferExpr::Basic(b)
    }
}

impl TransferExpr {
    /// Builds a sequential composition, checking the chaining rule: the
    /// write pattern of each stage must match the read pattern of the next
    /// (where both are unambiguous).
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyComposition`] for no operands;
    /// [`ModelError::PatternMismatch`] when adjacent boundary patterns
    /// differ.
    pub fn seq(stages: Vec<TransferExpr>) -> Result<Self, ModelError> {
        if stages.is_empty() {
            return Err(ModelError::EmptyComposition);
        }
        for pair in stages.windows(2) {
            if let (Some(produced), Some(expected)) =
                (pair[0].boundary_write(), pair[1].boundary_read())
            {
                if !produced.chains_into(expected) {
                    return Err(ModelError::PatternMismatch { produced, expected });
                }
            }
        }
        Ok(TransferExpr::Seq(stages))
    }

    /// Builds a parallel composition.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyComposition`] for no operands.
    pub fn par(branches: Vec<TransferExpr>) -> Result<Self, ModelError> {
        if branches.is_empty() {
            return Err(ModelError::EmptyComposition);
        }
        Ok(TransferExpr::Par(branches))
    }

    /// Wraps the expression with resource constraints.
    pub fn capped(self, caps: Vec<ResourceCap>) -> Self {
        if caps.is_empty() {
            self
        } else {
            TransferExpr::Capped {
                inner: Box::new(self),
                caps,
            }
        }
    }

    /// The memory access pattern this expression consumes on its read side,
    /// if unambiguous.
    ///
    /// For a parallel group this is the pattern of the unique branch that
    /// reads memory (the sender-side stage); `None` if no branch or several
    /// conflicting branches read memory.
    pub fn boundary_read(&self) -> Option<AccessPattern> {
        match self {
            TransferExpr::Basic(b) => {
                if b.is_network() {
                    None
                } else {
                    Some(b.read_pattern())
                }
            }
            TransferExpr::Seq(stages) => stages.first().and_then(TransferExpr::boundary_read),
            TransferExpr::Par(branches) => unique(
                branches
                    .iter()
                    .filter_map(|e| e.boundary_read().filter(|p| p.is_memory())),
            ),
            TransferExpr::Capped { inner, .. } => inner.boundary_read(),
        }
    }

    /// The memory access pattern this expression produces on its write side,
    /// if unambiguous. Mirror image of [`boundary_read`](Self::boundary_read).
    pub fn boundary_write(&self) -> Option<AccessPattern> {
        match self {
            TransferExpr::Basic(b) => {
                if b.is_network() {
                    None
                } else {
                    Some(b.write_pattern())
                }
            }
            TransferExpr::Seq(stages) => stages.last().and_then(TransferExpr::boundary_write),
            TransferExpr::Par(branches) => unique(
                branches
                    .iter()
                    .filter_map(|e| e.boundary_write().filter(|p| p.is_memory())),
            ),
            TransferExpr::Capped { inner, .. } => inner.boundary_write(),
        }
    }

    /// Estimates the throughput of the expression against a rate table,
    /// applying the model's three rules: reciprocal sum for `∘`, minimum for
    /// `‖`, and capping for resource constraints.
    ///
    /// # Errors
    ///
    /// [`ModelError::MissingRate`] if the table cannot rate one of the basic
    /// transfers (even by stride interpolation).
    pub fn estimate(&self, table: &RateTable) -> Result<Throughput, ModelError> {
        match self {
            TransferExpr::Basic(b) => table.rate(*b),
            TransferExpr::Seq(stages) => {
                let rates = stages
                    .iter()
                    .map(|s| s.estimate(table))
                    .collect::<Result<Vec<_>, _>>()?;
                Throughput::seq_all(rates).ok_or(ModelError::EmptyComposition)
            }
            TransferExpr::Par(branches) => {
                let rates = branches
                    .iter()
                    .map(|s| s.estimate(table))
                    .collect::<Result<Vec<_>, _>>()?;
                Throughput::par_all(rates).ok_or(ModelError::EmptyComposition)
            }
            TransferExpr::Capped { inner, caps } => {
                let mut rate = inner.estimate(table)?;
                for cap in caps {
                    rate = rate.capped(cap.resolve(table)?, cap.multiplier);
                }
                Ok(rate)
            }
        }
    }

    /// Iterates over every basic transfer in the expression (depth-first,
    /// left to right), e.g. to check that a rate table covers it.
    pub fn basic_transfers(&self) -> Vec<BasicTransfer> {
        let mut out = Vec::new();
        self.collect_basics(&mut out);
        out
    }

    fn collect_basics(&self, out: &mut Vec<BasicTransfer>) {
        match self {
            TransferExpr::Basic(b) => out.push(*b),
            TransferExpr::Seq(children) | TransferExpr::Par(children) => {
                for c in children {
                    c.collect_basics(out);
                }
            }
            TransferExpr::Capped { inner, .. } => inner.collect_basics(out),
        }
    }
}

fn unique<I: Iterator<Item = AccessPattern>>(mut iter: I) -> Option<AccessPattern> {
    let first = iter.next()?;
    iter.all(|p| p == first).then_some(first)
}

impl fmt::Display for TransferExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferExpr::Basic(b) => write!(f, "{b}"),
            TransferExpr::Seq(stages) => {
                for (i, s) in stages.iter().enumerate() {
                    if i > 0 {
                        write!(f, " o ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
            TransferExpr::Par(branches) => {
                write!(f, "(")?;
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
            TransferExpr::Capped { inner, caps } => {
                write!(f, "{inner}")?;
                for cap in caps {
                    write!(f, " [{} x |.| < {}]", cap.multiplier, cap.name)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MBps;

    fn t3d_like_table() -> RateTable {
        let mut t = RateTable::new();
        t.insert(
            BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Contiguous),
            MBps(93.0),
        );
        t.insert(
            BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Strided(64)),
            MBps(67.9),
        );
        t.insert(
            BasicTransfer::load_send(AccessPattern::Contiguous),
            MBps(126.0),
        );
        t.insert(BasicTransfer::net_data(), MBps(69.0));
        t.insert(
            BasicTransfer::receive_deposit(AccessPattern::Contiguous),
            MBps(142.0),
        );
        t
    }

    fn buffer_packing_1q64() -> TransferExpr {
        TransferExpr::seq(vec![
            BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Contiguous).into(),
            TransferExpr::par(vec![
                BasicTransfer::load_send(AccessPattern::Contiguous).into(),
                BasicTransfer::net_data().into(),
                BasicTransfer::receive_deposit(AccessPattern::Contiguous).into(),
            ])
            .unwrap(),
            BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Strided(64)).into(),
        ])
        .unwrap()
    }

    #[test]
    fn estimate_matches_paper_section_5_1_1() {
        // |1Q64| = 1/(1/93 + 1/69 + 1/67.9) = 25.2 MB/s
        let rate = buffer_packing_1q64().estimate(&t3d_like_table()).unwrap();
        assert!((rate.as_mbps() - 25.2).abs() < 0.2, "got {rate}");
    }

    #[test]
    fn seq_rejects_pattern_mismatch() {
        // A gather copy producing contiguous data cannot feed a strided
        // load-send.
        let err = TransferExpr::seq(vec![
            BasicTransfer::copy(AccessPattern::Indexed, AccessPattern::Contiguous).into(),
            BasicTransfer::load_send(AccessPattern::Strided(8)).into(),
        ])
        .unwrap_err();
        assert!(matches!(err, ModelError::PatternMismatch { .. }));
    }

    #[test]
    fn seq_rejects_empty() {
        assert_eq!(
            TransferExpr::seq(vec![]).unwrap_err(),
            ModelError::EmptyComposition
        );
        assert_eq!(
            TransferExpr::par(vec![]).unwrap_err(),
            ModelError::EmptyComposition
        );
    }

    #[test]
    fn par_boundaries_come_from_memory_sides() {
        let par = TransferExpr::par(vec![
            BasicTransfer::load_send(AccessPattern::Strided(4)).into(),
            BasicTransfer::net_addr_data().into(),
            BasicTransfer::receive_deposit(AccessPattern::Indexed).into(),
        ])
        .unwrap();
        assert_eq!(par.boundary_read(), Some(AccessPattern::Strided(4)));
        assert_eq!(par.boundary_write(), Some(AccessPattern::Indexed));
    }

    #[test]
    fn cap_limits_estimate() {
        let table = t3d_like_table();
        let q = buffer_packing_1q64().capped(vec![ResourceCap::fixed(
            "memory store bandwidth",
            2.0,
            MBps(40.0),
        )]);
        let rate = q.estimate(&table).unwrap();
        assert!((rate.as_mbps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cap_can_reference_table_rate() {
        let table = t3d_like_table();
        let q =
            TransferExpr::from(BasicTransfer::load_send(AccessPattern::Contiguous)).capped(vec![
                ResourceCap::rate_of(
                    "copy bandwidth",
                    2.0,
                    BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Contiguous),
                ),
            ]);
        // min(126, 93/2) = 46.5
        assert!((q.estimate(&table).unwrap().as_mbps() - 46.5).abs() < 1e-9);
    }

    #[test]
    fn display_renders_formula() {
        assert_eq!(
            buffer_packing_1q64().to_string(),
            "1C1 o (1S0 || Nd || 0D1) o 1C64"
        );
    }

    #[test]
    fn basic_transfers_enumerates_leaves() {
        let leaves = buffer_packing_1q64().basic_transfers();
        assert_eq!(leaves.len(), 5);
        assert!(leaves.contains(&BasicTransfer::net_data()));
    }

    #[test]
    fn missing_rate_is_reported() {
        let table = RateTable::new();
        let e = buffer_packing_1q64().estimate(&table).unwrap_err();
        assert!(matches!(e, ModelError::MissingRate(_)));
    }

    #[test]
    fn estimate_never_exceeds_any_stage() {
        let table = t3d_like_table();
        let expr = buffer_packing_1q64();
        let est = expr.estimate(&table).unwrap();
        for leaf in expr.basic_transfers() {
            assert!(est <= table.rate(leaf).unwrap());
        }
    }
}
