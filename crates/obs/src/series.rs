//! Fixed-capacity, deterministically downsampling time-series.
//!
//! A [`Series`] records one `u64` value per *sample window* (a fixed
//! number of simulated cycles chosen by the producer, e.g.
//! `EngineConfig::sample_every`). Storage is bounded: when the point
//! buffer fills, adjacent pairs are folded together and the per-point
//! stride doubles, so a series always holds at most `capacity` points
//! covering the whole run at the finest resolution that fits. The fold is
//! driven purely by the number of samples pushed — never by wall clock —
//! so two runs of the same simulation produce bit-identical series.
//!
//! Every stored point is a **sum** over the base samples it covers; the
//! [`SeriesKind`] only decides how the sum reads: a [`Counter`] point *is*
//! the activity in its interval (deltas add), while a [`Gauge`] point is a
//! sum of sampled levels that renders as a mean level (sum ÷ stride).
//! Keeping both as plain sums makes everything linear, which is what the
//! engine's shard-major merge relies on: per-shard series over disjoint
//! resources [`merge`](Series::merge) pointwise by addition, commutatively
//! and associatively, so any shard partition and any merge order yields
//! the same bytes.
//!
//! [`Counter`]: SeriesKind::Counter
//! [`Gauge`]: SeriesKind::Gauge

/// How a series' per-point sums should be interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Activity per interval: a point is the number of events (or cycles
    /// of activity) inside it.
    Counter,
    /// Sampled level: a point is the sum of per-sample levels inside it;
    /// divide by [`Series::stride`] for the mean level.
    Gauge,
}

impl SeriesKind {
    /// Lower-case name (`"counter"` / `"gauge"`), as exported.
    pub fn name(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
        }
    }
}

/// A bounded, deterministically downsampling time-series. See the module
/// docs for the resolution and merge contracts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Series {
    kind: SeriesKind,
    /// Simulated cycles per base sample window.
    window: u64,
    /// Base windows folded into each stored point (doubles on downsample).
    stride: u64,
    /// Base windows pushed so far.
    pushed: u64,
    capacity: usize,
    points: Vec<u64>,
}

impl Series {
    /// Creates an empty series sampling every `window` cycles, holding at
    /// most `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero or `capacity < 2` (a one-point buffer
    /// cannot fold pairs).
    pub fn new(kind: SeriesKind, window: u64, capacity: usize) -> Series {
        assert!(window > 0, "series needs a non-zero sample window");
        assert!(capacity >= 2, "series needs capacity for at least 2 points");
        Series {
            kind,
            window,
            stride: 1,
            pushed: 0,
            capacity,
            points: Vec::new(),
        }
    }

    /// The interpretation of this series' points.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// Simulated cycles per base sample window.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Base sample windows folded into each stored point.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Simulated cycles each stored point currently covers.
    pub fn cycles_per_point(&self) -> u64 {
        self.window.saturating_mul(self.stride)
    }

    /// Base sample windows pushed so far.
    pub fn samples(&self) -> u64 {
        self.pushed
    }

    /// The stored points, oldest first. Point `i` covers simulated cycles
    /// `[i * cycles_per_point(), (i + 1) * cycles_per_point())`.
    pub fn points(&self) -> &[u64] {
        &self.points
    }

    /// Sum over every stored point — for counters, the series total.
    pub fn total(&self) -> u64 {
        self.points.iter().fold(0u64, |a, &p| a.saturating_add(p))
    }

    /// The largest stored point and its index, if any point exists. Ties
    /// resolve to the earliest point.
    pub fn peak(&self) -> Option<(usize, u64)> {
        let (mut at, mut best) = (0usize, 0u64);
        if self.points.is_empty() {
            return None;
        }
        for (i, &p) in self.points.iter().enumerate() {
            if p > best {
                (at, best) = (i, p);
            }
        }
        Some((at, best))
    }

    /// Records the sum for the next base sample window.
    pub fn push(&mut self, value: u64) {
        let index = (self.pushed / self.stride) as usize;
        if index == self.points.len() {
            if self.points.len() == self.capacity {
                self.downsample();
                // After folding, the fresh sample starts (or continues)
                // point `pushed / stride`.
                let idx = (self.pushed / self.stride) as usize;
                if idx == self.points.len() {
                    self.points.push(0);
                }
            } else {
                self.points.push(0);
            }
        }
        let idx = (self.pushed / self.stride) as usize;
        self.points[idx] = self.points[idx].saturating_add(value);
        self.pushed += 1;
    }

    /// Folds adjacent pairs together and doubles the stride.
    fn downsample(&mut self) {
        let half = self.points.len().div_ceil(2);
        for i in 0..half {
            let a = self.points[2 * i];
            let b = self.points.get(2 * i + 1).copied().unwrap_or(0);
            self.points[i] = a.saturating_add(b);
        }
        self.points.truncate(half);
        self.stride *= 2;
    }

    /// Folds another series over the *same* timeline into this one,
    /// pointwise by addition. The finer-resolution side is downsampled
    /// until the strides match, so merging is commutative and associative
    /// whatever order shards arrive in.
    ///
    /// # Panics
    ///
    /// Panics when the two series disagree on kind, sample window or
    /// capacity — they would not describe the same timeline.
    pub fn merge(&mut self, other: &Series) {
        assert_eq!(self.kind, other.kind, "series kind mismatch");
        assert_eq!(self.window, other.window, "series sample-window mismatch");
        assert_eq!(self.capacity, other.capacity, "series capacity mismatch");
        let mut other = other.clone();
        while self.stride < other.stride {
            self.downsample();
        }
        while other.stride < self.stride {
            other.downsample();
        }
        if other.points.len() > self.points.len() {
            self.points.resize(other.points.len(), 0);
        }
        for (p, &o) in self.points.iter_mut().zip(&other.points) {
            *p = p.saturating_add(o);
        }
        self.pushed = self.pushed.max(other.pushed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_accumulate_per_window() {
        let mut s = Series::new(SeriesKind::Counter, 64, 8);
        for v in [1u64, 2, 3] {
            s.push(v);
        }
        assert_eq!(s.points(), &[1, 2, 3]);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.samples(), 3);
        assert_eq!(s.total(), 6);
        assert_eq!(s.cycles_per_point(), 64);
        assert_eq!(s.peak(), Some((2, 3)));
    }

    #[test]
    fn overflow_folds_pairs_and_doubles_stride() {
        let mut s = Series::new(SeriesKind::Counter, 1, 4);
        for v in 1..=5u64 {
            s.push(v);
        }
        // [1,2,3,4] folds to [3,7]; 5 starts the third point.
        assert_eq!(s.points(), &[3, 7, 5]);
        assert_eq!(s.stride(), 2);
        assert_eq!(s.total(), 15);
        for v in 6..=8u64 {
            s.push(v);
        }
        assert_eq!(s.points(), &[3, 7, 11, 15]);
        for v in 9..=16u64 {
            s.push(v);
        }
        // Second fold: stride 4, totals preserved throughout.
        assert_eq!(s.stride(), 4);
        assert_eq!(s.total(), (1..=16u64).sum::<u64>());
        assert_eq!(s.points().len(), 4);
    }

    #[test]
    fn downsampling_is_a_pure_function_of_push_count() {
        let mut a = Series::new(SeriesKind::Gauge, 8, 16);
        let mut b = Series::new(SeriesKind::Gauge, 8, 16);
        for i in 0..100u64 {
            a.push(i % 7);
            b.push(i % 7);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_is_commutative_and_matches_single_series() {
        // Two shards each push their half of a global quantity; the merged
        // series must equal the series of the sums, either merge order.
        let mut left = Series::new(SeriesKind::Counter, 4, 8);
        let mut right = Series::new(SeriesKind::Counter, 4, 8);
        let mut whole = Series::new(SeriesKind::Counter, 4, 8);
        for i in 0..40u64 {
            let (l, r) = (i % 3, (i * 7) % 5);
            left.push(l);
            right.push(r);
            whole.push(l + r);
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, whole);
        assert_eq!(rl, whole);
    }

    #[test]
    fn merge_aligns_mismatched_strides() {
        // One side folded further than the other (more pushes): the merge
        // downsamples the finer side first.
        let mut coarse = Series::new(SeriesKind::Counter, 1, 4);
        let mut fine = Series::new(SeriesKind::Counter, 1, 4);
        for i in 0..8u64 {
            coarse.push(i);
        }
        for i in 0..3u64 {
            fine.push(10 + i);
        }
        let total = coarse.total() + fine.total();
        let mut merged = fine.clone();
        merged.merge(&coarse);
        assert_eq!(merged.stride(), 2);
        assert_eq!(merged.total(), total);
        let mut other_way = coarse;
        other_way.merge(&fine);
        assert_eq!(other_way, merged);
    }

    #[test]
    fn empty_series_reports_empty() {
        let s = Series::new(SeriesKind::Gauge, 64, 8);
        assert!(s.points().is_empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.peak(), None);
        assert_eq!(s.samples(), 0);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(SeriesKind::Counter.name(), "counter");
        assert_eq!(SeriesKind::Gauge.name(), "gauge");
    }
}
