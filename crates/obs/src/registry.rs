//! Per-run metrics: counters, max-tracking gauges and log₂-bucketed
//! histograms.
//!
//! A [`MetricsRegistry`] belongs to one run (one [`Obs`](crate::Obs)
//! handle), not to the process: two sweeps running concurrently in one test
//! binary each see only their own counts. All operations are additive and
//! commutative, so totals are deterministic whatever order parallel workers
//! record in.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of log₂ buckets a histogram keeps. Bucket 0 holds zeros; bucket
/// `k ≥ 1` holds values in `[2^(k-1), 2^k)`.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples (cycle latencies, retry
/// counts, queue depths). Fixed-size and lock-free to *read* once copied
/// out; recording goes through the owning registry's lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The q-quantile (q in `[0, 1]`), estimated by locating the bucket
    /// containing the target rank and interpolating linearly within it
    /// (rank position over bucket occupancy, scaled across the bucket's
    /// `[2^(k-1), 2^k)` span), clamped to the observed range. Exact on
    /// single-bucket distributions whose samples spread evenly over the
    /// bucket; within the bucket width otherwise — much tighter than the
    /// old upper-bound estimate, which pinned every quantile of a bucket
    /// to `2^k - 1`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let (lo, hi) = if k == 0 {
                    (0, 0)
                } else {
                    (1u64 << (k - 1), (1u64 << k).wrapping_sub(1))
                };
                // Rank position inside the bucket, 1..=n, mapped linearly
                // onto (lo, hi]: the last rank lands on the upper bound,
                // recovering the old estimate as the boundary case.
                let pos = target - seen;
                let est = lo + (u128::from(hi - lo) * u128::from(pos) / u128::from(n)) as u64;
                return est.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Folds another histogram into this one. Merging is commutative and
    /// associative — merging per-worker histograms in any order yields the
    /// same totals as recording every sample into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A plain-data summary of this histogram.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

/// The plain-data summary of one histogram, ready for reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Estimated 99.9th percentile (the tail the adversarial suite pins).
    pub p999: u64,
}

/// A deterministic, sorted snapshot of a registry's contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// All gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// All histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// Per-run metric storage. Thread-safe; every operation is additive, so
/// totals are independent of worker interleaving.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn add(&self, name: &str, delta: u64) {
        let mut counters = self.counters.lock().expect("metrics registry poisoned");
        match counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Reads the counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Raises the gauge `name` to `value` if larger (max-tracking gauge —
    /// the only gauge semantics that commute across parallel workers).
    pub fn gauge_max(&self, name: &str, value: u64) {
        let mut gauges = self.gauges.lock().expect("metrics registry poisoned");
        match gauges.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Reads the gauge `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .lock()
            .expect("metrics registry poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Records one sample into the histogram `name` (creating it empty).
    pub fn observe(&self, name: &str, value: u64) {
        let mut histograms = self.histograms.lock().expect("metrics registry poisoned");
        match histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Folds a pre-aggregated histogram into the histogram `name`
    /// (creating it empty). The bulk analogue of [`MetricsRegistry::observe`]
    /// for workers that accumulate locally and merge once.
    pub fn merge_histogram(&self, name: &str, other: &Histogram) {
        let mut histograms = self.histograms.lock().expect("metrics registry poisoned");
        match histograms.get_mut(name) {
            Some(h) => h.merge(other),
            None => {
                histograms.insert(name.to_string(), *other);
            }
        }
    }

    /// The summary of histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms
            .lock()
            .expect("metrics registry poisoned")
            .get(name)
            .map(Histogram::summary)
    }

    /// A deterministic snapshot of everything recorded so far, sorted by
    /// metric name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.add("a", 2);
        r.add("a", 3);
        r.add("b", 1);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 1);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_keep_maximum() {
        let r = MetricsRegistry::new();
        r.gauge_max("depth", 3);
        r.gauge_max("depth", 7);
        r.gauge_max("depth", 5);
        assert_eq!(r.gauge("depth"), 7);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.0).abs() < 1e-12);
        // Median rank 3 is the last of bucket [2,4) -> interpolates to 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 rank 5 lands in the bucket holding 100, clamped to max.
        assert_eq!(h.quantile(0.99), 100);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50, s.p99, s.p999),
            (0, 0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn merge_matches_recording_every_sample() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for v in [0u64, 1, 7, 300] {
            a.record(v);
            whole.record(v);
        }
        for v in [2u64, 2, 9000] {
            b.record(v);
            whole.record(v);
        }
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab, whole);
        // Commutative, and merging an empty histogram is the identity.
        let mut ba = b;
        ba.merge(&a);
        ba.merge(&Histogram::default());
        assert_eq!(ba, whole);
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        // Samples spread evenly over one bucket [4, 8): linear
        // interpolation recovers each rank exactly.
        let mut h = Histogram::default();
        for v in [4u64, 5, 6, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), 4);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(0.75), 6);
        assert_eq!(h.quantile(1.0), 7);
        // A single-value distribution is exact at every quantile whatever
        // bucket it lands in.
        for v in [0u64, 1, 3, 17, 1 << 20] {
            let mut h = Histogram::default();
            for _ in 0..5 {
                h.record(v);
            }
            for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
                assert_eq!(h.quantile(q), v, "value {v} at q {q}");
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        // p50 <= p99 <= p999 on assorted multi-bucket distributions —
        // ranks are monotone in q and the interpolated estimate is
        // monotone in (bucket, rank position).
        let cases: [&[u64]; 4] = [
            &[1, 2, 3, 4, 100],
            &[0, 0, 0, 9],
            &[7; 32],
            &[1, 10, 100, 1000, 10_000, 100_000],
        ];
        for samples in cases {
            let mut h = Histogram::default();
            for &v in samples {
                h.record(v);
            }
            let s = h.summary();
            assert!(
                s.p50 <= s.p99 && s.p99 <= s.p999 && s.p999 <= s.max,
                "{samples:?}: {s:?}"
            );
            assert!(s.min <= s.p50, "{samples:?}: {s:?}");
        }
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let mut h = Histogram::default();
        h.record(5);
        assert_eq!(h.quantile(0.0), 5);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 5);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.add("z", 1);
        r.add("a", 2);
        r.gauge_max("g", 9);
        r.observe("lat", 10);
        r.observe("lat", 20);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a".to_string(), 2), ("z".to_string(), 1)]);
        assert_eq!(s.gauges, vec![("g".to_string(), 9)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].0, "lat");
        assert_eq!(s.histograms[0].1.count, 2);
    }
}
