//! OpenMetrics text exposition for a run's metrics.
//!
//! [`render`] turns a [`MetricsSnapshot`] (plus any telemetry
//! [`Series`]) into the OpenMetrics text format: one `# TYPE`-declared
//! family per metric, families in canonical sorted order, integer sample
//! values, and a final `# EOF` terminator. Counters become `counter`
//! families (`name_total` samples), max-gauges become `gauge` families,
//! and histograms become `summary` families carrying the interpolated
//! quantiles next to `_count`/`_sum`. Series export as gauge families
//! with a `point` label per stored interval, alongside a
//! `_cycles_per_point` gauge giving the current resolution.
//!
//! [`validate`] re-parses an exposition and checks the same canon —
//! sorted unique families, samples that belong to their declared family
//! and type, numeric values, terminator present — so CI can assert any
//! emitted file round-trips. The `metricscheck` bin wraps it.

use crate::registry::MetricsSnapshot;
use crate::series::Series;
use std::fmt::Write as _;

/// Maps an internal metric name (dotted, e.g. `engine.flit_hops`) onto the
/// OpenMetrics name charset `[a-zA-Z_:][a-zA-Z0-9_:]*`, replacing every
/// other character with `_`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c == '_' || c == ':' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders a snapshot (plus named telemetry series) as OpenMetrics text.
/// Purely a function of its inputs: families sort by exposition name, so
/// equal snapshots render byte-identically.
pub fn render(snapshot: &MetricsSnapshot, series: &[(String, Series)]) -> String {
    let mut families: Vec<(String, String)> = Vec::new();

    for (name, value) in &snapshot.counters {
        let f = sanitize(name);
        let mut block = String::new();
        let _ = writeln!(block, "# TYPE {f} counter");
        let _ = writeln!(block, "{f}_total {value}");
        families.push((f, block));
    }

    for (name, value) in &snapshot.gauges {
        let f = sanitize(name);
        let mut block = String::new();
        let _ = writeln!(block, "# TYPE {f} gauge");
        let _ = writeln!(block, "{f} {value}");
        families.push((f, block));
    }

    for (name, s) in &snapshot.histograms {
        let f = sanitize(name);
        let mut block = String::new();
        let _ = writeln!(block, "# TYPE {f} summary");
        let _ = writeln!(
            block,
            "# HELP {f} log2-bucketed histogram, interpolated quantiles"
        );
        let _ = writeln!(block, "{f}{{quantile=\"0.5\"}} {}", s.p50);
        let _ = writeln!(block, "{f}{{quantile=\"0.99\"}} {}", s.p99);
        let _ = writeln!(block, "{f}{{quantile=\"0.999\"}} {}", s.p999);
        let _ = writeln!(block, "{f}_count {}", s.count);
        let _ = writeln!(block, "{f}_sum {}", s.sum);
        families.push((f.clone(), block));
        for (suffix, value) in [("min", s.min), ("max", s.max)] {
            let g = format!("{f}_{suffix}");
            let mut block = String::new();
            let _ = writeln!(block, "# TYPE {g} gauge");
            let _ = writeln!(block, "{g} {value}");
            families.push((g, block));
        }
    }

    for (name, s) in series {
        let f = sanitize(name);
        let mut block = String::new();
        let _ = writeln!(block, "# TYPE {f} gauge");
        let _ = writeln!(
            block,
            "# HELP {f} {} series; window={} cycles, stride={}, samples={}",
            s.kind().name(),
            s.window(),
            s.stride(),
            s.samples(),
        );
        for (i, v) in s.points().iter().enumerate() {
            let _ = writeln!(block, "{f}{{point=\"{i}\"}} {v}");
        }
        families.push((f.clone(), block));
        let g = format!("{f}_cycles_per_point");
        let mut block = String::new();
        let _ = writeln!(block, "# TYPE {g} gauge");
        let _ = writeln!(block, "{g} {}", s.cycles_per_point());
        families.push((g, block));
    }

    families.sort();
    let mut out = String::new();
    for (_, block) in families {
        out.push_str(&block);
    }
    out.push_str("# EOF\n");
    out
}

/// Shape counts from a validated exposition, for smoke checks and the
/// `metricscheck` summary line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpositionStats {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Sample lines across all families.
    pub samples: usize,
    /// Families of type `counter`.
    pub counters: usize,
    /// Families of type `gauge`.
    pub gauges: usize,
    /// Families of type `summary`.
    pub summaries: usize,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c == '_' || c == ':' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_labels(labels: &str) -> bool {
    // `key="value"` pairs, comma-separated; values may not contain
    // quotes, backslashes or newlines (we never emit escapes).
    labels.split(',').all(|pair| {
        let Some((key, rest)) = pair.split_once('=') else {
            return false;
        };
        valid_name(key)
            && rest.len() >= 2
            && rest.starts_with('"')
            && rest.ends_with('"')
            && !rest[1..rest.len() - 1].contains(['"', '\\'])
    })
}

/// Checks an exposition against the canon [`render`] emits. Returns shape
/// counts on success and a line-numbered message on the first violation.
pub fn validate(text: &str) -> Result<ExpositionStats, String> {
    let mut stats = ExpositionStats::default();
    let mut family: Option<(String, &str)> = None;
    let mut family_samples = 0usize;
    let mut saw_eof = false;

    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".to_string());
    }
    for (no, line) in text.lines().enumerate() {
        let at = no + 1;
        if saw_eof {
            return Err(format!("line {at}: content after # EOF"));
        }
        if line == "# EOF" {
            if family.is_some() && family_samples == 0 {
                return Err(format!("line {at}: family declared without samples"));
            }
            saw_eof = true;
            continue;
        }
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let Some((name, kind)) = decl.split_once(' ') else {
                return Err(format!("line {at}: malformed TYPE line"));
            };
            if !valid_name(name) {
                return Err(format!("line {at}: invalid family name {name:?}"));
            }
            if family.is_some() && family_samples == 0 {
                return Err(format!("line {at}: previous family has no samples"));
            }
            if let Some((prev, _)) = &family {
                if name <= prev.as_str() {
                    return Err(format!(
                        "line {at}: family {name:?} not in sorted order after {prev:?}"
                    ));
                }
            }
            let kind = match kind {
                "counter" => {
                    stats.counters += 1;
                    "counter"
                }
                "gauge" => {
                    stats.gauges += 1;
                    "gauge"
                }
                "summary" => {
                    stats.summaries += 1;
                    "summary"
                }
                other => return Err(format!("line {at}: unsupported metric type {other:?}")),
            };
            stats.families += 1;
            family = Some((name.to_string(), kind));
            family_samples = 0;
            continue;
        }
        if let Some(help) = line.strip_prefix("# HELP ") {
            let Some((name, _)) = help.split_once(' ') else {
                return Err(format!("line {at}: malformed HELP line"));
            };
            match &family {
                Some((f, _)) if f == name && family_samples == 0 => continue,
                _ => return Err(format!("line {at}: HELP for {name:?} outside its family")),
            }
        }
        if line.starts_with('#') || line.is_empty() {
            return Err(format!("line {at}: unexpected line {line:?}"));
        }

        // Sample line: `name[{labels}] value`.
        let Some((metric, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {at}: malformed sample line"));
        };
        if value.parse::<u64>().is_err() && value.parse::<f64>().map_or(true, |v| !v.is_finite()) {
            return Err(format!("line {at}: non-numeric sample value {value:?}"));
        }
        let (name, labels) = match metric.split_once('{') {
            Some((name, rest)) => {
                let Some(labels) = rest.strip_suffix('}') else {
                    return Err(format!("line {at}: unterminated label set"));
                };
                if !valid_labels(labels) {
                    return Err(format!("line {at}: malformed labels {labels:?}"));
                }
                (name, Some(labels))
            }
            None => (metric, None),
        };
        if !valid_name(name) {
            return Err(format!("line {at}: invalid metric name {name:?}"));
        }
        let Some((f, kind)) = &family else {
            return Err(format!("line {at}: sample before any TYPE declaration"));
        };
        let belongs = match *kind {
            "counter" => name == format!("{f}_total") && labels.is_none(),
            "gauge" => name == f.as_str(),
            "summary" => {
                (name == f.as_str() && labels.is_some_and(|l| l.starts_with("quantile=")))
                    || (labels.is_none()
                        && (name == format!("{f}_count") || name == format!("{f}_sum")))
            }
            _ => false,
        };
        if !belongs {
            return Err(format!(
                "line {at}: sample {name:?} does not belong to {kind} family {f:?}"
            ));
        }
        family_samples += 1;
        stats.samples += 1;
    }
    if !saw_eof {
        return Err("missing # EOF terminator".to_string());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::series::SeriesKind;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.add("engine.words", 64);
        r.add("engine.retries", 3);
        r.gauge_max("engine.peak_queue_depth", 17);
        r.observe("engine.latency.bulk", 10);
        r.observe("engine.latency.bulk", 20);
        r.snapshot()
    }

    #[test]
    fn render_is_canonical_and_validates() {
        let mut s = Series::new(SeriesKind::Counter, 64, 8);
        s.push(5);
        s.push(7);
        let text = render(
            &sample_snapshot(),
            &[("engine.series.retries".to_string(), s)],
        );
        assert!(text.ends_with("# EOF\n"));
        let stats = validate(&text).expect("exposition validates");
        // counters: words + retries; gauges: peak depth, latency min/max,
        // series points, series resolution; summary: latency histogram.
        assert_eq!(stats.counters, 2);
        assert_eq!(stats.gauges, 5);
        assert_eq!(stats.summaries, 1);
        assert_eq!(stats.families, 8);
        // Families come out name-sorted.
        let types: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .collect();
        let mut sorted = types.clone();
        sorted.sort();
        assert_eq!(types, sorted);
        // Rendering twice is byte-identical.
        let mut s2 = Series::new(SeriesKind::Counter, 64, 8);
        s2.push(5);
        s2.push(7);
        assert_eq!(
            text,
            render(
                &sample_snapshot(),
                &[("engine.series.retries".to_string(), s2)]
            )
        );
    }

    #[test]
    fn empty_snapshot_is_just_the_terminator() {
        let text = render(&MetricsSnapshot::default(), &[]);
        assert_eq!(text, "# EOF\n");
        assert_eq!(validate(&text).unwrap(), ExpositionStats::default());
    }

    #[test]
    fn sanitize_maps_onto_the_metric_charset() {
        assert_eq!(sanitize("engine.flit_hops"), "engine_flit_hops");
        assert_eq!(sanitize("shard-0/queue depth"), "shard_0_queue_depth");
        assert_eq!(sanitize("9lives"), "_lives");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn validate_rejects_broken_expositions() {
        for (text, why) in [
            ("a_total 1\n# EOF\n", "sample before TYPE"),
            (
                "# TYPE b counter\nb_total 1\n# TYPE a counter\na_total 1\n# EOF\n",
                "unsorted",
            ),
            ("# TYPE a counter\na_total 1\n", "missing EOF"),
            (
                "# TYPE a counter\na 1\n# EOF\n",
                "counter sample without _total",
            ),
            ("# TYPE a counter\na_total x\n# EOF\n", "non-numeric value"),
            ("# TYPE a counter\n# EOF\n", "family without samples"),
            ("# TYPE a gauge\na 1\n# EOF\nextra\n", "content after EOF"),
            ("# TYPE a gauge\na{point=\"0} 1\n# EOF\n", "broken labels"),
            (
                "# TYPE a histogram\na_bucket 1\n# EOF\n",
                "unsupported type",
            ),
        ] {
            assert!(validate(text).is_err(), "{why}: {text:?}");
        }
    }
}
