//! Validates a Chrome trace-event JSON file produced by `repro --trace-out`.
//!
//! Usage: `tracecheck [--stats] FILE...`
//!
//! Checks each file for well-formed JSON, a `traceEvents` array,
//! monotonically non-decreasing timestamps per `(pid, tid)` track, balanced
//! `B`/`E` span pairs, and counter samples carrying a numeric `args.value`.
//! Prints a one-line summary per file; with `--stats`, also an event count
//! per track so CI can assert trace *shape*, not just well-formedness.
//! Exits non-zero on the first invalid file. CI runs this against the
//! sweep's trace output.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut stats_flag = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--stats" => stats_flag = true,
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: tracecheck [--stats] FILE...");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("tracecheck: {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        match memcomm_obs::chrome::validate(&text) {
            Ok(stats) => {
                println!(
                    "tracecheck: {path}: ok — {} events, {} spans, {} instants, {} counters, {} tracks, depth {}",
                    stats.events, stats.spans, stats.instants, stats.counters, stats.tracks,
                    stats.max_depth
                );
                if stats_flag {
                    let per_track: Vec<String> = stats
                        .per_track
                        .iter()
                        .map(|(track, count)| format!("{track}={count}"))
                        .collect();
                    println!("tracecheck: {path}: tracks {}", per_track.join(" "));
                }
            }
            Err(error) => {
                eprintln!("tracecheck: {path}: INVALID — {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
