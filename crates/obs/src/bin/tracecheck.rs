//! Validates a Chrome trace-event JSON file produced by `repro --trace-out`.
//!
//! Usage: `tracecheck FILE...`
//!
//! Checks each file for well-formed JSON, a `traceEvents` array,
//! monotonically non-decreasing timestamps per `(pid, tid)` track and
//! balanced `B`/`E` span pairs. Prints a one-line summary per file; exits
//! non-zero on the first invalid file. CI runs this against the sweep's
//! trace output.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: tracecheck FILE...");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("tracecheck: {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        match memcomm_obs::chrome::validate(&text) {
            Ok(stats) => {
                println!(
                    "tracecheck: {path}: ok — {} events, {} spans, {} tracks, depth {}",
                    stats.events, stats.spans, stats.tracks, stats.max_depth
                );
            }
            Err(error) => {
                eprintln!("tracecheck: {path}: INVALID — {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
