//! Validates an OpenMetrics text exposition produced by `repro --metrics-out`.
//!
//! Usage: `metricscheck FILE...`
//!
//! Checks each file against the canon `obs::openmetrics::render` emits:
//! name-sorted unique `# TYPE` families, samples that belong to their
//! declared family and type, numeric values, and the `# EOF` terminator.
//! Prints a one-line summary per file; exits non-zero on the first invalid
//! file. CI runs this against the adversary scenario's metrics output.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: metricscheck FILE...");
        return ExitCode::from(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("metricscheck: {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        match memcomm_obs::openmetrics::validate(&text) {
            Ok(stats) => {
                println!(
                    "metricscheck: {path}: ok — {} families ({} counters, {} gauges, {} summaries), {} samples",
                    stats.families, stats.counters, stats.gauges, stats.summaries, stats.samples
                );
            }
            Err(error) => {
                eprintln!("metricscheck: {path}: INVALID — {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
