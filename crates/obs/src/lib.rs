//! # memcomm-obs — per-run observability for the simulator stack
//!
//! Zero-dependency (beyond `memcomm-util`) observability: cycle-accurate
//! spans, a per-run [`MetricsRegistry`] and exporters to Chrome
//! `trace_event` JSON ([`chrome`]) and a deterministic text flamegraph
//! ([`flame`]).
//!
//! ## The `Obs` handle
//!
//! Everything hangs off an [`Obs`] handle. A *disabled* handle (the
//! default) is a `None` — every recording call is a single branch, no
//! locks, no allocation, so instrumented simulators cost nothing when
//! nobody is watching. An *enabled* handle owns one run's registry and
//! (optionally) a trace sink behind an `Arc`, so clones are cheap and every
//! component of a co-simulation records into the same run.
//!
//! Handles travel two ways:
//!
//! * **explicitly** — components capture `Obs::current()` at construction
//!   (links, NIC FIFOs) and record through the captured handle;
//! * **implicitly** — [`Obs::install`] puts a handle into thread-local
//!   storage, and a propagator hook registered with
//!   [`memcomm_util::par::set_propagator`] re-installs it inside every
//!   `par_map` worker, so parallel sweep workers inherit the run's handle
//!   without any plumbing through the fan-out machinery.
//!
//! ## Determinism contract
//!
//! Recording never feeds back into simulation state or clocks, so an
//! enabled handle cannot change any simulated result ("zero observational
//! interference"). Registry totals are additive and therefore identical
//! across worker counts; trace *files* are canonically sorted by the
//! exporter but span sets may differ across worker counts only in process
//! id assignment order, never in content per point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod flame;
pub mod openmetrics;
pub mod registry;
pub mod series;
pub mod span;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

pub use registry::{Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use series::{Series, SeriesKind};
pub use span::{TraceEvent, TraceSink};

#[derive(Debug)]
struct ObsInner {
    registry: MetricsRegistry,
    trace: Option<TraceSink>,
    next_pid: AtomicU64,
    labels: Mutex<BTreeMap<u64, String>>,
}

/// A cheap, cloneable handle on one run's observability state (or on
/// nothing at all — the disabled handle). See the crate docs.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

thread_local! {
    static CURRENT: RefCell<Obs> = RefCell::new(Obs::disabled());
    static CURRENT_PID: Cell<u64> = const { Cell::new(0) };
}

fn current_pid() -> u64 {
    CURRENT_PID.with(Cell::get)
}

impl Obs {
    /// The disabled handle: every recording call is a no-op branch.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// Creates an enabled handle with a fresh registry, plus a trace sink
    /// when `trace` is true. Also registers the cross-thread propagator so
    /// installed handles survive `par_map` fan-out.
    pub fn new(trace: bool) -> Obs {
        ensure_propagator();
        Obs {
            inner: Some(Arc::new(ObsInner {
                registry: MetricsRegistry::new(),
                trace: if trace { Some(TraceSink::new()) } else { None },
                next_pid: AtomicU64::new(1),
                labels: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this handle carries a trace sink (spans get recorded).
    /// Hot paths check this before building span names.
    pub fn tracing(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.trace.is_some())
    }

    /// The handle installed on the current thread (disabled when none is).
    pub fn current() -> Obs {
        CURRENT.with(|c| c.borrow().clone())
    }

    /// Installs this handle on the current thread until the guard drops,
    /// resetting the point scope. Nested installs restore the previous
    /// handle on drop.
    pub fn install(&self) -> InstallGuard {
        let previous = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), self.clone()));
        let previous_pid = CURRENT_PID.with(|p| p.replace(0));
        InstallGuard {
            previous: Some(previous),
            previous_pid,
        }
    }

    /// Opens a per-point scope: allocates a fresh trace process id labelled
    /// `label` and makes it the current point until the guard drops. On a
    /// disabled handle this is a no-op.
    pub fn point_scope(&self, label: &str) -> PointGuard {
        match &self.inner {
            None => PointGuard { previous: None },
            Some(inner) => {
                let pid = inner.next_pid.fetch_add(1, Ordering::Relaxed);
                inner
                    .labels
                    .lock()
                    .expect("obs labels poisoned")
                    .insert(pid, label.to_string());
                let previous = CURRENT_PID.with(|p| p.replace(pid));
                PointGuard {
                    previous: Some(previous),
                }
            }
        }
    }

    /// Adds `delta` to the run counter `name`.
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.add(name, delta);
        }
    }

    /// Records one sample into the run histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(name, value);
        }
    }

    /// Folds a pre-aggregated histogram into the run histogram `name` —
    /// the bulk form of [`Obs::observe`] for workers that accumulate
    /// locally and merge once at the end.
    pub fn merge_histogram(&self, name: &str, other: &Histogram) {
        if let Some(inner) = &self.inner {
            inner.registry.merge_histogram(name, other);
        }
    }

    /// Raises the max-tracking gauge `name` to `value`.
    pub fn gauge_max(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_max(name, value);
        }
    }

    /// Reads the run counter `name` (0 when disabled or absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.registry.counter(name))
    }

    /// Reads the max-tracking gauge `name` (0 when disabled or absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.registry.gauge(name))
    }

    /// The summary of run histogram `name`, when enabled and recorded.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.inner.as_ref().and_then(|i| i.registry.histogram(name))
    }

    /// A deterministic snapshot of the run's metrics (None when disabled).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.registry.snapshot())
    }

    /// Records a complete span `[start, end]` (cycles) on `track` under the
    /// current point's process id. No-op unless [`tracing`](Obs::tracing).
    pub fn span(&self, track: &'static str, name: &str, start: u64, end: u64) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.trace {
                sink.span(current_pid(), track, name.to_string(), start, end);
            }
        }
    }

    /// Like [`span`](Obs::span) but under an explicit process id captured
    /// earlier with [`pid`](Obs::pid) — for components that outlive the
    /// point scope they were constructed in.
    pub fn span_at(&self, pid: u64, track: &'static str, name: &str, start: u64, end: u64) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.trace {
                sink.span(pid, track, name.to_string(), start, end);
            }
        }
    }

    /// Records an instant event at `ts` cycles on `track` under the current
    /// point's process id. No-op unless [`tracing`](Obs::tracing).
    pub fn instant(&self, track: &'static str, name: &str, ts: u64) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.trace {
                sink.instant(current_pid(), track, name.to_string(), ts);
            }
        }
    }

    /// Records a counter sample — the value of series `name` at cycle `ts`
    /// on `track` — under the current point's process id. Renders as a
    /// Chrome `ph: "C"` series. No-op unless [`tracing`](Obs::tracing).
    pub fn trace_counter(&self, track: &'static str, name: &str, ts: u64, value: u64) {
        if let Some(inner) = &self.inner {
            if let Some(sink) = &inner.trace {
                sink.counter(current_pid(), track, name.to_string(), ts, value);
            }
        }
    }

    /// The current point's trace process id (0 outside any point scope).
    pub fn pid(&self) -> u64 {
        current_pid()
    }

    /// Events dropped by the trace sink's buffer cap (0 when not tracing).
    pub fn trace_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.trace.as_ref())
            .map_or(0, TraceSink::dropped)
    }

    /// Number of buffered trace events (0 when not tracing).
    pub fn trace_len(&self) -> usize {
        self.inner
            .as_ref()
            .and_then(|i| i.trace.as_ref())
            .map_or(0, TraceSink::len)
    }

    /// Renders the run's trace as a Chrome trace-event JSON document.
    /// `None` when this handle never traced.
    pub fn chrome_trace(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let sink = inner.trace.as_ref()?;
        let labels = inner.labels.lock().expect("obs labels poisoned").clone();
        Some(chrome::render(&sink.events(), &labels))
    }

    /// Renders the run's trace as a deterministic text flamegraph.
    /// `None` when this handle never traced.
    pub fn flamegraph(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let sink = inner.trace.as_ref()?;
        Some(flame::render(&sink.events()))
    }
}

/// Restores the previously installed handle (and point scope) on drop.
#[derive(Debug)]
pub struct InstallGuard {
    previous: Option<Obs>,
    previous_pid: u64,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            CURRENT.with(|c| *c.borrow_mut() = previous);
        }
        CURRENT_PID.with(|p| p.set(self.previous_pid));
    }
}

/// Restores the previous point scope on drop.
#[derive(Debug)]
pub struct PointGuard {
    previous: Option<u64>,
}

impl Drop for PointGuard {
    fn drop(&mut self) {
        if let Some(previous) = self.previous {
            CURRENT_PID.with(|p| p.set(previous));
        }
    }
}

struct ObsCarrier(Obs);

impl memcomm_util::par::CrossThread for ObsCarrier {
    fn install(&self) -> Box<dyn std::any::Any> {
        Box::new(self.0.install())
    }
}

fn capture_current() -> Option<Box<dyn memcomm_util::par::CrossThread>> {
    let current = Obs::current();
    current
        .is_enabled()
        .then(|| Box::new(ObsCarrier(current)) as Box<dyn memcomm_util::par::CrossThread>)
}

fn ensure_propagator() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| memcomm_util::par::set_propagator(capture_current));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert!(!obs.tracing());
        obs.count("x", 1);
        obs.observe("h", 5);
        obs.span("t", "s", 0, 10);
        assert_eq!(obs.counter("x"), 0);
        assert!(obs.histogram("h").is_none());
        assert!(obs.metrics_snapshot().is_none());
        assert!(obs.chrome_trace().is_none());
        assert!(obs.flamegraph().is_none());
        let _scope = obs.point_scope("noop");
        assert_eq!(current_pid(), 0);
    }

    #[test]
    fn registry_only_handle_counts_but_does_not_trace() {
        let obs = Obs::new(false);
        assert!(obs.is_enabled());
        assert!(!obs.tracing());
        obs.count("faults.injected", 2);
        obs.count("faults.injected", 1);
        obs.observe("lat", 8);
        assert_eq!(obs.counter("faults.injected"), 3);
        assert_eq!(obs.histogram("lat").expect("recorded").count, 1);
        obs.span("t", "s", 0, 10);
        assert_eq!(obs.trace_len(), 0);
        assert!(obs.chrome_trace().is_none());
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let outer = Obs::new(false);
        {
            let _g = outer.install();
            outer.count("seen", 1);
            assert_eq!(Obs::current().counter("seen"), 1);
            let inner = Obs::new(false);
            {
                let _g2 = inner.install();
                Obs::current().count("seen", 10);
            }
            assert_eq!(Obs::current().counter("seen"), 1, "outer restored");
            assert_eq!(inner.counter("seen"), 10);
        }
        assert!(!Obs::current().is_enabled(), "disabled after last guard");
    }

    #[test]
    fn point_scopes_tag_spans_with_fresh_pids() {
        let obs = Obs::new(true);
        let _g = obs.install();
        {
            let _p = obs.point_scope("first point");
            obs.span("scenario", "a", 0, 5);
            assert_ne!(obs.pid(), 0);
        }
        {
            let _p = obs.point_scope("second point");
            obs.span("scenario", "b", 0, 7);
        }
        assert_eq!(obs.pid(), 0, "scope restored");
        let events = match &obs.inner {
            Some(inner) => inner.trace.as_ref().expect("tracing").events(),
            None => unreachable!(),
        };
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].pid, events[1].pid);
        let trace = obs.chrome_trace().expect("tracing");
        let stats = chrome::validate(&trace).expect("valid trace");
        assert_eq!(stats.spans, 2);
        assert!(trace.contains("first point"));
        assert!(trace.contains("second point"));
    }

    #[test]
    fn par_map_workers_inherit_the_installed_handle() {
        let obs = Obs::new(false);
        let _g = obs.install();
        let items: Vec<u64> = (0..64).collect();
        let results = memcomm_util::par::par_map(4, &items, |&x| {
            Obs::current().count("worker.items", 1);
            x
        });
        assert_eq!(results.len(), 64);
        assert_eq!(obs.counter("worker.items"), 64);
    }

    #[test]
    fn flamegraph_renders_spans() {
        let obs = Obs::new(true);
        let _g = obs.install();
        obs.span("phase.pack", "pack", 0, 100);
        obs.span("phase.pack", "pack", 100, 150);
        let flame = obs.flamegraph().expect("tracing");
        assert!(flame.contains("phase.pack;pack 150"), "{flame}");
    }
}
