//! Chrome `trace_event` JSON export and structural validation.
//!
//! The exporter turns a [`TraceSink`](crate::span::TraceSink)'s events into
//! the JSON object format consumed by Perfetto and `about://tracing`:
//! `B`/`E` duration pairs plus `i` instants and `C` counter samples,
//! grouped into one process per measured point and one thread per track,
//! with `M` metadata events naming both. Timestamps are simulated
//! **cycles** used directly as `ts` values.
//!
//! Output is deterministic for a fixed event set: events are re-ordered by
//! a canonical sort (per track: by start cycle, longer spans first), and a
//! per-track sweep guarantees the two structural invariants the validator
//! checks — non-decreasing `ts` per `(pid, tid)` and balanced, properly
//! nested `B`/`E` pairs. A child span that leaks past its parent's end is
//! clamped to the parent (pipelined stages live on separate tracks exactly
//! so this never loses real information).

use std::collections::BTreeMap;

use memcomm_util::json::Json;

use crate::span::TraceEvent;

/// Renders events as a Chrome trace JSON document (string form, trailing
/// newline).
pub fn render(events: &[TraceEvent], labels: &BTreeMap<u64, String>) -> String {
    export(events, labels).render()
}

/// Builds the Chrome trace JSON value for a set of recorded events.
pub fn export(events: &[TraceEvent], labels: &BTreeMap<u64, String>) -> Json {
    let mut by_pid: BTreeMap<u64, BTreeMap<&'static str, Vec<&TraceEvent>>> = BTreeMap::new();
    for event in events {
        by_pid
            .entry(event.pid)
            .or_default()
            .entry(event.track)
            .or_default()
            .push(event);
    }
    let mut out: Vec<Json> = Vec::new();
    for (&pid, tracks) in &by_pid {
        let label = labels.get(&pid).map_or("run", String::as_str);
        out.push(Json::obj([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::from(pid)),
            ("args", Json::obj([("name", Json::str(label))])),
        ]));
        for (index, (&track, track_events)) in tracks.iter().enumerate() {
            let tid = index as u64 + 1;
            out.push(Json::obj([
                ("name", Json::str("thread_name")),
                ("ph", Json::str("M")),
                ("pid", Json::from(pid)),
                ("tid", Json::from(tid)),
                ("args", Json::obj([("name", Json::str(track))])),
            ]));
            emit_track(&mut out, pid, tid, track_events);
        }
    }
    Json::obj([
        ("displayTimeUnit", Json::str("ms")),
        ("traceEvents", Json::Arr(out)),
    ])
}

fn phase_event(ph: &str, event: &TraceEvent, ts: u64, pid: u64, tid: u64) -> Json {
    let mut pairs = vec![
        ("name", Json::str(&event.name)),
        ("cat", Json::str(event.track)),
        ("ph", Json::str(ph)),
        ("ts", Json::from(ts)),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
    ];
    if ph == "i" {
        pairs.push(("s", Json::str("t")));
    }
    if ph == "C" {
        let value = event.value.unwrap_or(0);
        pairs.push(("args", Json::obj([("value", Json::from(value))])));
    }
    Json::obj(pairs)
}

/// Emits one track's events with non-decreasing `ts` and balanced `B`/`E`
/// nesting: spans are sorted `(start asc, end desc)`, then swept with an
/// explicit open-span stack, interleaving instants and closing each span no
/// later than its enclosing parent.
fn emit_track(out: &mut Vec<Json>, pid: u64, tid: u64, events: &[&TraceEvent]) {
    let mut spans: Vec<(u64, u64, usize)> = Vec::new();
    let mut instants: Vec<(u64, usize)> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        match event.dur {
            Some(dur) => spans.push((event.ts, event.ts.saturating_add(dur), i)),
            None => instants.push((event.ts, i)),
        }
    }
    spans.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(b.1.cmp(&a.1))
            .then(events[a.2].name.cmp(&events[b.2].name))
            .then(a.2.cmp(&b.2))
    });
    instants.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(events[a.1].name.cmp(&events[b.1].name))
            .then(a.1.cmp(&b.1))
    });

    // Open spans, bottom-to-top; ends are non-increasing toward the top
    // because children are clamped to their parents.
    let mut open: Vec<(u64, usize)> = Vec::new();
    let mut next_instant = 0usize;

    // Emits, in timestamp order, every pending instant and span close due
    // at or before `up_to`.
    macro_rules! flush {
        ($up_to:expr) => {
            loop {
                let close = open.last().map(|&(end, _)| end);
                let instant = instants.get(next_instant).map(|&(ts, _)| ts);
                let take_instant = match (instant, close) {
                    (Some(ts), Some(end)) => ts <= $up_to && ts <= end,
                    (Some(ts), None) => ts <= $up_to,
                    _ => false,
                };
                if take_instant {
                    let (ts, i) = instants[next_instant];
                    next_instant += 1;
                    let ph = if events[i].value.is_some() { "C" } else { "i" };
                    out.push(phase_event(ph, events[i], ts, pid, tid));
                    continue;
                }
                match close {
                    Some(end) if end <= $up_to => {
                        let (end, i) = open.pop().expect("open span checked above");
                        out.push(phase_event("E", events[i], end, pid, tid));
                    }
                    _ => break,
                }
            }
        };
    }

    for &(start, end, i) in &spans {
        flush!(start);
        let end = open
            .last()
            .map_or(end, |&(parent_end, _)| end.min(parent_end));
        out.push(phase_event("B", events[i], start, pid, tid));
        open.push((end, i));
    }
    flush!(u64::MAX);
}

/// Summary statistics of a validated trace file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events including metadata.
    pub events: usize,
    /// `B`/`E` span pairs.
    pub spans: usize,
    /// `i` instant events.
    pub instants: usize,
    /// `C` counter samples.
    pub counters: usize,
    /// Distinct `(pid, tid)` tracks carrying events.
    pub tracks: usize,
    /// Deepest `B` nesting observed on any track.
    pub max_depth: usize,
    /// Event counts per track name (the event's `cat` field, falling back
    /// to `pid.tid`), sorted — for `tracecheck --stats`.
    pub per_track: TrackCounts,
}

/// Per-track event counts, keyed by track name.
pub type TrackCounts = BTreeMap<String, usize>;

/// Validates the structure of a Chrome trace JSON document: well-formed
/// JSON with a `traceEvents` array, monotonically non-decreasing `ts` per
/// `(pid, tid)` track, balanced `B`/`E` pairs with matching names, and
/// counter (`C`) samples carrying a numeric `args.value`.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate(text: &str) -> Result<TraceStats, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    let mut tracks: BTreeMap<(i64, i64), (f64, Vec<String>)> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        let pid = event
            .get("pid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing pid"))? as i64;
        let tid = event
            .get("tid")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing tid"))? as i64;
        let ts = event
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or(format!("event {i}: missing ts"))?;
        let (last_ts, stack) = tracks
            .entry((pid, tid))
            .or_insert((f64::NEG_INFINITY, Vec::new()));
        if ts < *last_ts {
            return Err(format!(
                "event {i} ({name:?}): ts {ts} goes backwards on pid {pid} tid {tid} (last {last_ts})"
            ));
        }
        *last_ts = ts;
        let track = event
            .get("cat")
            .and_then(Json::as_str)
            .map_or_else(|| format!("{pid}.{tid}"), str::to_string);
        *stats.per_track.entry(track).or_insert(0) += 1;
        match ph {
            "B" => {
                stack.push(name.to_string());
                stats.max_depth = stats.max_depth.max(stack.len());
            }
            "E" => match stack.pop() {
                Some(opened) if opened == name => stats.spans += 1,
                Some(opened) => {
                    return Err(format!(
                        "event {i}: E {name:?} closes B {opened:?} on pid {pid} tid {tid}"
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i}: E {name:?} with no open span on pid {pid} tid {tid}"
                    ))
                }
            },
            "i" => stats.instants += 1,
            "C" => {
                let numeric = event
                    .get("args")
                    .and_then(|args| args.get("value"))
                    .and_then(Json::as_f64)
                    .is_some();
                if !numeric {
                    return Err(format!(
                        "event {i} ({name:?}): counter without numeric args.value"
                    ));
                }
                stats.counters += 1;
            }
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    for ((pid, tid), (_, stack)) in &tracks {
        if let Some(name) = stack.last() {
            return Err(format!(
                "unbalanced trace: span {name:?} never closed on pid {pid} tid {tid}"
            ));
        }
    }
    stats.tracks = tracks.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(pid: u64, track: &'static str, name: &str, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            pid,
            track,
            name: name.to_string(),
            ts: start,
            dur: Some(end - start),
            value: None,
        }
    }

    fn instant(pid: u64, track: &'static str, name: &str, ts: u64) -> TraceEvent {
        TraceEvent {
            pid,
            track,
            name: name.to_string(),
            ts,
            dur: None,
            value: None,
        }
    }

    fn counter(pid: u64, track: &'static str, name: &str, ts: u64, value: u64) -> TraceEvent {
        TraceEvent {
            pid,
            track,
            name: name.to_string(),
            ts,
            dur: None,
            value: Some(value),
        }
    }

    #[test]
    fn export_round_trips_through_validate() {
        let events = vec![
            span(1, "scenario", "outer", 0, 100),
            span(1, "scenario", "inner", 10, 40),
            span(1, "scenario", "later", 50, 90),
            instant(1, "scenario", "retry", 60),
            span(2, "link", "busy", 5, 25),
        ];
        let mut labels = BTreeMap::new();
        labels.insert(1u64, "point one".to_string());
        let text = render(&events, &labels);
        let stats = validate(&text).expect("exported trace must validate");
        assert_eq!(stats.spans, 4);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.tracks, 2);
        assert_eq!(stats.max_depth, 2);
        assert_eq!(stats.per_track.get("scenario"), Some(&7));
        assert_eq!(stats.per_track.get("link"), Some(&2));
    }

    #[test]
    fn counter_samples_round_trip() {
        let events = vec![
            span(1, "engine", "window", 0, 100),
            counter(1, "engine.queue", "depth", 10, 4),
            counter(1, "engine.queue", "depth", 20, 7),
            counter(1, "engine.queue", "depth", 30, 2),
        ];
        let text = render(&events, &BTreeMap::new());
        assert!(text.contains("\"ph\": \"C\""), "{text}");
        let stats = validate(&text).expect("counter trace must validate");
        assert_eq!(stats.counters, 3);
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.per_track.get("engine.queue"), Some(&3));
    }

    #[test]
    fn partial_overlap_is_clamped_not_unbalanced() {
        // b starts inside a but would end after it; the exporter clamps b
        // so the B/E structure stays nested.
        let events = vec![span(1, "t", "a", 0, 50), span(1, "t", "b", 25, 80)];
        let text = render(&events, &BTreeMap::new());
        let stats = validate(&text).expect("clamped trace must validate");
        assert_eq!(stats.spans, 2);
    }

    #[test]
    fn zero_length_spans_validate() {
        let events = vec![span(1, "t", "empty", 10, 10), span(1, "t", "next", 10, 20)];
        let text = render(&events, &BTreeMap::new());
        validate(&text).expect("zero-length spans must stay balanced");
    }

    #[test]
    fn validator_rejects_backwards_time_and_unbalanced_spans() {
        let backwards = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 10, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 5, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate(backwards).unwrap_err().contains("backwards"));
        let unbalanced = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 10, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate(unbalanced).unwrap_err().contains("never closed"));
        let mismatched = r#"{"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 2, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate(mismatched).unwrap_err().contains("closes"));
        let bare_counter = r#"{"traceEvents": [
            {"name": "depth", "ph": "C", "ts": 1, "pid": 1, "tid": 1}
        ]}"#;
        assert!(validate(bare_counter).unwrap_err().contains("args.value"));
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
    }

    #[test]
    fn deterministic_output_regardless_of_recording_order() {
        let a = vec![span(1, "t", "x", 0, 10), span(1, "t", "y", 20, 30)];
        let b = vec![span(1, "t", "y", 20, 30), span(1, "t", "x", 0, 10)];
        assert_eq!(render(&a, &BTreeMap::new()), render(&b, &BTreeMap::new()));
    }
}
