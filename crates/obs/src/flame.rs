//! Deterministic text flamegraph.
//!
//! Aggregates recorded spans into folded-stack lines
//! (`track;name cycles`), the input format of the classic `flamegraph.pl`
//! tool, preceded by a `#` comment header. Output is fully deterministic:
//! lines are sorted by total cycles descending, then by key, so two runs of
//! the same workload produce byte-identical profiles whatever order the
//! workers recorded in.

use std::collections::BTreeMap;

use crate::span::TraceEvent;

/// One aggregated frame key: `(track, span name)`.
type FrameKey<'a> = (&'a str, &'a str);
/// Aggregated totals for one frame: `(total cycles, span count)`.
type FrameTotals = (u64, u64);

/// Renders the folded-stack profile for a set of recorded events.
/// Instants are ignored; spans are aggregated across process ids by
/// `(track, name)`.
pub fn render(events: &[TraceEvent]) -> String {
    let mut totals: BTreeMap<FrameKey, FrameTotals> = BTreeMap::new();
    let mut span_count = 0u64;
    let mut total_cycles = 0u64;
    for event in events {
        if let Some(dur) = event.dur {
            let entry = totals
                .entry((event.track, event.name.as_str()))
                .or_insert((0, 0));
            entry.0 = entry.0.saturating_add(dur);
            entry.1 += 1;
            span_count += 1;
            total_cycles = total_cycles.saturating_add(dur);
        }
    }
    let mut lines: Vec<(FrameKey, FrameTotals)> = totals.into_iter().collect();
    lines.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
    let mut out = String::new();
    out.push_str(&format!(
        "# memcomm profile: {span_count} spans, {} distinct frames, {total_cycles} span-cycles\n",
        lines.len()
    ));
    out.push_str("# format: track;name total_cycles (count, share of span-cycles)\n");
    for ((track, name), (cycles, count)) in &lines {
        let share = if total_cycles == 0 {
            0.0
        } else {
            100.0 * *cycles as f64 / total_cycles as f64
        };
        out.push_str(&format!(
            "{track};{name} {cycles} # ({count} spans, {share:.1}%)\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: &'static str, name: &str, dur: u64) -> TraceEvent {
        TraceEvent {
            pid: 1,
            track,
            name: name.to_string(),
            ts: 0,
            dur: Some(dur),
            value: None,
        }
    }

    #[test]
    fn aggregates_and_sorts_by_cycles() {
        let events = vec![
            span("a", "x", 10),
            span("a", "x", 15),
            span("b", "y", 100),
            TraceEvent {
                pid: 1,
                track: "a",
                name: "instant".to_string(),
                ts: 5,
                dur: None,
                value: None,
            },
        ];
        let text = render(&events);
        let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("b;y 100"), "biggest first: {text}");
        assert!(lines[1].starts_with("a;x 25"), "aggregated: {text}");
        assert!(!text.contains("instant"));
    }

    #[test]
    fn empty_profile_renders_header_only() {
        let text = render(&[]);
        assert!(text.starts_with("# memcomm profile: 0 spans"));
        assert_eq!(text.lines().count(), 2);
    }
}
