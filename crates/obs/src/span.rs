//! Cycle-stamped span and instant collection.
//!
//! A [`TraceSink`] accumulates *complete* spans (`[start, end]` in simulated
//! cycles) and instant events, each tagged with a process id (one per
//! measured point) and a track name (one per engine / link / protocol
//! lane). Recording never touches the simulation clocks: spans are written
//! after the fact from timestamps the simulator computed anyway, so tracing
//! cannot perturb what it observes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hard cap on buffered events; recording beyond it increments a drop
/// counter instead of growing without bound.
pub const MAX_EVENTS: usize = 1 << 20;

/// One recorded event: a complete span (`dur = Some`), a counter sample
/// (`value = Some`) or an instant (both `None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Process id — one per measured point (0 = the run itself).
    pub pid: u64,
    /// Track (thread lane) the event belongs to, e.g. `"phase.pack"`.
    pub track: &'static str,
    /// Event name shown in the viewer.
    pub name: String,
    /// Start cycle.
    pub ts: u64,
    /// Span length in cycles, or `None` for an instant or counter event.
    pub dur: Option<u64>,
    /// Sampled counter value, or `None` for spans and instants. A counter
    /// event renders as a Chrome `ph: "C"` series point.
    pub value: Option<u64>,
}

/// Thread-safe event buffer for one run.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Records a complete span. `end` is clamped to `start` so malformed
    /// instrumentation can never produce negative durations.
    pub fn span(&self, pid: u64, track: &'static str, name: String, start: u64, end: u64) {
        self.push(TraceEvent {
            pid,
            track,
            name,
            ts: start,
            dur: Some(end.max(start) - start),
            value: None,
        });
    }

    /// Records an instant event.
    pub fn instant(&self, pid: u64, track: &'static str, name: String, ts: u64) {
        self.push(TraceEvent {
            pid,
            track,
            name,
            ts,
            dur: None,
            value: None,
        });
    }

    /// Records a counter sample: the value of series `name` at cycle `ts`.
    pub fn counter(&self, pid: u64, track: &'static str, name: String, ts: u64, value: u64) {
        self.push(TraceEvent {
            pid,
            track,
            name,
            ts,
            dur: None,
            value: Some(value),
        });
    }

    fn push(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("trace sink poisoned");
        if events.len() >= MAX_EVENTS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            events.push(event);
        }
    }

    /// Events dropped because the buffer hit [`MAX_EVENTS`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all buffered events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_instants_and_counters() {
        let sink = TraceSink::new();
        sink.span(1, "t", "a".to_string(), 10, 20);
        sink.instant(1, "t", "b".to_string(), 15);
        sink.counter(1, "t", "depth".to_string(), 16, 42);
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].dur, Some(10));
        assert_eq!((events[1].dur, events[1].value), (None, None));
        assert_eq!((events[2].dur, events[2].value), (None, Some(42)));
        assert!(!sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn negative_duration_clamps_to_zero() {
        let sink = TraceSink::new();
        sink.span(0, "t", "x".to_string(), 20, 10);
        assert_eq!(sink.events()[0].dur, Some(0));
    }
}
