//! Process-wide memoization of basic-transfer measurements.
//!
//! Every experiment, calibration report and test that needs a basic-transfer
//! rate funnels through [`microbench::measure_basic`](crate::microbench::measure_basic),
//! and identical `(machine, transfer, words)` points recur across Tables
//! 1–3, the calibration report, the rate tables behind Section 5 and the
//! test tier. This cache makes each distinct point simulate exactly once
//! per process.
//!
//! Keys include a fingerprint of the *entire* machine configuration (hashed
//! from its `Debug` rendering), so mutated machines — the ablation studies
//! flip individual component parameters — never collide with the stock
//! configurations.
//!
//! The cache is thread-safe and lock-light: lookups take the lock briefly
//! and simulations run outside it, so parallel sweep workers never serialize
//! on each other. Two workers racing on the same missing key may both
//! simulate it; the simulator is deterministic, so both compute the same
//! value and either insert wins.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use memcomm_memsim::{Measurement, SimResult};
use memcomm_model::BasicTransfer;

use crate::Machine;

type Key = (u64, BasicTransfer, u64);
type Cached = SimResult<Option<Measurement>>;

static CACHE: OnceLock<Mutex<HashMap<Key, Cached>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<HashMap<Key, Cached>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// FNV-1a over the machine's complete `Debug` rendering. Every calibrated
/// parameter shows up in the rendering, so any mutation changes the
/// fingerprint.
pub fn machine_fingerprint(machine: &Machine) -> u64 {
    let text = format!("{machine:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A snapshot of the cache's hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// Distinct `(machine, transfer, words)` points currently stored.
    pub entries: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas since an earlier snapshot (entries reports the
    /// current absolute count).
    pub fn since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.wrapping_sub(earlier.hits),
            misses: self.misses.wrapping_sub(earlier.misses),
            entries: self.entries,
        }
    }
}

/// Reads the current cache statistics.
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries: cache().lock().expect("memo cache poisoned").len() as u64,
    }
}

/// Clears the cache and its counters (used by the serial-vs-parallel
/// equivalence tests to force both runs to simulate from scratch).
pub fn reset() {
    cache().lock().expect("memo cache poisoned").clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Looks up a measurement point, simulating it with `simulate` on a miss.
/// `None` results (transfers the machine does not offer) and errors are
/// cached too — re-deciding that a T3D has no DMA, or that a point fails
/// deterministically, costs a lookup, not a simulation.
pub fn cached(
    machine: &Machine,
    transfer: BasicTransfer,
    words: u64,
    simulate: impl FnOnce() -> Cached,
) -> Cached {
    let key = (machine_fingerprint(machine), transfer, words);
    if let Some(found) = cache().lock().expect("memo cache poisoned").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return found.clone();
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let value = simulate();
    cache()
        .lock()
        .expect("memo cache poisoned")
        .entry(key)
        .or_insert_with(|| value.clone());
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits() {
        let m = Machine::t3d();
        let t = BasicTransfer::parse("1C1").unwrap();
        let before = stats();
        let a = crate::microbench::measure_basic(&m, t, 777).unwrap();
        let b = crate::microbench::measure_basic(&m, t, 777).unwrap();
        assert_eq!(a, b);
        let delta = stats().since(before);
        assert!(delta.hits >= 1, "second lookup must hit: {delta:?}");
    }

    #[test]
    fn mutated_machines_do_not_collide() {
        let stock = Machine::t3d();
        let mut ablated = Machine::t3d();
        ablated.node.path.readahead.enabled = false;
        assert_ne!(
            machine_fingerprint(&stock),
            machine_fingerprint(&ablated),
            "ablation must change the fingerprint"
        );
        let t = BasicTransfer::parse("1C0").unwrap();
        let on = crate::microbench::measure_basic(&stock, t, 2048)
            .unwrap()
            .unwrap();
        let off = crate::microbench::measure_basic(&ablated, t, 2048)
            .unwrap()
            .unwrap();
        assert_ne!(on.cycles, off.cycles, "read-ahead ablation must show");
    }

    #[test]
    fn none_results_are_cached() {
        let t3d = Machine::t3d();
        let dma = BasicTransfer::parse("1F0").unwrap();
        assert!(crate::microbench::measure_basic(&t3d, dma, 555)
            .unwrap()
            .is_none());
        let before = stats();
        assert!(crate::microbench::measure_basic(&t3d, dma, 555)
            .unwrap()
            .is_none());
        assert!(stats().since(before).hits >= 1);
    }

    #[test]
    fn hit_rate_is_a_fraction() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        let empty = CacheStats {
            hits: 0,
            misses: 0,
            entries: 0,
        };
        assert_eq!(empty.hit_rate(), 0.0);
    }
}
