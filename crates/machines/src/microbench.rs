//! Microbenchmark harness: measures every basic transfer on a simulated
//! machine and assembles the machine's [`RateTable`].
//!
//! This is the simulated counterpart of Section 4 of the paper ("Measuring
//! throughput figures for basic transfers"): each figure comes out of a
//! steady-state run over arrays far larger than the cache, and auxiliary
//! traffic (index loads, addresses, headers) costs time but never counts as
//! payload.

use memcomm_memsim::clock::Cycle;
use memcomm_memsim::nic::{NetWord, WordKind};
use memcomm_memsim::scenario;
use memcomm_memsim::walk::Walk;
use memcomm_memsim::{Measurement, Node, SimResult};
use memcomm_model::{AccessPattern, BasicTransfer, Engine, RateTable, Throughput};
use memcomm_netsim::link::measure_wire_rate;

use crate::machine::Machine;

/// Deterministic pseudo-random permutation of `0..n` for indexed walks
/// (splitmix64-seeded xorshift64*, Fisher–Yates).
pub fn permutation_index(n: u64, seed: u64) -> Vec<u32> {
    assert!(n <= u64::from(u32::MAX), "index entries are 32-bit");
    let mut out: Vec<u32> = (0..n as u32).collect();
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    state = (state ^ (state >> 31)) | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for i in (1..n as usize).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

/// Builds a fresh node for a machine.
pub fn make_node(machine: &Machine) -> Node {
    Node::new(machine.node)
}

/// Allocates a walk of `words` elements with the given pattern (indexed
/// walks get a seeded permutation).
///
/// # Errors
///
/// Propagates allocation and walk-construction errors from the node.
pub fn alloc_pattern_walk(
    node: &mut Node,
    pattern: AccessPattern,
    words: u64,
    seed: u64,
) -> SimResult<Walk> {
    let index = (pattern == AccessPattern::Indexed).then(|| permutation_index(words, seed));
    node.alloc_walk(pattern, words, index)
}

fn feed_cycles(machine: &Machine, addressed: bool) -> Cycle {
    let word = NetWord {
        addr: addressed.then_some(0),
        data: 0,
        kind: WordKind::Data,
    };
    machine.link(1.0).word_cycles(&word).round().max(1.0) as Cycle
}

/// Measures one basic transfer on the machine, over `words` payload words.
/// Returns `None` when the machine does not offer that transfer (the "–"
/// cells of the paper's tables).
///
/// Results are memoized process-wide (see [`crate::memo`]): the first call
/// for a `(machine, transfer, words)` point simulates, later calls — from
/// other experiments, the calibration report, or parallel sweep workers —
/// are lookups.
///
/// # Errors
///
/// Propagates any [`memcomm_memsim::SimError`] from the underlying
/// simulation (errors are memoized like values — deterministic failures
/// replay from the cache).
pub fn measure_basic(
    machine: &Machine,
    transfer: BasicTransfer,
    words: u64,
) -> SimResult<Option<Measurement>> {
    crate::memo::cached(machine, transfer, words, || {
        simulate_basic(machine, transfer, words)
    })
}

/// Runs one basic-transfer simulation unconditionally, bypassing the memo
/// cache. The cache's correctness rests on this being a pure function of
/// its arguments.
///
/// # Errors
///
/// Propagates any [`memcomm_memsim::SimError`] from the scenario run.
pub fn simulate_basic(
    machine: &Machine,
    transfer: BasicTransfer,
    words: u64,
) -> SimResult<Option<Measurement>> {
    let obs = memcomm_obs::Obs::current();
    if !obs.is_enabled() {
        return simulate_basic_inner(machine, transfer, words);
    }
    // Each simulated (non-memoized) microbenchmark gets its own trace
    // process; memo-cache hits never reach this path, so a trace shows
    // exactly the simulations that actually ran.
    let _point = obs.point_scope(&format!("{} {transfer}", machine.name));
    let result = simulate_basic_inner(machine, transfer, words);
    obs.count("microbench.simulated", 1);
    if obs.tracing() {
        if let Ok(Some(m)) = &result {
            obs.span("microbench", &transfer.to_string(), 0, m.cycles);
        }
    }
    result
}

fn simulate_basic_inner(
    machine: &Machine,
    transfer: BasicTransfer,
    words: u64,
) -> SimResult<Option<Measurement>> {
    let mut node = make_node(machine);
    let read = transfer.read_pattern();
    let write = transfer.write_pattern();
    match transfer.engine() {
        Engine::Copy => match (read.is_memory(), write.is_memory()) {
            (true, true) => {
                let src = alloc_pattern_walk(&mut node, read, words, 11)?;
                let dst = alloc_pattern_walk(&mut node, write, words, 23)?;
                Ok(Some(scenario::run_local_copy(&mut node, &src, &dst)?))
            }
            (true, false) => {
                let src = alloc_pattern_walk(&mut node, read, words, 11)?;
                Ok(Some(scenario::run_load_stream(&mut node, &src)?))
            }
            (false, true) => {
                let dst = alloc_pattern_walk(&mut node, write, words, 23)?;
                Ok(Some(scenario::run_store_stream(&mut node, &dst)?))
            }
            (false, false) => Ok(None),
        },
        Engine::LoadSend => {
            let src = alloc_pattern_walk(&mut node, read, words, 11)?;
            Ok(Some(scenario::run_load_send(
                &mut node,
                &src,
                None,
                machine.port_word_cycles(),
            )?))
        }
        Engine::FetchSend => {
            if !machine.caps.fetch_send || read != AccessPattern::Contiguous {
                return Ok(None);
            }
            let src = alloc_pattern_walk(&mut node, read, words, 11)?;
            Ok(Some(scenario::run_fetch_send(
                &mut node,
                &src,
                machine.port_word_cycles(),
            )?))
        }
        Engine::ReceiveStore => {
            if !machine.caps.receive_store {
                return Ok(None);
            }
            let addressed = write != AccessPattern::Contiguous;
            let dst = alloc_pattern_walk(&mut node, write, words, 23)?;
            Ok(Some(scenario::run_receive_store(
                &mut node,
                &dst,
                addressed,
                feed_cycles(machine, addressed),
            )?))
        }
        Engine::ReceiveDeposit => {
            let addressed = write != AccessPattern::Contiguous;
            if addressed && !machine.caps.deposit_noncontiguous {
                return Ok(None);
            }
            let dst = alloc_pattern_walk(&mut node, write, words, 23)?;
            Ok(Some(scenario::run_receive_deposit(
                &mut node,
                &dst,
                addressed,
                feed_cycles(machine, addressed),
            )?))
        }
        Engine::NetData => Ok(Some(measure_wire_rate(
            machine.link(machine.default_congestion),
            words,
            false,
        ))),
        Engine::NetAddrData => Ok(Some(measure_wire_rate(
            machine.link(machine.default_congestion),
            words,
            true,
        ))),
    }
}

/// Measures one basic transfer and converts to MB/s.
///
/// # Errors
///
/// Propagates simulation errors from [`measure_basic`].
pub fn measure_rate(
    machine: &Machine,
    transfer: BasicTransfer,
    words: u64,
) -> SimResult<Option<Throughput>> {
    Ok(measure_basic(machine, transfer, words)?.map(|m| m.throughput(machine.clock())))
}

/// The standard set of transfers a machine's rate table covers: the
/// patterns of Tables 1–3 plus stride anchors for interpolation and the
/// network rates at the machine's representative congestion.
pub fn standard_transfers() -> Vec<BasicTransfer> {
    use AccessPattern::{Contiguous as C1, Indexed as W};
    let s = |n: u32| AccessPattern::strided(n).expect("static strides");
    let mut out = vec![
        BasicTransfer::copy(C1, C1),
        BasicTransfer::copy(C1, W),
        BasicTransfer::copy(W, C1),
        BasicTransfer::load_stream(C1),
        BasicTransfer::store_stream(C1),
        BasicTransfer::load_stream(W),
        BasicTransfer::store_stream(W),
        BasicTransfer::load_send(C1),
        BasicTransfer::load_send(W),
        BasicTransfer::fetch_send(C1),
        BasicTransfer::receive_store(C1),
        BasicTransfer::receive_store(W),
        BasicTransfer::receive_deposit(C1),
        BasicTransfer::receive_deposit(W),
        BasicTransfer::net_data(),
        BasicTransfer::net_addr_data(),
    ];
    for n in [2u32, 4, 8, 16, 32, 64] {
        out.push(BasicTransfer::copy(C1, s(n)));
        out.push(BasicTransfer::copy(s(n), C1));
        out.push(BasicTransfer::load_send(s(n)));
        out.push(BasicTransfer::receive_store(s(n)));
        out.push(BasicTransfer::receive_deposit(s(n)));
        out.push(BasicTransfer::load_stream(s(n)));
        out.push(BasicTransfer::store_stream(s(n)));
    }
    out
}

/// Measures the machine's full standard rate table. Unsupported transfers
/// are simply absent, mirroring the "–" cells of the paper's tables.
///
/// The sweep fans out across the process-default worker count
/// ([`memcomm_util::par::set_jobs`]); results are order-preserving and
/// memoized, so the table is identical whatever the worker count.
///
/// # Errors
///
/// Returns the first simulation error among the transfers (in table order).
pub fn measure_table(machine: &Machine, words: u64) -> SimResult<RateTable> {
    let transfers = standard_transfers();
    let points = memcomm_util::par::par_map_auto(&transfers, |&t| {
        Ok(measure_rate(machine, t, words)?.map(|r| (t, r)))
    });
    let mut table = RateTable::default();
    for point in points {
        if let Some((t, r)) = point? {
            table.insert(t, r);
        }
    }
    Ok(table)
}

/// Which side of a copy is strided in a stride sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrideSide {
    /// `sC1`: strided loads, contiguous stores.
    Loads,
    /// `1Cs`: contiguous loads, strided stores.
    Stores,
}

/// Sweeps local-copy throughput over strides — the data for Figure 4.
///
/// # Errors
///
/// Returns the first simulation error among the strides (in sweep order).
pub fn stride_sweep(
    machine: &Machine,
    strides: &[u32],
    words: u64,
    side: StrideSide,
) -> SimResult<Vec<(u32, Throughput)>> {
    let points = memcomm_util::par::par_map_auto(strides, |&n| {
        let s = AccessPattern::strided(n).expect("sweep strides are >= 1");
        let t = match side {
            StrideSide::Loads => BasicTransfer::copy(s, AccessPattern::Contiguous),
            StrideSide::Stores => BasicTransfer::copy(AccessPattern::Contiguous, s),
        };
        let rate = measure_rate(machine, t, words)?.ok_or(memcomm_memsim::SimError::Protocol {
            detail: "local copies always run".to_string(),
            at: 0,
        })?;
        Ok((n, rate))
    });
    points.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORDS: u64 = 4096;

    #[test]
    fn permutation_is_a_bijection() {
        let p = permutation_index(1000, 7);
        let mut seen = vec![false; 1000];
        for &i in &p {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        assert_ne!(permutation_index(1000, 7), permutation_index(1000, 8));
    }

    #[test]
    fn unsupported_transfers_are_none() {
        let t3d = Machine::t3d();
        let none = |m: &Machine, t: &str| {
            measure_basic(m, BasicTransfer::parse(t).unwrap(), WORDS)
                .unwrap()
                .is_none()
        };
        assert!(none(&t3d, "1F0"));
        assert!(none(&t3d, "0R1"));
        let paragon = Machine::paragon();
        assert!(none(&paragon, "0D64"));
        assert!(none(&paragon, "0Dw"));
    }

    #[test]
    fn table_has_the_supported_entries() {
        let t3d = Machine::t3d();
        let table = measure_table(&t3d, WORDS).unwrap();
        assert!(table.get(BasicTransfer::parse("1C1").unwrap()).is_some());
        assert!(table.get(BasicTransfer::parse("0Dw").unwrap()).is_some());
        assert!(table.get(BasicTransfer::parse("1F0").unwrap()).is_none());
        assert!(table.len() > 30);
    }

    #[test]
    fn stride_sweep_is_monotonically_ordered_overall() {
        let t3d = Machine::t3d();
        let sweep = stride_sweep(&t3d, &[2, 8, 64], WORDS, StrideSide::Stores).unwrap();
        assert!(
            sweep[0].1 >= sweep[2].1,
            "small strides are at least as fast"
        );
    }
}
