//! Calibration report: simulated basic-transfer rates vs the paper's
//! published figures.

use memcomm_memsim::SimResult;
use memcomm_model::{BasicTransfer, RateTable, Throughput};

use crate::machine::Machine;
use crate::microbench;
use crate::reference;

/// One compared transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationRow {
    /// The basic transfer.
    pub transfer: BasicTransfer,
    /// Rate measured on the simulator.
    pub simulated: Throughput,
    /// Rate the paper reports.
    pub paper: Throughput,
}

impl CalibrationRow {
    /// `simulated / paper` — 1.0 is perfect.
    pub fn ratio(&self) -> f64 {
        self.simulated.as_mbps() / self.paper.as_mbps()
    }
}

/// Reference rates for a machine by name.
///
/// # Panics
///
/// Panics for unknown machine names.
pub fn reference_rates(machine: &Machine) -> RateTable {
    match machine.name {
        "Cray T3D" => reference::t3d_rates(),
        "Intel Paragon" => reference::paragon_rates(),
        other => panic!("no reference data for machine {other:?}"),
    }
}

/// Measures the machine and joins against the paper's tables on the
/// transfers the paper reports. Points fan out across the process-default
/// worker count and come back in table order; measurements are memoized
/// (see [`crate::memo`]).
///
/// # Errors
///
/// Returns the first simulation error among the points (in table order).
pub fn calibration_report(machine: &Machine, words: u64) -> SimResult<Vec<CalibrationRow>> {
    let paper: Vec<(BasicTransfer, Throughput)> = reference_rates(machine).iter().collect();
    let rows = memcomm_util::par::par_map_auto(&paper, |&(transfer, paper_rate)| {
        Ok(
            microbench::measure_rate(machine, transfer, words)?.map(|simulated| CalibrationRow {
                transfer,
                simulated,
                paper: paper_rate,
            }),
        )
    });
    let mut out = Vec::new();
    for row in rows {
        if let Some(r) = row? {
            out.push(r);
        }
    }
    Ok(out)
}

/// Geometric-mean absolute log-ratio of a report: 0.0 means every simulated
/// rate equals the paper's; 0.3 means a typical deviation of ~35%.
pub fn mean_log_error(rows: &[CalibrationRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.ratio().ln().abs()).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    const WORDS: u64 = 8192;

    fn rate(rows: &[CalibrationRow], s: &str) -> f64 {
        let t = BasicTransfer::parse(s).unwrap();
        rows.iter()
            .find(|r| r.transfer == t)
            .unwrap_or_else(|| panic!("{s} missing from report"))
            .simulated
            .as_mbps()
    }

    #[test]
    fn t3d_orderings_match_the_paper() {
        let rows = calibration_report(&Machine::t3d(), WORDS).unwrap();
        // Contiguous > strided > indexed-gather for local copies.
        assert!(rate(&rows, "1C1") > rate(&rows, "1C64"));
        assert!(rate(&rows, "1C64") > rate(&rows, "wC1"));
        // Strided stores beat strided loads (the write-back queue).
        assert!(rate(&rows, "1C64") > rate(&rows, "64C1"));
        // The annex deposits contiguous streams much faster than strided.
        assert!(rate(&rows, "0D1") > 1.5 * rate(&rows, "0D64"));
        // Contiguous send is far faster than strided send.
        assert!(rate(&rows, "1S0") > 2.0 * rate(&rows, "64S0"));
    }

    #[test]
    fn paragon_orderings_match_the_paper() {
        let rows = calibration_report(&Machine::paragon(), WORDS).unwrap();
        // Strided loads beat strided stores (pipelined loads).
        assert!(
            rate(&rows, "64C1") > rate(&rows, "1C64"),
            "64C1 {} !> 1C64 {}",
            rate(&rows, "64C1"),
            rate(&rows, "1C64")
        );
        // The DMA beats the processor for contiguous sends.
        assert!(rate(&rows, "1F0") > 2.0 * rate(&rows, "1S0"));
        // Indexed gathers do comparatively well (interleaved banks).
        assert!(rate(&rows, "wC1") > rate(&rows, "64C1") * 0.9);
    }

    #[test]
    fn simulated_magnitudes_are_in_the_papers_range() {
        for machine in [Machine::t3d(), Machine::paragon()] {
            let rows = calibration_report(&machine, WORDS).unwrap();
            assert!(rows.len() >= 12, "{}: {} rows", machine.name, rows.len());
            let err = mean_log_error(&rows);
            assert!(
                err < 0.45,
                "{}: mean log error {err:.2} (typical deviation {:.0}%)",
                machine.name,
                (err.exp() - 1.0) * 100.0
            );
            for r in &rows {
                assert!(
                    r.ratio() > 0.4 && r.ratio() < 2.5,
                    "{}: {} simulated {} vs paper {}",
                    machine.name,
                    r.transfer,
                    r.simulated,
                    r.paper
                );
            }
        }
    }
}
