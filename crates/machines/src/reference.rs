//! The paper's published measurements, kept verbatim as the comparison
//! baseline for EXPERIMENTS.md.
//!
//! Nothing in the simulator reads these numbers; they exist so the
//! calibration report and the reproduction harness can print
//! paper-vs-simulated side by side.

use memcomm_model::{BasicTransfer, MBps, RateTable, Throughput};

/// Builds a [`RateTable`] from `(notation, MB/s)` pairs.
///
/// # Panics
///
/// Panics on invalid notation — the tables below are constants.
fn table(entries: &[(&str, f64)]) -> RateTable {
    entries
        .iter()
        .map(|&(s, r)| {
            (
                BasicTransfer::parse(s).expect("reference notation is valid"),
                MBps(r),
            )
        })
        .collect()
}

/// Paper Tables 1–3 for the Cray T3D, plus Table 4's network rates at the
/// representative congestion 2 (the bold column).
pub fn t3d_rates() -> RateTable {
    table(&[
        // Table 1: local memory-to-memory copies.
        ("1C1", 93.0),
        ("1C64", 67.9),
        ("64C1", 33.3),
        ("1Cw", 38.5),
        ("wC1", 32.9),
        // Table 2: sends.
        ("1S0", 126.0),
        ("64S0", 35.0),
        ("wS0", 32.0),
        // Table 3: receives (the T3D always deposits).
        ("0D1", 142.0),
        ("0D64", 52.0),
        ("0Dw", 52.0),
        // Table 4 at congestion 2.
        ("Nd", 69.0),
        ("Nadp", 38.0),
    ])
}

/// Paper Tables 1–3 for the Intel Paragon, plus Table 4 at congestion 2.
pub fn paragon_rates() -> RateTable {
    table(&[
        ("1C1", 67.6),
        ("1C64", 27.6),
        ("64C1", 31.1),
        ("1Cw", 35.2),
        ("wC1", 45.1),
        ("1S0", 52.0),
        ("1F0", 160.0),
        ("64S0", 42.0),
        ("wS0", 36.0),
        ("0R1", 82.0),
        ("0D1", 160.0),
        ("0R64", 38.0),
        ("0Rw", 42.0),
        ("Nd", 90.0),
        ("Nadp", 45.0),
    ])
}

/// One row of Table 4: network bandwidth vs congestion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkRow {
    /// Fixed congestion factor.
    pub congestion: f64,
    /// Data-only bandwidth `Nd`.
    pub data_only: Throughput,
    /// Address-data-pair bandwidth `Nadp`.
    pub addr_data: Throughput,
}

/// Table 4 for the T3D.
pub fn t3d_network() -> Vec<NetworkRow> {
    [(1.0, 142.0, 62.0), (2.0, 69.0, 38.0), (4.0, 35.0, 20.0)]
        .into_iter()
        .map(|(c, d, a)| NetworkRow {
            congestion: c,
            data_only: MBps(d),
            addr_data: MBps(a),
        })
        .collect()
}

/// Table 4 for the Paragon.
pub fn paragon_network() -> Vec<NetworkRow> {
    [(1.0, 176.0, 88.0), (2.0, 90.0, 45.0), (4.0, 44.0, 22.0)]
        .into_iter()
        .map(|(c, d, a)| NetworkRow {
            congestion: c,
            data_only: MBps(d),
            addr_data: MBps(a),
        })
        .collect()
}

/// A `xQy` data point from Section 5: the paper's model estimates for one
/// pattern pair under both implementation styles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QPoint {
    /// Human-readable operation, e.g. `"1Q64"`.
    pub op: &'static str,
    /// Buffer-packing estimate.
    pub buffer_packing: Throughput,
    /// Chained estimate.
    pub chained: Throughput,
}

/// Sections 5.1.1–5.1.2: the paper's model numbers for the T3D.
pub fn t3d_q_model() -> Vec<QPoint> {
    [
        ("1Q1", 27.9, 70.0),
        ("1Q64", 25.2, 38.0),
        ("64Q1", 17.1, 38.0),
        ("wQw", 14.2, 32.0),
    ]
    .into_iter()
    .map(|(op, b, c)| QPoint {
        op,
        buffer_packing: MBps(b),
        chained: MBps(c),
    })
    .collect()
}

/// Sections 5.1.3–5.1.4: the paper's model numbers for the Paragon.
pub fn paragon_q_model() -> Vec<QPoint> {
    [
        ("1Q1", 20.7, 52.0),
        ("1Q64", 16.1, 38.0),
        ("16Q64", 14.9, 38.0),
        ("wQw", 16.2, 36.0),
    ]
    .into_iter()
    .map(|(op, b, c)| QPoint {
        op,
        buffer_packing: MBps(b),
        chained: MBps(c),
    })
    .collect()
}

/// One cell group of Table 5 (strided loads vs strided stores).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table5Row {
    /// `"1Q16"` (strided stores) or `"16Q1"` (strided loads).
    pub op: &'static str,
    /// Machine name.
    pub machine: &'static str,
    /// Model estimate, buffer packing.
    pub model_bp: Throughput,
    /// Model estimate, chained.
    pub model_chained: Throughput,
    /// Measured, buffer packing.
    pub measured_bp: Throughput,
    /// Measured, chained.
    pub measured_chained: Throughput,
}

/// Table 5 verbatim.
pub fn table5() -> Vec<Table5Row> {
    vec![
        Table5Row {
            op: "1Q16",
            machine: "Cray T3D",
            model_bp: MBps(25.4),
            model_chained: MBps(38.0),
            measured_bp: MBps(20.8),
            measured_chained: MBps(31.3),
        },
        Table5Row {
            op: "1Q16",
            machine: "Intel Paragon",
            model_bp: MBps(18.3),
            model_chained: MBps(32.0),
            measured_bp: MBps(20.7),
            measured_chained: MBps(29.7),
        },
        Table5Row {
            op: "16Q1",
            machine: "Cray T3D",
            model_bp: MBps(18.4),
            model_chained: MBps(38.0),
            measured_bp: MBps(14.3),
            measured_chained: MBps(27.4),
        },
        Table5Row {
            op: "16Q1",
            machine: "Intel Paragon",
            model_bp: MBps(20.7),
            model_chained: MBps(42.0),
            measured_bp: MBps(24.2),
            measured_chained: MBps(39.2),
        },
    ]
}

/// One row of Table 6 (application kernels on a 64-node T3D, MB/s per
/// node), plus the Cray PVM3 figures quoted in the Section 6.2 text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table6Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Measured, buffer packing.
    pub measured_bp: Throughput,
    /// Measured, chained.
    pub measured_chained: Throughput,
    /// The model's chained estimate.
    pub model_chained: Throughput,
    /// Throughput through stock Cray PVM3 (Section 6.2 text).
    pub pvm3: Throughput,
}

/// Table 6 verbatim.
pub fn table6() -> Vec<Table6Row> {
    vec![
        Table6Row {
            kernel: "Transpose",
            measured_bp: MBps(20.0),
            measured_chained: MBps(25.2),
            model_chained: MBps(29.5),
            pvm3: MBps(6.0),
        },
        Table6Row {
            kernel: "FEM",
            measured_bp: MBps(12.2),
            measured_chained: MBps(14.2),
            model_chained: MBps(20.2),
            pvm3: MBps(2.0),
        },
        Table6Row {
            kernel: "SOR",
            measured_bp: MBps(26.2),
            measured_chained: MBps(27.9),
            model_chained: MBps(68.1),
            pvm3: MBps(25.0),
        },
    ]
}

/// Section 3.4.1: the worked transpose example — `|1Q1024|` estimated at
/// 25.0 MB/s, measured at 20.0 MB/s on a 64-node T3D.
pub fn section_341() -> (Throughput, Throughput) {
    (MBps(25.0), MBps(20.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcomm_model::AccessPattern;

    #[test]
    fn reference_tables_parse_and_lookup() {
        let t3d = t3d_rates();
        let c11 = BasicTransfer::copy(AccessPattern::Contiguous, AccessPattern::Contiguous);
        assert_eq!(t3d.rate(c11).unwrap(), MBps(93.0));
        assert_eq!(paragon_rates().rate(c11).unwrap(), MBps(67.6));
    }

    #[test]
    fn reference_reproduces_paper_estimates() {
        // Sanity: composing the reference basic rates with the model's
        // formulas reproduces the paper's Section 5.1.1 numbers.
        use memcomm_model::{buffer_packing_expr, BufferPackingPlan};
        let rates = t3d_rates();
        let q = buffer_packing_expr(
            AccessPattern::Contiguous,
            AccessPattern::strided(64).unwrap(),
            BufferPackingPlan::default(),
        )
        .unwrap();
        let est = q.estimate(&rates).unwrap();
        assert!((est.as_mbps() - 25.2).abs() < 0.2, "got {est}");
    }

    #[test]
    fn chained_reference_matches_section_5_1_2() {
        use memcomm_model::{chained_expr, ChainedPlan};
        let rates = t3d_rates();
        for (x, y, expect) in [
            (AccessPattern::Contiguous, AccessPattern::Contiguous, 69.0),
            (AccessPattern::Contiguous, AccessPattern::Strided(64), 38.0),
            (AccessPattern::Indexed, AccessPattern::Indexed, 32.0),
        ] {
            let q = chained_expr(x, y, ChainedPlan::default()).unwrap();
            let est = q.estimate(&rates).unwrap().as_mbps();
            assert!(
                (est - expect).abs() < 1.5,
                "{x}Q'{y}: got {est}, paper {expect}"
            );
        }
    }

    #[test]
    fn network_tables_halve_with_congestion() {
        for rows in [t3d_network(), paragon_network()] {
            assert_eq!(rows.len(), 3);
            let r1 = rows[0].data_only.as_mbps();
            let r2 = rows[1].data_only.as_mbps();
            assert!(r2 < r1 * 0.6, "congestion 2 roughly halves bandwidth");
        }
    }

    #[test]
    fn table5_winner_flips_between_machines() {
        let rows = table5();
        let t3d_1q16 = &rows[0];
        let t3d_16q1 = &rows[2];
        // On the T3D strided stores (1Q16) beat strided loads (16Q1)...
        assert!(t3d_1q16.measured_bp > t3d_16q1.measured_bp);
        let par_1q16 = &rows[1];
        let par_16q1 = &rows[3];
        // ...and on the Paragon it is the other way round.
        assert!(par_16q1.measured_bp > par_1q16.measured_bp);
    }
}
