//! # memcomm-machines — the Cray T3D and Intel Paragon
//!
//! Calibrated simulator configurations for the two machines the paper
//! measures, the microbenchmark harness that measures every basic transfer
//! on the simulated nodes ([`microbench`]), the paper's published figures
//! ([`reference`]) and a calibration report comparing the two
//! ([`calibrate`]).
//!
//! Calibration is **parameter-level, not output-level**: the configurations
//! set component timings (DRAM row hit/miss cycles, cache geometry, issue
//! costs) from published mid-1990s hardware characteristics, and the
//! throughputs of Tables 1–4 *emerge* from simulation. The reference tables
//! exist only to quantify how close the emergent numbers come.
//!
//! ```rust
//! use memcomm_machines::{microbench, Machine};
//! use memcomm_model::BasicTransfer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t3d = Machine::t3d();
//! let rates = microbench::measure_table(&t3d, 4096)?;
//! let c11 = rates.rate(BasicTransfer::parse("1C1")?)?;
//! let c64 = rates.rate(BasicTransfer::parse("1C64")?)?;
//! assert!(c11 > c64, "contiguous copies beat strided copies");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod machine;
pub mod memo;
pub mod microbench;
pub mod reference;

pub use machine::Machine;
