//! Machine configurations.

use memcomm_memsim::cache::{CacheParams, WritePolicy};
use memcomm_memsim::clock::{Clock, Cycle};
use memcomm_memsim::dram::DramParams;
use memcomm_memsim::engines::{CpuParams, DepositParams, DmaParams};
use memcomm_memsim::path::{PathParams, Port};
use memcomm_memsim::pfq::PfqParams;
use memcomm_memsim::readahead::ReadAheadParams;
use memcomm_memsim::wbq::WbqParams;
use memcomm_memsim::NodeParams;
use memcomm_netsim::{LinkParams, Topology};

/// Which basic transfers the machine's hardware/software actually offers
/// (the "–" cells of the paper's Tables 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// `xF0`: a DMA engine can feed the network (Paragon yes, T3D no).
    pub fetch_send: bool,
    /// `0Ry`: a processor receive loop is a supported path (Paragon yes —
    /// the co-processor; T3D no, the annex always deposits).
    pub receive_store: bool,
    /// `0Dy` for non-contiguous `y`: the deposit engine handles strided and
    /// indexed stores (T3D annex yes, Paragon DMA no).
    pub deposit_noncontiguous: bool,
}

/// A calibrated machine: node parameters, link parameters, topology and
/// capability flags.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Machine name ("Cray T3D", "Intel Paragon").
    pub name: &'static str,
    /// Node configuration (memory system + engines).
    pub node: NodeParams,
    /// Link configuration at congestion 1.
    pub link_raw: LinkParams,
    /// The congestion the paper considers representative (2 for both
    /// machines — shared ports on the T3D, aspect ratios on the Paragon).
    pub default_congestion: f64,
    /// Nodes sharing one network port (2 on the T3D).
    pub nodes_per_port: u32,
    /// Interconnect topology of the reference installation.
    pub topology: Topology,
    /// Hardware capability flags.
    pub caps: Capabilities,
}

impl Machine {
    /// The node clock.
    pub fn clock(&self) -> Clock {
        Clock::from_mhz(self.node.clock_mhz)
    }

    /// Link parameters at a given congestion factor.
    pub fn link(&self, congestion: f64) -> LinkParams {
        LinkParams {
            congestion,
            ..self.link_raw
        }
    }

    /// Cycles the network port needs per data word at congestion 1 — the
    /// service rate of the ideal port in single-node send/receive
    /// microbenchmarks.
    pub fn port_word_cycles(&self) -> Cycle {
        let word = memcomm_memsim::nic::NetWord::data(0);
        self.link_raw.word_cycles(&word).round().max(1.0) as Cycle
    }

    /// The Cray T3D: 150 MHz Alpha 21064, 8 KB direct-mapped write-around
    /// cache, single-bank page-mode DRAM, read-ahead (RDAL) circuitry, a
    /// deep write-back queue, no DMA, and the annex deposit engine that
    /// handles any access pattern. 3D torus, two nodes per network port.
    pub fn t3d() -> Self {
        let line_bytes = 32;
        Machine {
            name: "Cray T3D",
            node: NodeParams {
                clock_mhz: 150.0,
                memory_words: 6 << 20,
                path: PathParams {
                    cache: CacheParams {
                        size_bytes: 8 * 1024,
                        line_bytes,
                        ways: 1,
                        write_policy: WritePolicy::WriteThrough,
                        allocate_on_store_miss: false,
                        // The 21064 primary-cache load-to-use latency.
                        hit_cycles: 3,
                    },
                    wbq: WbqParams {
                        entries: 6,
                        merge: true,
                        line_bytes,
                    },
                    readahead: ReadAheadParams {
                        enabled: true,
                        buffer_hit_cycles: 3,
                    },
                    dram: DramParams {
                        banks: 1,
                        interleave_bytes: line_bytes,
                        row_bytes: 2048,
                        read_hit_cycles: 4,
                        read_miss_cycles: 18,
                        write_hit_cycles: 3,
                        write_miss_cycles: 20,
                        posted_write_miss_cycles: 11,
                        burst_word_cycles: 1,
                        channel_word_cycles: 1,
                        demand_latency_cycles: 8,
                        write_row_affinity: false,
                        read_row_affinity: false,
                        turnaround_cycles: 2,
                    },
                    switch_penalty_cycles: 1,
                    switch_window_cycles: 16,
                    deposit_invalidates_cache: true,
                },
                cpu: CpuParams {
                    port: Port::Cpu,
                    load_issue_cycles: 1,
                    store_issue_cycles: 1,
                    loop_cycles: 1,
                    indexed_extra_cycles: 2,
                    port_store_cycles: 2,
                    port_load_cycles: 6,
                    pfq: PfqParams {
                        depth: 1,
                        enabled: false,
                    },
                },
                // The T3D has no DMA; parameters kept for completeness.
                dma: DmaParams {
                    burst_words: 4,
                    setup_cycles: 200,
                    page_bytes: 4096,
                    kick_cycles: 50,
                    word_fifo_cycles: 2,
                },
                deposit: DepositParams {
                    word_cycles: 3,
                    coalesce_words: 4,
                    contiguous_only: false,
                },
                tx_fifo_words: 64,
                rx_fifo_words: 64,
            },
            link_raw: LinkParams {
                // 160 MB/s effective wire speed at 150 MHz.
                bytes_per_cycle: 160.0 / 150.0,
                packet_words: 16,
                header_bytes: 8,
                // Each remote store is its own small message: the address
                // plus per-store control framing.
                adp_extra_bytes: 10,
                latency_cycles: 20,
                congestion: 1.0,
            },
            default_congestion: 2.0,
            nodes_per_port: 2,
            topology: Topology::torus(&[4, 4, 4]),
            caps: Capabilities {
                fetch_send: false,
                receive_store: false,
                deposit_noncontiguous: true,
            },
        }
    }

    /// The Intel Paragon: two 50 MHz i860XP processors on a 400 MB/s bus,
    /// 16 KB 4-way write-through caches, interleaved page-mode DRAM,
    /// cache-bypassing pipelined loads, contiguous-only DMA/line-transfer
    /// engines with page-boundary kicks. 2D mesh, one node per port.
    pub fn paragon() -> Self {
        let line_bytes = 32;
        Machine {
            name: "Intel Paragon",
            node: NodeParams {
                clock_mhz: 50.0,
                memory_words: 6 << 20,
                path: PathParams {
                    cache: CacheParams {
                        size_bytes: 16 * 1024,
                        line_bytes,
                        ways: 4,
                        write_policy: WritePolicy::WriteThrough,
                        allocate_on_store_miss: false,
                        hit_cycles: 1,
                    },
                    wbq: WbqParams {
                        entries: 3,
                        merge: true,
                        line_bytes,
                    },
                    readahead: ReadAheadParams {
                        enabled: false,
                        buffer_hit_cycles: 2,
                    },
                    dram: DramParams {
                        banks: 4,
                        interleave_bytes: line_bytes,
                        row_bytes: 2048,
                        read_hit_cycles: 2,
                        read_miss_cycles: 9,
                        write_hit_cycles: 2,
                        write_miss_cycles: 11,
                        // The i860 write path gains nothing from posting:
                        // no pipelined precharge as on the T3D controller.
                        posted_write_miss_cycles: 11,
                        burst_word_cycles: 1,
                        channel_word_cycles: 1,
                        demand_latency_cycles: 3,
                        write_row_affinity: false,
                        read_row_affinity: false,
                        turnaround_cycles: 2,
                    },
                    // Fine-grain interleaving of requesters arbitrates
                    // poorly on this bus (the paper saw up to 50% loss).
                    switch_penalty_cycles: 2,
                    switch_window_cycles: 8,
                    deposit_invalidates_cache: true,
                },
                cpu: CpuParams {
                    port: Port::Cpu,
                    load_issue_cycles: 1,
                    store_issue_cycles: 1,
                    // Dual-issue hides the loop control.
                    loop_cycles: 0,
                    indexed_extra_cycles: 1,
                    port_store_cycles: 3,
                    port_load_cycles: 4,
                    pfq: PfqParams {
                        depth: 3,
                        enabled: true,
                    },
                },
                dma: DmaParams {
                    burst_words: 16,
                    setup_cycles: 200,
                    page_bytes: 4096,
                    kick_cycles: 50,
                    word_fifo_cycles: 1,
                },
                // The line-transfer unit acting as a deposit engine:
                // contiguous only.
                deposit: DepositParams {
                    word_cycles: 1,
                    coalesce_words: 16,
                    contiguous_only: true,
                },
                tx_fifo_words: 64,
                rx_fifo_words: 64,
            },
            link_raw: LinkParams {
                // 200 MB/s raw at 50 MHz = 4 bytes per cycle.
                bytes_per_cycle: 4.0,
                packet_words: 16,
                header_bytes: 16,
                // Address-data pairs are packetized: 8 address bytes extra.
                adp_extra_bytes: 8,
                latency_cycles: 10,
                congestion: 1.0,
            },
            default_congestion: 2.0,
            nodes_per_port: 1,
            topology: Topology::mesh(&[8, 8]),
            caps: Capabilities {
                fetch_send: true,
                receive_store: true,
                deposit_noncontiguous: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_construct() {
        let t = Machine::t3d();
        let p = Machine::paragon();
        assert_eq!(t.topology.len(), 64);
        assert_eq!(p.topology.len(), 64);
        assert!(t.caps.deposit_noncontiguous);
        assert!(!p.caps.deposit_noncontiguous);
    }

    #[test]
    fn port_word_cycles_reflect_wire_speed() {
        let t = Machine::t3d();
        // 8.5 framed bytes at 160/150 B/cycle ≈ 8 cycles.
        assert_eq!(t.port_word_cycles(), 8);
        let p = Machine::paragon();
        // 9 framed bytes at 4 B/cycle -> 2.25, rounded to 2 cycles.
        assert_eq!(p.port_word_cycles(), 2);
    }

    #[test]
    fn default_congestion_is_two() {
        assert_eq!(Machine::t3d().default_congestion, 2.0);
        assert_eq!(Machine::paragon().default_congestion, 2.0);
    }
}
