//! Prints the calibration report for both machines: simulated vs paper
//! rates for every basic transfer the paper measures.
//!
//! Run with `cargo run --release -p memcomm-machines --example
//! calibration_report`.

use memcomm_machines::calibrate::{calibration_report, mean_log_error};
use memcomm_machines::Machine;

fn main() {
    let words: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16 * 1024);
    for machine in [Machine::t3d(), Machine::paragon()] {
        println!("== {} ({} words per measurement) ==", machine.name, words);
        let rows = match calibration_report(&machine, words) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("calibration failed: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "{:<8} {:>10} {:>10} {:>7}",
            "xfer", "simulated", "paper", "ratio"
        );
        for r in &rows {
            println!(
                "{:<8} {:>10.1} {:>10.1} {:>7.2}",
                r.transfer.to_string(),
                r.simulated.as_mbps(),
                r.paper.as_mbps(),
                r.ratio()
            );
        }
        println!(
            "mean log error: {:.3} (typical deviation {:.0}%)\n",
            mean_log_error(&rows),
            (mean_log_error(&rows).exp() - 1.0) * 100.0
        );
    }
}
