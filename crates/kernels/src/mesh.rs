//! Synthetic partitioned irregular mesh — the FEM substrate.
//!
//! The paper's FEM kernel comes from "a sparse system solver based on a
//! partitioned finite element graph, representing a 3 dimensional model of
//! an alluvial valley" (the CMU Quake project). That mesh is not available;
//! this module generates a synthetic substitute with the same communication
//! structure: a partitioned 3D point set where "only a fraction of the
//! local data elements is exchanged between nodes, and the communication
//! involves indexed accesses with arbitrary strides". Partition-local
//! numbering is randomized, as mesh partitioners produce, which is what
//! makes boundary accesses *indexed*.

use memcomm_util::rng::Rng;

/// A shared boundary between two partitions: the local indices (under each
/// partition's own numbering) of the interface points, in matching order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// First partition.
    pub a: usize,
    /// Second partition.
    pub b: usize,
    /// `a`-local indices of the interface points.
    pub a_locals: Vec<u32>,
    /// `b`-local indices of the same points.
    pub b_locals: Vec<u32>,
}

/// A 3D grid mesh partitioned into boxes with randomized local numbering.
#[derive(Debug, Clone)]
pub struct PartitionedMesh {
    /// Grid extent per dimension.
    pub grid: [usize; 3],
    /// Partition grid per dimension.
    pub parts: [usize; 3],
    /// Points owned by each partition.
    pub points_per_partition: usize,
    /// All partition interfaces.
    pub interfaces: Vec<Interface>,
}

impl PartitionedMesh {
    /// Generates the synthetic valley mesh: `grid` points cut into
    /// `parts[0]×parts[1]×parts[2]` boxes, with each partition's points
    /// renumbered by a seeded random permutation.
    ///
    /// # Panics
    ///
    /// Panics unless each `parts[d]` divides `grid[d]`.
    pub fn synthetic_valley(grid: [usize; 3], parts: [usize; 3], seed: u64) -> Self {
        for d in 0..3 {
            assert!(
                parts[d] > 0 && grid[d].is_multiple_of(parts[d]),
                "partition grid must divide the point grid in dimension {d}"
            );
        }
        let box_dim = [grid[0] / parts[0], grid[1] / parts[1], grid[2] / parts[2]];
        let points_per_partition = box_dim[0] * box_dim[1] * box_dim[2];
        let mut rng = Rng::new(seed);

        // Random local numbering per partition: numbering[p][cell] = local id.
        let nparts = parts[0] * parts[1] * parts[2];
        let numbering: Vec<Vec<u32>> = (0..nparts)
            .map(|_| {
                let mut ids: Vec<u32> = (0..points_per_partition as u32).collect();
                rng.shuffle(&mut ids);
                ids
            })
            .collect();

        let part_id = |px: usize, py: usize, pz: usize| (px * parts[1] + py) * parts[2] + pz;
        let cell_id = |x: usize, y: usize, z: usize| (x * box_dim[1] + y) * box_dim[2] + z;

        let mut interfaces = Vec::new();
        // Faces between boxes along each dimension.
        for px in 0..parts[0] {
            for py in 0..parts[1] {
                for pz in 0..parts[2] {
                    let a = part_id(px, py, pz);
                    // +x neighbour.
                    if px + 1 < parts[0] {
                        let b = part_id(px + 1, py, pz);
                        let mut a_locals = Vec::new();
                        let mut b_locals = Vec::new();
                        for y in 0..box_dim[1] {
                            for z in 0..box_dim[2] {
                                a_locals.push(numbering[a][cell_id(box_dim[0] - 1, y, z)]);
                                b_locals.push(numbering[b][cell_id(0, y, z)]);
                            }
                        }
                        interfaces.push(Interface {
                            a,
                            b,
                            a_locals,
                            b_locals,
                        });
                    }
                    // +y neighbour.
                    if py + 1 < parts[1] {
                        let b = part_id(px, py + 1, pz);
                        let mut a_locals = Vec::new();
                        let mut b_locals = Vec::new();
                        for x in 0..box_dim[0] {
                            for z in 0..box_dim[2] {
                                a_locals.push(numbering[a][cell_id(x, box_dim[1] - 1, z)]);
                                b_locals.push(numbering[b][cell_id(x, 0, z)]);
                            }
                        }
                        interfaces.push(Interface {
                            a,
                            b,
                            a_locals,
                            b_locals,
                        });
                    }
                    // +z neighbour.
                    if pz + 1 < parts[2] {
                        let b = part_id(px, py, pz + 1);
                        let mut a_locals = Vec::new();
                        let mut b_locals = Vec::new();
                        for x in 0..box_dim[0] {
                            for y in 0..box_dim[1] {
                                a_locals.push(numbering[a][cell_id(x, y, box_dim[2] - 1)]);
                                b_locals.push(numbering[b][cell_id(x, y, 0)]);
                            }
                        }
                        interfaces.push(Interface {
                            a,
                            b,
                            a_locals,
                            b_locals,
                        });
                    }
                }
            }
        }
        PartitionedMesh {
            grid,
            parts,
            points_per_partition,
            interfaces,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.iter().product()
    }

    /// Interfaces touching partition `p`.
    pub fn interfaces_of(&self, p: usize) -> impl Iterator<Item = &Interface> {
        self.interfaces.iter().filter(move |i| i.a == p || i.b == p)
    }

    /// Mean interface size in points (the per-neighbour exchange volume).
    pub fn mean_interface_points(&self) -> f64 {
        if self.interfaces.is_empty() {
            return 0.0;
        }
        self.interfaces
            .iter()
            .map(|i| i.a_locals.len())
            .sum::<usize>() as f64
            / self.interfaces.len() as f64
    }

    /// The fraction of a partition's points that lie on some interface —
    /// the paper's "only a fraction of the local data elements is
    /// exchanged".
    pub fn boundary_fraction(&self, p: usize) -> f64 {
        let mut on_boundary = vec![false; self.points_per_partition];
        for i in self.interfaces_of(p) {
            let locals = if i.a == p { &i.a_locals } else { &i.b_locals };
            for &l in locals {
                on_boundary[l as usize] = true;
            }
        }
        on_boundary.iter().filter(|&&b| b).count() as f64 / self.points_per_partition as f64
    }

    /// Maximum number of neighbours any partition has.
    pub fn max_degree(&self) -> usize {
        (0..self.partitions())
            .map(|p| self.interfaces_of(p).count())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> PartitionedMesh {
        PartitionedMesh::synthetic_valley([24, 24, 24], [4, 4, 4], 42)
    }

    #[test]
    fn partition_counts() {
        let m = mesh();
        assert_eq!(m.partitions(), 64);
        assert_eq!(m.points_per_partition, 6 * 6 * 6);
        // Interior boxes have 6 neighbours.
        assert_eq!(m.max_degree(), 6);
    }

    #[test]
    fn interface_sizes_are_faces() {
        let m = mesh();
        for i in &m.interfaces {
            assert_eq!(i.a_locals.len(), 36, "6x6 box faces");
            assert_eq!(i.a_locals.len(), i.b_locals.len());
        }
        // 3 face directions x 3 internal planes x 16 boxes per plane.
        assert_eq!(m.interfaces.len(), 3 * 3 * 16);
    }

    #[test]
    fn local_numbering_is_irregular() {
        let m = mesh();
        let iface = &m.interfaces[0];
        // A shuffled numbering should not be sorted (astronomically
        // unlikely for 36 entries).
        let mut sorted = iface.a_locals.clone();
        sorted.sort_unstable();
        assert_ne!(
            iface.a_locals, sorted,
            "boundary indices must be indexed, not strided"
        );
    }

    #[test]
    fn boundary_is_a_fraction_of_local_points() {
        let m = mesh();
        let f = m.boundary_fraction(0);
        assert!(f > 0.0 && f < 0.8, "corner partition boundary fraction {f}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = PartitionedMesh::synthetic_valley([12, 12, 12], [2, 2, 2], 7);
        let b = PartitionedMesh::synthetic_valley([12, 12, 12], [2, 2, 2], 7);
        assert_eq!(a.interfaces, b.interfaces);
        let c = PartitionedMesh::synthetic_valley([12, 12, 12], [2, 2, 2], 8);
        assert_ne!(a.interfaces, c.interfaces);
    }

    #[test]
    fn indices_stay_in_range() {
        let m = mesh();
        for i in &m.interfaces {
            assert!(i
                .a_locals
                .iter()
                .chain(&i.b_locals)
                .all(|&l| (l as usize) < m.points_per_partition));
        }
    }
}
