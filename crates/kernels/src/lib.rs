//! # memcomm-kernels — the compiler view and the application kernels
//!
//! The paper motivates the copy-transfer model with the communication a
//! parallelizing (HPF-style) compiler generates. This crate provides that
//! layer and the three application kernels of Section 6:
//!
//! * [`distribution`] — HPF block / cyclic / block-cyclic array
//!   distributions;
//! * [`schedule`] — redistribution schedules: which elements travel between
//!   which nodes, and what memory access pattern each side of the transfer
//!   exhibits (contiguous, strided, or indexed);
//! * [`fft`] — a radix-2 complex FFT (the computation around the paper's
//!   transpose);
//! * [`mesh`] — a synthetic partitioned irregular 3D mesh standing in for
//!   the Quake project's alluvial-valley model (Section 6.1.2);
//! * [`apps`] — the three kernels of Table 6 (2D-FFT transpose, FEM
//!   boundary exchange, SOR halo shift), measured end to end on the
//!   simulated T3D/Paragon with buffer-packing, chained, and PVM-style
//!   communication;
//! * [`netrun`] — the same kernels executed on the sharded discrete-event
//!   network engine, with [`netrun::CongestionModel`] selecting between the
//!   analytic congestion factor and the engine's emergent one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod distribution;
pub mod fft;
pub mod mesh;
pub mod netrun;
pub mod schedule;

pub use apps::{FemKernel, KernelMeasurement, SorKernel, TransposeKernel};
pub use distribution::Distribution;
pub use netrun::{CongestionModel, EngineOptions, Table6Kernel};
