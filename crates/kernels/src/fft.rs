//! Radix-2 complex FFT — the computation surrounding the paper's transpose.
//!
//! A 2D FFT is row FFTs, a transpose, column FFTs (as row FFTs), and a
//! transpose back; the communication-critical step is the transpose
//! (Section 6.1.1). The FFT itself runs with cache locality and is included
//! so the example application is a real 2D FFT, not just its communication.

/// A complex number (two 64-bit floats — the paper's unit of transfer for
/// complex data is 2 words).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    /// Magnitude of the difference to another complex number.
    pub fn dist(self, o: Complex) -> f64 {
        ((self.re - o.re).powi(2) + (self.im - o.im).powi(2)).sqrt()
    }
}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// # Panics
///
/// Panics unless the length is a power of two.
pub fn fft(data: &mut [Complex]) {
    fft_dir(data, false);
}

/// Inverse FFT (normalized by `1/n`).
///
/// # Panics
///
/// Panics unless the length is a power of two.
pub fn ifft(data: &mut [Complex]) {
    fft_dir(data, true);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        v.re /= n;
        v.im /= n;
    }
}

fn fft_dir(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT needs a power-of-two length"
    );
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2].mul(w);
                data[start + k] = u.add(v);
                data[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Performs a full 2D FFT of an `n × n` row-major matrix: row FFTs, a
/// transpose, and "column" FFTs as row FFTs — exactly the structure whose
/// transpose the paper measures.
///
/// The result is left in **transposed** layout (column-major of the usual
/// 2D-FFT result), as distributed implementations keep it.
///
/// # Panics
///
/// Panics unless `n` is a power of two and `data.len() == n * n`.
pub fn fft_2d(data: &mut [Complex], n: usize) {
    assert_eq!(data.len(), n * n, "matrix shape mismatch");
    for row in data.chunks_mut(n) {
        fft(row);
    }
    transpose_in_place(data, n);
    for row in data.chunks_mut(n) {
        fft(row);
    }
}

/// In-place square transpose.
///
/// # Panics
///
/// Panics unless `data.len() == n * n`.
pub fn transpose_in_place(data: &mut [Complex], n: usize) {
    assert_eq!(data.len(), n * n);
    for i in 0..n {
        for j in (i + 1)..n {
            data.swap(i * n + j, j * n + i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (j, x) in input.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    acc = acc.add(x.mul(Complex::new(ang.cos(), ang.sin())));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let input: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut fast = input.clone();
        fft(&mut fast);
        let slow = naive_dft(&input);
        for (a, b) in fast.iter().zip(&slow) {
            assert!(a.dist(*b) < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let input: Vec<Complex> = (0..128)
            .map(|i| Complex::new(i as f64, (i % 7) as f64))
            .collect();
        let mut data = input.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&input) {
            assert!(a.dist(*b) < 1e-9);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut data = vec![Complex::default(); 16];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data);
        for v in &data {
            assert!(v.dist(Complex::new(1.0, 0.0)) < 1e-12);
        }
    }

    #[test]
    fn transpose_round_trips() {
        let n = 8;
        let mut m: Vec<Complex> = (0..n * n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let orig = m.clone();
        transpose_in_place(&mut m, n);
        assert_eq!(m[n], orig[1], "m[1][0] == orig[0][1]");
        transpose_in_place(&mut m, n);
        assert_eq!(m, orig);
    }

    #[test]
    fn fft_2d_separable_check() {
        // 2D FFT of a separable impulse is constant.
        let n = 8;
        let mut data = vec![Complex::default(); n * n];
        data[0] = Complex::new(1.0, 0.0);
        fft_2d(&mut data, n);
        for v in &data {
            assert!(v.dist(Complex::new(1.0, 0.0)) < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex::default(); 12];
        fft(&mut data);
    }
}
