//! HPF-style array distributions.

use std::fmt;

/// How one array dimension of global extent `n` is spread over `p` nodes —
/// the distributions of the HPF standard the paper discusses in
/// Section 2.1. Block and cyclic are the common special cases of
/// block-cyclic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// `BLOCK`: node `k` owns the contiguous range
    /// `[k·⌈n/p⌉, (k+1)·⌈n/p⌉)`.
    Block,
    /// `CYCLIC`: element `i` lives on node `i mod p`.
    Cyclic,
    /// `CYCLIC(b)`: blocks of `b` elements dealt round-robin.
    BlockCyclic(u32),
}

impl Distribution {
    /// The owning node of global element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `i >= n`.
    pub fn owner(self, i: u64, n: u64, p: u64) -> u64 {
        assert!(p > 0 && i < n, "element {i} of {n} over {p} nodes");
        match self {
            Distribution::Block => i / Self::block_size(n, p),
            Distribution::Cyclic => i % p,
            Distribution::BlockCyclic(b) => (i / u64::from(b)) % p,
        }
    }

    /// The node-local index of global element `i`.
    pub fn local_index(self, i: u64, n: u64, p: u64) -> u64 {
        assert!(p > 0 && i < n);
        match self {
            Distribution::Block => i % Self::block_size(n, p),
            Distribution::Cyclic => i / p,
            Distribution::BlockCyclic(b) => {
                let b = u64::from(b);
                (i / (b * p)) * b + i % b
            }
        }
    }

    /// How many elements node `k` owns.
    pub fn local_count(self, k: u64, n: u64, p: u64) -> u64 {
        (0..n).filter(|&i| self.owner(i, n, p) == k).count() as u64
    }

    /// Global index of local element `j` on node `k` (inverse of
    /// [`local_index`](Self::local_index)).
    pub fn global_index(self, k: u64, j: u64, n: u64, p: u64) -> u64 {
        let g = match self {
            Distribution::Block => k * Self::block_size(n, p) + j,
            Distribution::Cyclic => j * p + k,
            Distribution::BlockCyclic(b) => {
                let b = u64::from(b);
                (j / b) * (b * p) + k * b + j % b
            }
        };
        assert!(g < n, "local element {j} does not exist on node {k}");
        g
    }

    fn block_size(n: u64, p: u64) -> u64 {
        n.div_ceil(p)
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distribution::Block => write!(f, "BLOCK"),
            Distribution::Cyclic => write!(f, "CYCLIC"),
            Distribution::BlockCyclic(b) => write!(f, "CYCLIC({b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 64;
    const P: u64 = 4;

    #[test]
    fn block_owns_contiguous_ranges() {
        assert_eq!(Distribution::Block.owner(0, N, P), 0);
        assert_eq!(Distribution::Block.owner(15, N, P), 0);
        assert_eq!(Distribution::Block.owner(16, N, P), 1);
        assert_eq!(Distribution::Block.owner(63, N, P), 3);
    }

    #[test]
    fn cyclic_deals_round_robin() {
        assert_eq!(Distribution::Cyclic.owner(0, N, P), 0);
        assert_eq!(Distribution::Cyclic.owner(1, N, P), 1);
        assert_eq!(Distribution::Cyclic.owner(5, N, P), 1);
    }

    #[test]
    fn block_cyclic_generalizes_both() {
        // CYCLIC(16) over 64/4 == BLOCK.
        for i in 0..N {
            assert_eq!(
                Distribution::BlockCyclic(16).owner(i, N, P),
                Distribution::Block.owner(i, N, P)
            );
        }
        // CYCLIC(1) == CYCLIC.
        for i in 0..N {
            assert_eq!(
                Distribution::BlockCyclic(1).owner(i, N, P),
                Distribution::Cyclic.owner(i, N, P)
            );
        }
    }

    #[test]
    fn local_global_round_trip() {
        for dist in [
            Distribution::Block,
            Distribution::Cyclic,
            Distribution::BlockCyclic(4),
        ] {
            for i in 0..N {
                let k = dist.owner(i, N, P);
                let j = dist.local_index(i, N, P);
                assert_eq!(dist.global_index(k, j, N, P), i, "{dist} at {i}");
            }
        }
    }

    #[test]
    fn counts_add_up() {
        for dist in [
            Distribution::Block,
            Distribution::Cyclic,
            Distribution::BlockCyclic(4),
        ] {
            let total: u64 = (0..P).map(|k| dist.local_count(k, N, P)).sum();
            assert_eq!(total, N);
        }
    }

    #[test]
    fn display_is_hpf_like() {
        assert_eq!(Distribution::Block.to_string(), "BLOCK");
        assert_eq!(Distribution::BlockCyclic(8).to_string(), "CYCLIC(8)");
    }
}
