//! Redistribution schedules: the communication a compiler derives from a
//! pair of distributions (Section 2.1's compiler view).

use memcomm_model::AccessPattern;

use crate::distribution::Distribution;

/// One node-to-node transfer of a redistribution: which local elements the
/// sender reads and where they land on the receiver, in transfer order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferSpec {
    /// Sending node.
    pub from: u64,
    /// Receiving node.
    pub to: u64,
    /// Sender-local indices, in send order.
    pub src_locals: Vec<u64>,
    /// Receiver-local indices, in the same order.
    pub dst_locals: Vec<u64>,
}

impl TransferSpec {
    /// Number of elements moved.
    pub fn len(&self) -> usize {
        self.src_locals.len()
    }

    /// Whether the transfer is empty.
    pub fn is_empty(&self) -> bool {
        self.src_locals.is_empty()
    }

    /// The memory access patterns of the two sides — what the copy-transfer
    /// model calls `x` and `y`.
    pub fn patterns(&self) -> (AccessPattern, AccessPattern) {
        (classify(&self.src_locals), classify(&self.dst_locals))
    }
}

/// Classifies an index sequence as the access pattern a compiler would use
/// (re-exported from [`memcomm_model::classify_offsets`]).
pub fn classify(locals: &[u64]) -> AccessPattern {
    memcomm_model::classify_offsets(locals)
}

/// Computes the full redistribution schedule of a 1D array of `n` elements
/// over `p` nodes from distribution `from` to distribution `to`, ordered by
/// global element index within each pair.
pub fn redistribution(n: u64, p: u64, from: Distribution, to: Distribution) -> Vec<TransferSpec> {
    let mut specs: Vec<Vec<TransferSpec>> = (0..p)
        .map(|s| {
            (0..p)
                .map(|d| TransferSpec {
                    from: s,
                    to: d,
                    src_locals: Vec::new(),
                    dst_locals: Vec::new(),
                })
                .collect()
        })
        .collect();
    for i in 0..n {
        let s = from.owner(i, n, p);
        let d = to.owner(i, n, p);
        if s == d {
            continue;
        }
        let spec = &mut specs[s as usize][d as usize];
        spec.src_locals.push(from.local_index(i, n, p));
        spec.dst_locals.push(to.local_index(i, n, p));
    }
    specs
        .into_iter()
        .flatten()
        .filter(|t| !t.is_empty())
        .collect()
}

/// The transpose schedule of an `n × n` matrix block-distributed by rows
/// over `p` nodes (`b[i][j] = a[j][i]`): node `k` sends to node `q` the
/// patch of its rows that form `q`'s rows of the transpose. Element order
/// follows the sender's rows, so the sender reads short contiguous runs and
/// the receiver stores with stride `n` — the paper's `1Q_n` formulation of
/// the 2D-FFT transpose (Figure 9 a).
///
/// # Panics
///
/// Panics unless `p` divides `n`.
pub fn transpose_schedule(n: u64, p: u64) -> Vec<TransferSpec> {
    assert!(p > 0 && n.is_multiple_of(p), "transpose needs p | n");
    let r = n / p; // rows per node
    let mut out = Vec::new();
    for k in 0..p {
        for q in 0..p {
            if k == q {
                continue;
            }
            let mut src = Vec::with_capacity((r * r) as usize);
            let mut dst = Vec::with_capacity((r * r) as usize);
            for i in 0..r {
                for j in 0..r {
                    // Sender-local a[(k*r + i)][q*r + j] at local row i.
                    src.push(i * n + q * r + j);
                    // Receiver-local b[(q*r + j)][k*r + i] at local row j.
                    dst.push(j * n + k * r + i);
                }
            }
            out.push(TransferSpec {
                from: k,
                to: q,
                src_locals: src,
                dst_locals: dst,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_recognizes_patterns() {
        assert_eq!(classify(&[5, 6, 7, 8]), AccessPattern::Contiguous);
        assert_eq!(classify(&[0, 4, 8, 12]), AccessPattern::Strided(4));
        assert_eq!(classify(&[0, 4, 9, 12]), AccessPattern::Indexed);
        assert_eq!(classify(&[9, 4, 1]), AccessPattern::Indexed);
        assert_eq!(classify(&[3]), AccessPattern::Contiguous);
    }

    #[test]
    fn block_to_cyclic_redistribution_is_strided_reads() {
        let specs = redistribution(64, 4, Distribution::Block, Distribution::Cyclic);
        // Node 0 keeps elements 0,4,8,12 and sends the rest of its block.
        let spec01 = specs
            .iter()
            .find(|t| t.from == 0 && t.to == 1)
            .expect("0 sends to 1");
        // Elements 1, 5, 9, 13: sender-local stride 4, receiver-local
        // contiguous.
        assert_eq!(
            spec01.patterns(),
            (AccessPattern::Strided(4), AccessPattern::Contiguous)
        );
    }

    #[test]
    fn redistribution_conserves_elements() {
        let n = 60;
        let p = 5;
        let specs = redistribution(n, p, Distribution::Block, Distribution::BlockCyclic(3));
        let moved: usize = specs.iter().map(TransferSpec::len).sum();
        let kept = (0..n)
            .filter(|&i| {
                Distribution::Block.owner(i, n, p) == Distribution::BlockCyclic(3).owner(i, n, p)
            })
            .count();
        assert_eq!(moved + kept, n as usize);
    }

    #[test]
    fn identity_redistribution_is_empty() {
        assert!(redistribution(64, 4, Distribution::Block, Distribution::Block).is_empty());
    }

    #[test]
    fn transpose_schedule_covers_all_offnode_patches() {
        let n = 16;
        let p = 4;
        let specs = transpose_schedule(n, p);
        assert_eq!(specs.len(), (p * (p - 1)) as usize);
        let r = n / p;
        for t in &specs {
            assert_eq!(t.len() as u64, r * r);
        }
    }

    #[test]
    fn transpose_receiver_stores_with_stride_n() {
        let n = 16;
        let specs = transpose_schedule(n, 4);
        let t = &specs[0];
        // Within one sender row (a run of r elements), the receiver-local
        // indices step by n — the paper's strided-store formulation.
        let r = (n / 4) as usize;
        for w in t.dst_locals[..r].windows(2) {
            assert_eq!(w[1] - w[0], n);
        }
        // And the sender reads contiguous runs.
        for w in t.src_locals[..r].windows(2) {
            assert_eq!(w[1] - w[0], 1);
        }
    }

    #[test]
    fn transpose_is_its_own_inverse_pairing() {
        let specs = transpose_schedule(16, 4);
        for t in &specs {
            assert!(specs
                .iter()
                .any(|u| u.from == t.to && u.to == t.from && u.len() == t.len()));
        }
    }
}
