//! The application kernels of Section 6 / Table 6.
//!
//! Each kernel measures the throughput of its *communication step* on a
//! simulated machine, per node, exactly as the paper reports: a
//! representative pairwise exchange is co-simulated in detail at the
//! congestion factor the full pattern imposes on the machine's topology
//! (`netsim` derives it), plus the per-message and synchronization costs of
//! the communication layer in use.

use memcomm_commops::{run_exchange, ExchangeConfig, Style};
use memcomm_machines::Machine;
use memcomm_memsim::clock::Cycle;
use memcomm_memsim::scenario;
use memcomm_memsim::{Node, SimError, SimResult};
use memcomm_model::{
    chained_expr, AccessPattern, ChainedPlan, ModelError, RateTable, ReceiveEngine, Throughput,
};
use memcomm_netsim::congestion::{pattern_congestion, scheduled_congestion};
use memcomm_netsim::topology::Topology;
use memcomm_netsim::traffic;

use crate::mesh::PartitionedMesh;

/// How the kernel's communication is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMethod {
    /// Hand-written buffer packing over low-level transfers.
    BufferPacking,
    /// Chained transfers (deposit engine / co-processor receive).
    Chained,
    /// Stock PVM: buffer packing plus system buffering and heavy
    /// per-message overhead.
    Pvm,
}

impl CommMethod {
    fn label(self) -> &'static str {
        match self {
            CommMethod::BufferPacking => "buffer-packing",
            CommMethod::Chained => "chained",
            CommMethod::Pvm => "PVM",
        }
    }

    fn style(self) -> Style {
        match self {
            CommMethod::Chained => Style::Chained,
            _ => Style::BufferPacking,
        }
    }

    fn per_message_cycles(self, machine: &Machine) -> Cycle {
        let us = match self {
            CommMethod::Pvm => 40.0e-6,
            _ => 2.0e-6,
        };
        (us * machine.clock().hz()) as Cycle
    }

    /// Per-iteration synchronization: a dissemination barrier over the
    /// machine's topology, with library-dependent software cost per round.
    fn sync_cycles(self, machine: &Machine) -> Cycle {
        let software_per_round = match self {
            CommMethod::Pvm => (20.0e-6 * machine.clock().hz()) as Cycle,
            _ => (2.0e-6 * machine.clock().hz()) as Cycle,
        };
        memcomm_netsim::barrier_cycles(
            &machine.topology,
            &machine.link(machine.default_congestion),
            software_per_round,
        )
    }
}

/// One measured kernel data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelMeasurement {
    /// Kernel name.
    pub kernel: &'static str,
    /// Communication method label.
    pub method: &'static str,
    /// Per-node throughput of the communication step.
    pub per_node: Throughput,
    /// Congestion factor the traffic pattern imposes.
    pub congestion: f64,
    /// Whether the co-simulated exchange delivered correct data.
    pub verified: bool,
}

/// PVM's extra store-and-forward copies through system buffers: the cost of
/// one contiguous copy of `words` on this machine, simulated.
fn system_copy_cycles(machine: &Machine, words: u64) -> SimResult<Cycle> {
    let mut node = Node::new(machine.node);
    let src = node.alloc_walk(AccessPattern::Contiguous, words, None)?;
    let dst = node.alloc_walk(AccessPattern::Contiguous, words, None)?;
    Ok(scenario::run_local_copy(&mut node, &src, &dst)?.cycles)
}

#[allow(clippy::too_many_arguments)] // one knob per paper-visible parameter
fn measure_round(
    machine: &Machine,
    kernel: &'static str,
    x: AccessPattern,
    y: AccessPattern,
    method: CommMethod,
    words: u64,
    congestion: f64,
    elide_contiguous_copies: bool,
) -> SimResult<(Cycle, KernelMeasurement)> {
    let cfg = ExchangeConfig {
        words,
        congestion: Some(congestion),
        // PVM always copies; hand-written code may elide.
        elide_contiguous_copies: elide_contiguous_copies && method != CommMethod::Pvm,
        ..ExchangeConfig::default()
    };
    let result = run_exchange(machine, x, y, method.style(), &cfg)?;
    let mut round = result.end_cycle + method.per_message_cycles(machine);
    if method == CommMethod::Pvm {
        round += 2 * system_copy_cycles(machine, words)?;
    }
    let m = KernelMeasurement {
        kernel,
        method: method.label(),
        per_node: machine.clock().throughput(words * 8, round),
        congestion,
        verified: result.verified,
    };
    Ok((round, m))
}

/// The 2D-FFT transpose kernel (Section 6.1.1): an `n × n` complex matrix
/// block-distributed by rows over the machine's nodes; the transpose is an
/// all-to-all personalized exchange of `(n/p)²` complex patches, with
/// contiguous loads and stride-`n` stores (`1Q_n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransposeKernel {
    /// Matrix dimension.
    pub n: u64,
    /// Words per matrix element (2 for complex).
    pub words_per_element: u64,
}

impl TransposeKernel {
    /// The paper's instance: a 1024×1024 complex 2D FFT on 64 nodes.
    pub fn paper_instance() -> Self {
        TransposeKernel {
            n: 1024,
            words_per_element: 2,
        }
    }

    /// Payload words of one pairwise patch on `p` nodes. Assumes a valid
    /// decomposition — [`try_patch_words`](Self::try_patch_words) is the
    /// checked form every kernel path goes through.
    pub fn patch_words(&self, p: u64) -> u64 {
        (self.n / p) * (self.n / p) * self.words_per_element
    }

    /// Validates a node count for this kernel: the XOR schedule needs a
    /// power of two, and the patch decomposition needs `p` to divide `n` —
    /// anything else used to truncate silently into a wrong patch size.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] describing the invalid decomposition.
    pub fn validate_nodes(&self, p: u64) -> SimResult<()> {
        if p < 2 || !p.is_power_of_two() {
            return Err(SimError::Protocol {
                detail: format!("transpose needs a power-of-two node count >= 2, got {p}"),
                at: 0,
            });
        }
        if self.n < 2 || !self.n.is_multiple_of(p) {
            return Err(SimError::Protocol {
                detail: format!(
                    "transpose patches need p | n: n = {} does not split over p = {p} nodes",
                    self.n
                ),
                at: 0,
            });
        }
        Ok(())
    }

    /// Checked patch size: [`patch_words`](Self::patch_words) behind
    /// [`validate_nodes`](Self::validate_nodes).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for an invalid decomposition.
    pub fn try_patch_words(&self, p: u64) -> SimResult<u64> {
        self.validate_nodes(p)?;
        Ok(self.patch_words(p))
    }

    /// The XOR-schedule rounds of the all-to-all on `topo` — what both the
    /// analytic congestion factor and the event engine execute.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for an invalid decomposition.
    pub fn rounds(&self, topo: &Topology) -> SimResult<Vec<Vec<traffic::Flow>>> {
        let p = topo.len() as u64;
        let patch = self.try_patch_words(p)?;
        Ok(traffic::aapc_xor_schedule(p as usize, patch * 8))
    }

    /// The scheduled all-to-all congestion on an explicit topology/port
    /// configuration (worst round of the XOR schedule).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for an invalid decomposition.
    pub fn congestion_on(&self, topo: &Topology, nodes_per_port: u32) -> SimResult<f64> {
        Ok(scheduled_congestion(topo, &self.rounds(topo)?, nodes_per_port).factor)
    }

    /// The congestion of the scheduled all-to-all on this machine's
    /// topology (worst round of the XOR schedule, including port sharing).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when the matrix does not decompose over the
    /// machine's node count.
    pub fn congestion(&self, machine: &Machine) -> SimResult<f64> {
        self.congestion_on(&machine.topology, machine.nodes_per_port)
    }

    /// Measures the communication step per node.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from the co-simulated exchange.
    pub fn measure(&self, machine: &Machine, method: CommMethod) -> SimResult<KernelMeasurement> {
        let p = machine.topology.len() as u64;
        let congestion = self.congestion(machine)?;
        self.measure_at(machine, method, p, congestion)
    }

    /// Measures at an explicit node count and congestion factor — the entry
    /// point the event engine uses to substitute its own simulated factor
    /// for the analytic one.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from the co-simulated exchange.
    pub fn measure_at(
        &self,
        machine: &Machine,
        method: CommMethod,
        p: u64,
        congestion: f64,
    ) -> SimResult<KernelMeasurement> {
        let words = self.try_patch_words(p)?;
        // The transpose patch is short contiguous runs, not one block: the
        // gather copy is genuinely needed (the paper models it as 1C1).
        let (_, m) = measure_round(
            machine,
            "Transpose",
            AccessPattern::Contiguous,
            AccessPattern::strided(self.n as u32).expect("n >= 2"),
            method,
            words,
            congestion,
            false,
        )?;
        Ok(m)
    }

    /// Measures the *entire* transpose — all `p − 1` rounds of the XOR
    /// schedule, each co-simulated at its own round congestion — and
    /// returns the aggregate per-node rate. [`measure`](Self::measure) uses
    /// one representative round at the worst round congestion; this method
    /// is the long-form validation that the shortcut is sound.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from any round's exchange.
    pub fn measure_full(
        &self,
        machine: &Machine,
        method: CommMethod,
    ) -> SimResult<KernelMeasurement> {
        let p = machine.topology.len();
        let patch = self.try_patch_words(p as u64)?;
        let rounds = traffic::aapc_xor_schedule(p, patch * 8);
        let mut total_cycles: Cycle = 0;
        let mut verified = true;
        let mut worst = 1.0f64;
        for round in &rounds {
            let congestion = pattern_congestion(&machine.topology, round, machine.nodes_per_port)
                .factor
                .max(1.0);
            worst = worst.max(congestion);
            let (cycles, m) = measure_round(
                machine,
                "Transpose",
                AccessPattern::Contiguous,
                AccessPattern::strided(self.n as u32).expect("n >= 2"),
                method,
                patch,
                congestion,
                false,
            )?;
            total_cycles += cycles;
            verified &= m.verified;
        }
        let total_words = patch * rounds.len() as u64;
        Ok(KernelMeasurement {
            kernel: "Transpose",
            method: method.label(),
            per_node: machine.clock().throughput(total_words * 8, total_cycles),
            congestion: worst,
            verified,
        })
    }

    /// The copy-transfer model's chained estimate for this kernel, from a
    /// measured rate table.
    ///
    /// # Errors
    ///
    /// Propagates missing-rate errors from the table.
    pub fn model_chained(&self, rates: &RateTable) -> Result<Throughput, ModelError> {
        chained_expr(
            AccessPattern::Contiguous,
            AccessPattern::strided(self.n as u32).expect("n >= 2"),
            ChainedPlan {
                recv: ReceiveEngine::Deposit,
            },
        )?
        .estimate(rates)
    }
}

/// The FEM boundary-exchange kernel (Section 6.1.2): a partitioned
/// irregular mesh where each solver step exchanges interface values with
/// every neighbour partition through index arrays (`ωQ'ω`).
#[derive(Debug, Clone)]
pub struct FemKernel {
    /// The partitioned mesh.
    pub mesh: PartitionedMesh,
}

impl FemKernel {
    /// A 110k-point synthetic valley over 64 partitions, sized so each
    /// interface is a few hundred words, like the Quake mesh's partitions.
    pub fn paper_instance() -> Self {
        FemKernel {
            mesh: PartitionedMesh::synthetic_valley([48, 48, 48], [4, 4, 4], 1995),
        }
    }

    /// Words exchanged with one neighbour (the mean interface size).
    pub fn exchange_words(&self) -> u64 {
        self.mesh.mean_interface_points() as u64
    }

    /// The per-direction phase rounds of the boundary exchange on `topo`
    /// (one shift per topology direction, as solvers schedule it) — shared
    /// by the analytic factor and the event engine.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when the mesh partition count does not match
    /// the topology's node count.
    pub fn rounds(&self, topo: &Topology) -> SimResult<Vec<Vec<traffic::Flow>>> {
        if self.mesh.partitions() != topo.len() {
            return Err(SimError::Protocol {
                detail: format!(
                    "FEM mesh has {} partitions but the topology has {} nodes",
                    self.mesh.partitions(),
                    topo.len()
                ),
                at: 0,
            });
        }
        let bytes = self.exchange_words() * 8;
        let all = traffic::neighbor_exchange(topo, bytes);
        // Phase = all flows with the same (coordinate delta) direction; for
        // a shift on a torus each phase is a permutation. A 2-wide torus
        // ring has no -1 direction (hop deltas tie positive), so that phase
        // is empty and is dropped rather than scheduled as a no-op round.
        Ok((0..topo.dims().len())
            .flat_map(|dim| [-1i64, 1].into_iter().map(move |step| (dim, step)))
            .map(|(dim, step)| {
                all.iter()
                    .copied()
                    .filter(|f| {
                        let ca = topo.coords(f.src);
                        let cb = topo.coords(f.dst);
                        (0..topo.dims().len()).all(|d| {
                            let delta = topo.hop_delta(ca[d], cb[d], d);
                            if d == dim {
                                delta == step
                            } else {
                                delta == 0
                            }
                        })
                    })
                    .collect()
            })
            .filter(|phase: &Vec<traffic::Flow>| !phase.is_empty())
            .collect())
    }

    /// Congestion of the phased exchange on an explicit topology/port
    /// configuration; the factor is the worst phase.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on a mesh/topology size mismatch.
    pub fn congestion_on(&self, topo: &Topology, nodes_per_port: u32) -> SimResult<f64> {
        Ok(scheduled_congestion(topo, &self.rounds(topo)?, nodes_per_port).factor)
    }

    /// Congestion of the neighbour-exchange pattern on the machine. The
    /// exchange is scheduled in per-direction phases (one shift per
    /// topology direction), as solvers do; the factor is the worst phase.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when the mesh was partitioned for a different
    /// node count than the machine has.
    pub fn congestion(&self, machine: &Machine) -> SimResult<f64> {
        self.congestion_on(&machine.topology, machine.nodes_per_port)
    }

    /// Measures the boundary-exchange step per node.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from the co-simulated exchange.
    pub fn measure(&self, machine: &Machine, method: CommMethod) -> SimResult<KernelMeasurement> {
        let congestion = self.congestion(machine)?;
        self.measure_at(machine, method, congestion)
    }

    /// Measures at an explicit congestion factor (the event engine
    /// substitutes its simulated factor here).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from the co-simulated exchange.
    pub fn measure_at(
        &self,
        machine: &Machine,
        method: CommMethod,
        congestion: f64,
    ) -> SimResult<KernelMeasurement> {
        let (_, m) = measure_round(
            machine,
            "FEM",
            AccessPattern::Indexed,
            AccessPattern::Indexed,
            method,
            self.exchange_words(),
            congestion,
            false,
        )?;
        Ok(m)
    }

    /// The model's chained estimate (`ωQ'ω`).
    ///
    /// # Errors
    ///
    /// Propagates missing-rate errors from the table.
    pub fn model_chained(&self, rates: &RateTable) -> Result<Throughput, ModelError> {
        chained_expr(
            AccessPattern::Indexed,
            AccessPattern::Indexed,
            ChainedPlan {
                recv: ReceiveEngine::Deposit,
            },
        )?
        .estimate(rates)
    }
}

/// The SOR halo-shift kernel (Section 6.1.3): contiguous overlap rows
/// exchanged with the two shift neighbours after every relaxation, plus a
/// synchronization — many small messages, so fixed costs dominate and
/// chaining buys little (the paper's point about the model-vs-measured gap
/// for SOR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SorKernel {
    /// Matrix dimension (halo row length in words).
    pub n: u64,
}

impl SorKernel {
    /// The paper's 256×256 instance.
    pub fn paper_instance() -> Self {
        SorKernel { n: 256 }
    }

    /// Validates this kernel against a topology: the halo shift needs a
    /// neighbour to shift to and a non-empty halo row.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] describing the invalid configuration.
    pub fn validate_on(&self, topo: &Topology) -> SimResult<()> {
        if topo.len() < 2 {
            return Err(SimError::Protocol {
                detail: format!("SOR shift needs at least 2 nodes, got {}", topo.len()),
                at: 0,
            });
        }
        if self.n == 0 {
            return Err(SimError::Protocol {
                detail: "SOR halo row must be non-empty".into(),
                at: 0,
            });
        }
        Ok(())
    }

    /// The two sequential halo shifts of one relaxation (up then down) —
    /// the rounds the event engine executes.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for an invalid configuration.
    pub fn rounds(&self, topo: &Topology) -> SimResult<Vec<Vec<traffic::Flow>>> {
        self.validate_on(topo)?;
        let bytes = self.n * 8;
        Ok(vec![
            traffic::cyclic_shift(topo, 1, bytes),
            traffic::cyclic_shift(topo, topo.len() - 1, bytes),
        ])
    }

    /// Congestion of the shift pattern on an explicit topology/port
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for an invalid configuration.
    pub fn congestion_on(&self, topo: &Topology, nodes_per_port: u32) -> SimResult<f64> {
        self.validate_on(topo)?;
        let flows = traffic::cyclic_shift(topo, 1, self.n * 8);
        Ok(pattern_congestion(topo, &flows, nodes_per_port).factor)
    }

    /// Congestion of the shift pattern.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for an invalid configuration.
    pub fn congestion(&self, machine: &Machine) -> SimResult<f64> {
        self.congestion_on(&machine.topology, machine.nodes_per_port)
    }

    /// Measures the halo exchange per node: two sequential row exchanges
    /// plus the iteration synchronization; the reported rate is one halo
    /// row over the full communication phase (the paper's per-node
    /// accounting).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from the co-simulated exchange.
    pub fn measure(&self, machine: &Machine, method: CommMethod) -> SimResult<KernelMeasurement> {
        let congestion = self.congestion(machine)?;
        self.measure_at(machine, method, congestion)
    }

    /// Measures at an explicit congestion factor (the event engine
    /// substitutes its simulated factor here).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from the co-simulated exchange.
    pub fn measure_at(
        &self,
        machine: &Machine,
        method: CommMethod,
        congestion: f64,
    ) -> SimResult<KernelMeasurement> {
        // Halo rows are contiguous: a hand-written buffer-packing SOR does
        // not copy them, which is why the paper's Table 6 shows chained and
        // buffer packing nearly equal for SOR.
        let (round, first) = measure_round(
            machine,
            "SOR",
            AccessPattern::Contiguous,
            AccessPattern::Contiguous,
            method,
            self.n,
            congestion,
            true,
        )?;
        let iteration = 2 * round + method.sync_cycles(machine);
        Ok(KernelMeasurement {
            per_node: machine.clock().throughput(self.n * 8, iteration),
            ..first
        })
    }

    /// The model's chained estimate (`1Q'1`), which ignores the per-message
    /// and synchronization costs — the paper's own Table 6 shows the same
    /// large model-vs-measured gap for SOR.
    ///
    /// # Errors
    ///
    /// Propagates missing-rate errors from the table.
    pub fn model_chained(&self, rates: &RateTable) -> Result<Throughput, ModelError> {
        chained_expr(
            AccessPattern::Contiguous,
            AccessPattern::Contiguous,
            ChainedPlan {
                recv: ReceiveEngine::Deposit,
            },
        )?
        .estimate(rates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_patch_matches_paper() {
        let k = TransposeKernel::paper_instance();
        // 16x16 complex patch = 512 words on 64 nodes.
        assert_eq!(k.patch_words(64), 512);
    }

    #[test]
    fn congestion_factors_are_reasonable() {
        let t3d = Machine::t3d();
        let transpose = TransposeKernel::paper_instance().congestion(&t3d).unwrap();
        assert!(
            (2.0..=4.0).contains(&transpose),
            "transpose congestion {transpose}"
        );
        let sor = SorKernel::paper_instance().congestion(&t3d).unwrap();
        assert!((2.0..=2.5).contains(&sor), "shift congestion {sor}");
        let paragon = Machine::paragon();
        let sor_p = SorKernel::paper_instance().congestion(&paragon).unwrap();
        assert!(
            sor_p >= 1.0 && sor_p <= sor,
            "no port sharing on the Paragon"
        );
    }

    #[test]
    fn invalid_decompositions_are_protocol_errors() {
        let t3d = Machine::t3d();
        // 100 is not a multiple of 64: the old code truncated (100/64 = 1)
        // and priced a 1x1 patch; now it refuses.
        let bad = TransposeKernel {
            n: 100,
            words_per_element: 2,
        };
        assert!(matches!(
            bad.congestion(&t3d),
            Err(SimError::Protocol { .. })
        ));
        assert!(matches!(
            bad.measure(&t3d, CommMethod::Chained),
            Err(SimError::Protocol { .. })
        ));
        // A non-power-of-two node count can't run the XOR schedule.
        let k = TransposeKernel::paper_instance();
        assert!(matches!(
            k.try_patch_words(48),
            Err(SimError::Protocol { .. })
        ));
        assert!(k.try_patch_words(64).is_ok());
        // A FEM mesh partitioned for 64 nodes cannot run on 16.
        let fem = FemKernel::paper_instance();
        let small = Topology::torus(&[4, 4]);
        assert!(matches!(fem.rounds(&small), Err(SimError::Protocol { .. })));
        // SOR needs a neighbour.
        let sor = SorKernel::paper_instance();
        let lone = Topology::torus(&[1]);
        assert!(matches!(
            sor.congestion_on(&lone, 1),
            Err(SimError::Protocol { .. })
        ));
    }

    #[test]
    fn fem_congestion_generalizes_to_any_even_dim_torus() {
        // Scaled power-of-two tori hit 2-wide rings ([2,2,2] at 8 nodes,
        // [4,4,2] at 32); the duplicated ±1 exchange flows used to double
        // the worst-phase factor to 4 there. With shared ports (T3D npp=2)
        // every even-dim torus must price the phased halo exchange at the
        // port-sharing factor 2 — including non-power-of-two node counts.
        for dims in [
            vec![2u32, 2, 2],
            vec![4, 2, 2],
            vec![4, 4, 2],
            vec![6, 4, 2],
            vec![6, 6, 2],
        ] {
            let topo = Topology::torus(&dims);
            let parts = [dims[0] as usize, dims[1] as usize, dims[2] as usize];
            let fem = FemKernel {
                mesh: PartitionedMesh::synthetic_valley([48, 48, 48], parts, 1995),
            };
            let f = fem.congestion_on(&topo, 2).unwrap();
            assert!(
                (f - 2.0).abs() < 1e-9,
                "phased exchange on {dims:?} priced at {f}, want 2.0"
            );
            // Every scheduled phase is a permutation: at most one flow per
            // source, and no empty rounds.
            for phase in fem.rounds(&topo).unwrap() {
                assert!(!phase.is_empty());
                let srcs: std::collections::HashSet<_> = phase.iter().map(|f| f.src).collect();
                assert_eq!(srcs.len(), phase.len(), "{dims:?}: phase not a permutation");
            }
        }
    }

    #[test]
    fn chained_beats_buffer_packing_beats_pvm_on_t3d() {
        let t3d = Machine::t3d();
        let k = TransposeKernel::paper_instance();
        let bp = k.measure(&t3d, CommMethod::BufferPacking).unwrap();
        let ch = k.measure(&t3d, CommMethod::Chained).unwrap();
        let pvm = k.measure(&t3d, CommMethod::Pvm).unwrap();
        assert!(bp.verified && ch.verified && pvm.verified);
        assert!(
            ch.per_node > bp.per_node && bp.per_node > pvm.per_node,
            "chained {} > bp {} > pvm {}",
            ch.per_node,
            bp.per_node,
            pvm.per_node
        );
    }

    #[test]
    fn full_transpose_agrees_with_the_representative_round() {
        let t3d = Machine::t3d();
        let k = TransposeKernel::paper_instance();
        let full = k.measure_full(&t3d, CommMethod::Chained).unwrap();
        let single = k.measure(&t3d, CommMethod::Chained).unwrap();
        assert!(full.verified);
        let ratio = full.per_node.as_mbps() / single.per_node.as_mbps();
        assert!(
            (0.85..1.25).contains(&ratio),
            "full {} vs representative {} (ratio {ratio:.2})",
            full.per_node,
            single.per_node
        );
    }

    #[test]
    fn fem_exchange_is_indexed_and_small() {
        let k = FemKernel::paper_instance();
        assert_eq!(k.mesh.partitions(), 64);
        assert_eq!(k.exchange_words(), 144, "12x12 faces");
        let t3d = Machine::t3d();
        let ch = k.measure(&t3d, CommMethod::Chained).unwrap();
        let bp = k.measure(&t3d, CommMethod::BufferPacking).unwrap();
        assert!(ch.verified && bp.verified);
        assert!(ch.per_node > bp.per_node);
    }

    #[test]
    fn sor_is_overhead_dominated() {
        let t3d = Machine::t3d();
        let k = SorKernel::paper_instance();
        let ch = k.measure(&t3d, CommMethod::Chained).unwrap();
        let bp = k.measure(&t3d, CommMethod::BufferPacking).unwrap();
        // Chained helps only marginally for contiguous small messages.
        let ratio = ch.per_node.as_mbps() / bp.per_node.as_mbps();
        assert!((0.95..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn model_estimates_exceed_sor_measurement() {
        // The paper's Table 6: SOR chained model 68.1 vs measured 27.9 —
        // fixed costs the model ignores. The same structural gap must
        // appear here.
        let t3d = Machine::t3d();
        let rates = memcomm_machines::microbench::measure_table(&t3d, 4096).unwrap();
        let k = SorKernel::paper_instance();
        let model = k.model_chained(&rates).unwrap();
        let measured = k.measure(&t3d, CommMethod::Chained).unwrap();
        assert!(model.as_mbps() > 1.8 * measured.per_node.as_mbps());
    }
}
