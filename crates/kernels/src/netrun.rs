//! Running the Table 6 kernels on the event-driven network engine.
//!
//! The kernels price their communication step by composing a co-simulated
//! pairwise exchange with a *congestion factor*. Historically that factor
//! came only from the closed-form flow analysis
//! ([`netsim::congestion`](memcomm_netsim::congestion)); this module adds a
//! second, independent source: the sharded discrete-event engine
//! ([`netsim::engine`](memcomm_netsim::engine)) actually executes the
//! kernel's communication rounds on the full topology and reports the
//! *emergent* serialization it observed. [`CongestionModel`] selects the
//! source; the analytic path remains the default and is byte-identical to
//! the pre-engine behaviour.

use std::collections::HashMap;

use memcomm_machines::Machine;
use memcomm_memsim::clock::Cycle;
use memcomm_memsim::fault::FaultPlan;
use memcomm_memsim::nic::NetWord;
use memcomm_memsim::SimResult;
use memcomm_netsim::adversary::{self, AdversaryConfig};
use memcomm_netsim::engine::{self, EngineConfig};
use memcomm_netsim::topology::Topology;
use memcomm_netsim::traffic::Flow;

use crate::apps::{CommMethod, FemKernel, KernelMeasurement, SorKernel, TransposeKernel};

/// Knobs of an event-engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineOptions {
    /// Simulate this many nodes instead of the machine's own count (scaled
    /// via [`engine::scaled_topology`]); must be a power of two.
    pub nodes: Option<usize>,
    /// Worker threads for the shard fan-out (0 = process-wide setting).
    /// Results never depend on this.
    pub jobs: usize,
    /// Shard count (0 = auto: about two per worker). Results never depend
    /// on this either — the engine's stage-major fold keeps digests
    /// byte-identical at any value.
    pub shards: usize,
    /// Keep full event streams (tests pin event-order equality with this).
    pub record_events: bool,
    /// Telemetry sampling interval in cycles (0 = off). Results never
    /// depend on this — sampling only adds outputs.
    pub sample_every: Cycle,
    /// Run on the engine's retired heap scheduler instead of the timing
    /// wheel (results are byte-identical; the perf harness times both).
    pub reference_scheduler: bool,
}

/// Where a kernel's congestion factor comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CongestionModel {
    /// The closed-form flow analysis (the paper's reduction; the default).
    #[default]
    Analytic,
    /// The sharded discrete-event engine.
    Event(EngineOptions),
}

/// The engine configuration matching a machine's link, NIC, and port
/// parameters, with memory pacing left unpaced (the NIC saturated) so the
/// run measures pure network contention.
pub fn engine_config(machine: &Machine) -> EngineConfig {
    let mut cfg = EngineConfig::new(machine.link(1.0), machine.node);
    cfg.nodes_per_port = machine.nodes_per_port;
    cfg
}

/// The topology an engine run simulates: the machine's own, or a scaled
/// variant with the same rank and wrap-ness.
///
/// # Errors
///
/// [`memcomm_memsim::SimError::Protocol`] for a non-power-of-two override.
pub fn engine_topology(machine: &Machine, nodes: Option<usize>) -> SimResult<Topology> {
    match nodes {
        None => Ok(machine.topology.clone()),
        Some(n) => engine::scaled_topology(&machine.topology, n),
    }
}

/// What an engine execution of a kernel's rounds observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineRun {
    /// Emergent congestion: the worst round's serialization over the ideal
    /// wire time of its widest source, clamped at 1.
    pub factor: f64,
    /// Total cycles across all rounds (rounds are barrier-separated).
    pub cycles: Cycle,
    /// Cycles of the slowest round.
    pub worst_round_cycles: Cycle,
    /// Total link traversals.
    pub flit_hops: u64,
    /// Total conservative windows executed.
    pub windows: u64,
    /// Words delivered.
    pub words: u64,
    /// Event-stream digest (identical at any worker count).
    pub digest: u64,
    /// Deepest event backlog any round reached (see
    /// [`memcomm_netsim::engine::EngineOutcome::peak_queue_depth`]).
    pub peak_queue_depth: u64,
}

/// Executes `rounds` on the engine and derives the emergent congestion
/// factor.
///
/// The factor bridges the two worlds: the engine measures a round makespan
/// `T`; subtracting the pipeline fill (`(max_hops + 2)` stages of wire +
/// latency) and dividing by the ideal serialization time `W·wt` of the
/// round's widest source yields the effective multiplier the topology
/// imposed — directly comparable to the analytic
/// [`scheduled_congestion`](memcomm_netsim::congestion::scheduled_congestion)
/// factor, because the per-word framing cancels in the ratio.
///
/// # Errors
///
/// Propagates engine failures (deadlock, watchdog, invalid flows).
pub fn run_rounds(
    machine: &Machine,
    topo: &Topology,
    rounds: &[Vec<Flow>],
    opts: &EngineOptions,
) -> SimResult<EngineRun> {
    let mut cfg = engine_config(machine);
    cfg.jobs = opts.jobs;
    cfg.shards = opts.shards;
    cfg.record_events = opts.record_events;
    cfg.sample_every = opts.sample_every;
    cfg.reference_scheduler = opts.reference_scheduler;
    let out = engine::run_schedule(topo, rounds, &cfg)?;

    let wt = cfg.link.word_cycles(&NetWord::data(0));
    let latency = cfg.link.latency_cycles as f64;
    let mut factor = 1.0f64;
    let mut worst_round_cycles = 0;
    let mut words = 0;
    let mut flit_hops = 0;
    let mut windows = 0;
    for (flows, r) in rounds.iter().zip(&out.rounds) {
        words += r.words;
        flit_hops += r.flit_hops;
        windows += r.windows;
        worst_round_cycles = worst_round_cycles.max(r.cycles);
        let mut per_src: HashMap<usize, u64> = HashMap::new();
        let mut max_hops = 0u64;
        for f in flows {
            if f.src == f.dst || f.bytes == 0 {
                continue;
            }
            *per_src.entry(f.src).or_default() += f.bytes.div_ceil(8);
            max_hops = max_hops.max(topo.distance(f.src, f.dst));
        }
        let Some(widest) = per_src.values().copied().max() else {
            continue;
        };
        let fill = (max_hops + 2) as f64 * (wt + latency);
        let round_factor = ((r.cycles as f64 - fill) / (widest as f64 * wt)).max(1.0);
        factor = factor.max(round_factor);
    }
    Ok(EngineRun {
        factor,
        cycles: out.cycles,
        worst_round_cycles,
        flit_hops,
        windows,
        words,
        digest: out.digest,
        peak_queue_depth: out.peak_queue_depth,
    })
}

/// One of the three Table 6 kernels, ready to run under either congestion
/// model.
#[derive(Debug, Clone)]
pub enum Table6Kernel {
    /// The 2D-FFT transpose (all-to-all personalized exchange).
    Transpose(TransposeKernel),
    /// The FEM boundary exchange (phased neighbour shifts).
    Fem(FemKernel),
    /// The SOR halo shift (two sequential cyclic shifts).
    Sor(SorKernel),
}

impl Table6Kernel {
    /// The kernel's Table 6 row label.
    pub fn name(&self) -> &'static str {
        match self {
            Table6Kernel::Transpose(_) => "Transpose",
            Table6Kernel::Fem(_) => "FEM",
            Table6Kernel::Sor(_) => "SOR",
        }
    }

    /// The kernel's communication rounds on `topo`.
    ///
    /// # Errors
    ///
    /// [`memcomm_memsim::SimError::Protocol`] for configurations that do
    /// not decompose over the topology.
    pub fn rounds(&self, topo: &Topology) -> SimResult<Vec<Vec<Flow>>> {
        match self {
            Table6Kernel::Transpose(k) => k.rounds(topo),
            Table6Kernel::Fem(k) => k.rounds(topo),
            Table6Kernel::Sor(k) => k.rounds(topo),
        }
    }

    /// The analytic congestion factor on an explicit topology.
    ///
    /// # Errors
    ///
    /// [`memcomm_memsim::SimError::Protocol`] on invalid decompositions.
    pub fn analytic_congestion(&self, machine: &Machine, topo: &Topology) -> SimResult<f64> {
        match self {
            Table6Kernel::Transpose(k) => k.congestion_on(topo, machine.nodes_per_port),
            Table6Kernel::Fem(k) => k.congestion_on(topo, machine.nodes_per_port),
            Table6Kernel::Sor(k) => k.congestion_on(topo, machine.nodes_per_port),
        }
    }

    /// The congestion factor under the selected model.
    ///
    /// # Errors
    ///
    /// Propagates engine failures and invalid decompositions.
    pub fn congestion_with(&self, machine: &Machine, model: &CongestionModel) -> SimResult<f64> {
        match model {
            CongestionModel::Analytic => self.analytic_congestion(machine, &machine.topology),
            CongestionModel::Event(opts) => {
                let topo = engine_topology(machine, opts.nodes)?;
                let rounds = self.rounds(&topo)?;
                Ok(run_rounds(machine, &topo, &rounds, opts)?.factor)
            }
        }
    }

    /// Prices the kernel's co-simulated exchange at an explicit node count
    /// and congestion factor.
    ///
    /// # Errors
    ///
    /// Propagates exchange simulation failures.
    pub fn measure_at(
        &self,
        machine: &Machine,
        method: CommMethod,
        p: u64,
        congestion: f64,
    ) -> SimResult<KernelMeasurement> {
        match self {
            Table6Kernel::Transpose(k) => k.measure_at(machine, method, p, congestion),
            Table6Kernel::Fem(k) => k.measure_at(machine, method, congestion),
            Table6Kernel::Sor(k) => k.measure_at(machine, method, congestion),
        }
    }

    /// Measures the kernel's communication step under the selected model:
    /// the co-simulated exchange is priced at the analytic factor
    /// (`Analytic`) or at the factor the event engine actually observed
    /// (`Event`).
    ///
    /// # Errors
    ///
    /// Propagates engine and exchange simulation failures.
    pub fn measure_with(
        &self,
        machine: &Machine,
        method: CommMethod,
        model: &CongestionModel,
    ) -> SimResult<KernelMeasurement> {
        let (p, congestion) = match model {
            CongestionModel::Analytic => (
                machine.topology.len() as u64,
                self.congestion_with(machine, model)?,
            ),
            CongestionModel::Event(opts) => {
                let topo = engine_topology(machine, opts.nodes)?;
                (topo.len() as u64, self.congestion_with(machine, model)?)
            }
        };
        self.measure_at(machine, method, p, congestion)
    }
}

/// Result of one adversarial engine run: the compiled schedule's size plus
/// the full engine outcome (retry counters, degraded accounting, per-class
/// latency tails — everything `repro --adversary` reports).
#[derive(Debug, Clone)]
pub struct AdversaryRun {
    /// Network flows the generator compiled.
    pub flows: u64,
    /// The engine outcome, with per-class latency recorded.
    pub outcome: engine::EngineOutcome,
}

/// Compiles an adversarial traffic pattern on the machine's (optionally
/// scaled) topology and runs it to completion under the given fault plan
/// and retry policy, recording per-class inject→eject latency. The
/// generator's classes become the engine's flow classes, so the outcome's
/// `flow_latency` splits background from adversarial traffic (see
/// [`memcomm_netsim::adversary::CLASS_NAMES`]).
///
/// # Errors
///
/// Propagates topology-scaling and engine failures. A run the fault plan
/// wedges is *not* an error: it returns `Ok` with
/// [`engine::Degraded`] accounting in the outcome.
pub fn run_adversary(
    machine: &Machine,
    adv: &AdversaryConfig,
    fault: FaultPlan,
    retry: engine::RetryPolicy,
    opts: &EngineOptions,
) -> SimResult<AdversaryRun> {
    let topo = engine_topology(machine, opts.nodes)?;
    let traffic = adversary::generate(&topo, adv);
    let mut cfg = engine_config(machine);
    cfg.jobs = opts.jobs;
    cfg.shards = opts.shards;
    cfg.record_events = opts.record_events;
    cfg.sample_every = opts.sample_every;
    cfg.reference_scheduler = opts.reference_scheduler;
    cfg.fault = fault;
    cfg.retry = retry;
    cfg.flow_classes = traffic.classes;
    cfg.record_latency = true;
    let outcome = engine::run_flows(&topo, &traffic.flows, &cfg)?;
    Ok(AdversaryRun {
        flows: traffic.flows.len() as u64,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_model_matches_the_plain_kernel_paths() {
        let t3d = Machine::t3d();
        let k = Table6Kernel::Sor(SorKernel::paper_instance());
        let via_model = k.congestion_with(&t3d, &CongestionModel::Analytic).unwrap();
        let direct = SorKernel::paper_instance().congestion(&t3d).unwrap();
        assert_eq!(via_model, direct);
        let m = k
            .measure_with(&t3d, CommMethod::Chained, &CongestionModel::Analytic)
            .unwrap();
        let direct_m = SorKernel::paper_instance()
            .measure(&t3d, CommMethod::Chained)
            .unwrap();
        assert_eq!(m, direct_m);
    }

    #[test]
    fn adversary_bridge_runs_and_classifies() {
        use memcomm_memsim::fault::FaultConfig;
        use memcomm_netsim::adversary::AdversaryKind;
        let t3d = Machine::t3d();
        let opts = EngineOptions {
            nodes: Some(16),
            jobs: 1,
            shards: 0,
            record_events: false,
            sample_every: 0,
            reference_scheduler: false,
        };
        let adv = AdversaryConfig {
            kind: AdversaryKind::RetryStorm,
            base_bytes: 64,
            ..AdversaryConfig::default()
        };
        let fault = FaultPlan::new(FaultConfig {
            seed: 7,
            rate: 0.1,
            ..FaultConfig::default()
        });
        let run = run_adversary(
            &t3d,
            &adv,
            fault,
            memcomm_netsim::engine::RetryPolicy::default(),
            &opts,
        )
        .unwrap();
        assert!(run.flows > 0);
        assert!(run.outcome.dropped > 0, "the plan must fire");
        assert_eq!(
            run.outcome.dropped,
            run.outcome.retried + run.outcome.abandoned
        );
        assert!(!run.outcome.flow_latency.is_empty(), "latency was recorded");
        let delivered: u64 = run.outcome.flow_latency.iter().map(|h| h.count).sum();
        assert_eq!(delivered, run.outcome.words);
    }

    #[test]
    fn event_model_runs_a_small_transpose() {
        let t3d = Machine::t3d();
        let opts = EngineOptions {
            nodes: Some(4),
            jobs: 1,
            shards: 0,
            record_events: false,
            sample_every: 0,
            reference_scheduler: false,
        };
        let k = Table6Kernel::Transpose(TransposeKernel {
            n: 64,
            words_per_element: 2,
        });
        let c = k
            .congestion_with(&t3d, &CongestionModel::Event(opts))
            .unwrap();
        assert!(c >= 1.0, "congestion {c}");
        let m = k
            .measure_with(&t3d, CommMethod::Chained, &CongestionModel::Event(opts))
            .unwrap();
        assert!(m.verified);
        assert!(m.per_node.as_mbps() > 0.0);
    }
}
