//! Property-based tests of the memory-system components against reference
//! models (oracles) and physical invariants.

use memcomm_memsim::cache::{Cache, CacheParams, LoadOutcome, WritePolicy};
use memcomm_memsim::dram::{Dram, DramOp, DramParams};
use memcomm_memsim::engines::LocalCopier;
use memcomm_memsim::nic::{NetWord, TimedFifo};
use memcomm_memsim::node::{Node, NodeParams};
use memcomm_memsim::wbq::{Wbq, WbqParams};
use memcomm_model::AccessPattern;
use memcomm_util::check::forall;

/// A trivially correct LRU cache oracle: a vector of line tags per set,
/// most recently used last.
struct LruOracle {
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_bytes: u64,
}

impl LruOracle {
    fn new(size_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        let sets = (size_bytes / line_bytes) as usize / ways;
        LruOracle {
            sets: vec![Vec::new(); sets],
            ways,
            line_bytes,
        }
    }

    /// Returns whether the load hits, updating recency.
    fn load(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line as usize) % self.sets.len();
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|&t| t == line) {
            entries.remove(pos);
            entries.push(line);
            true
        } else {
            if entries.len() == self.ways {
                entries.remove(0);
            }
            entries.push(line);
            false
        }
    }
}

/// The tag-array cache agrees with a straightforward LRU oracle on every
/// access of a random load stream.
#[test]
fn cache_matches_lru_oracle() {
    forall("cache_matches_lru_oracle", 128, |rng| {
        // Geometry must divide evenly; 4 KiB with 32-byte lines has 128
        // lines, divisible by 1, 2 and 4 ways.
        let ways = *rng.choose(&[1u32, 2, 4]);
        let n = rng.range_usize(1, 600);
        let addrs = rng.vec(n, |rng| rng.range_u64(0, 32_768));
        let mut cache = Cache::new(CacheParams {
            size_bytes: 4096,
            line_bytes: 32,
            ways,
            write_policy: WritePolicy::WriteThrough,
            allocate_on_store_miss: false,
            hit_cycles: 1,
        });
        let mut oracle = LruOracle::new(4096, 32, ways as usize);
        for addr in addrs {
            let addr = addr & !7;
            let expected = oracle.load(addr);
            let got = matches!(cache.load(addr), LoadOutcome::Hit);
            assert_eq!(got, expected, "divergence at {addr:#x}");
        }
    });
}

/// DRAM timing invariants over random request streams: completion never
/// precedes the request, per-bank time is monotone, and the channel never
/// moves more than one word per `channel_word_cycles`.
#[test]
fn dram_time_is_physical() {
    forall("dram_time_is_physical", 128, |rng| {
        let banks = rng.range_u32(1, 5);
        let n = rng.range_usize(1, 300);
        let requests = rng.vec(n, |rng| {
            (rng.range_u64(0, 1_000_000), rng.range_u32(1, 8), rng.bool())
        });
        let mut dram = Dram::new(DramParams {
            banks,
            interleave_bytes: 32,
            row_bytes: 2048,
            read_hit_cycles: 4,
            read_miss_cycles: 20,
            write_hit_cycles: 3,
            write_miss_cycles: 20,
            posted_write_miss_cycles: 12,
            burst_word_cycles: 1,
            channel_word_cycles: 1,
            demand_latency_cycles: 8,
            write_row_affinity: true,
            read_row_affinity: true,
            turnaround_cycles: 2,
        });
        let mut total_words = 0u64;
        let mut last_end = 0u64;
        // Requests arrive in causal order, one cycle apart.
        for (now, (addr, words, is_write)) in requests.into_iter().enumerate() {
            let now = now as u64;
            let addr = addr & !7;
            let op = if is_write {
                DramOp::Write
            } else {
                DramOp::Read
            };
            let span = dram.access(now, addr, words, op);
            assert!(span.start >= now, "time travel");
            assert!(span.end > span.start, "zero-width access");
            total_words += u64::from(words);
            last_end = last_end.max(span.end);
        }
        // Channel bound: one word per channel cycle at best.
        assert!(
            last_end >= total_words,
            "channel moved {total_words} words in {last_end} cycles"
        );
    });
}

/// The write buffer never loses or invents stores: queued+merged pushes
/// equal drained words; FIFO drain order preserves first-push order of
/// lines.
#[test]
fn wbq_conserves_stores() {
    forall("wbq_conserves_stores", 128, |rng| {
        let n = rng.range_usize(1, 200);
        let addrs = rng.vec(n, |rng| rng.range_u64(0, 2048));
        let mut wbq = Wbq::new(WbqParams {
            entries: 64, // capacious: no rejections in this test
            merge: true,
            line_bytes: 32,
        });
        let mut distinct = std::collections::BTreeSet::new();
        for &a in &addrs {
            let a = a & !7;
            distinct.insert(a);
            assert!(wbq.push(a), "64 entries never fill from 64 distinct lines");
        }
        let mut drained_words = 0u64;
        while let Some(item) = wbq.pop() {
            drained_words += u64::from(item.words);
        }
        assert_eq!(drained_words, distinct.len() as u64);
    });
}

/// FIFO conservation and ordering under interleaved push/pop with
/// arbitrary local clocks.
#[test]
fn fifo_conserves_and_orders() {
    forall("fifo_conserves_and_orders", 128, |rng| {
        let n = rng.range_usize(1, 300);
        let ops = rng.vec(n, |rng| (rng.bool(), rng.range_u64(0, 10_000)));
        let cap = rng.range_usize(1, 16);
        let mut fifo = TimedFifo::new(cap);
        let mut next_val = 0u64;
        let mut expected = std::collections::VecDeque::new();
        let mut last_pop_time = 0u64;
        for (is_push, t) in ops {
            if is_push {
                if fifo.push(t, NetWord::data(next_val)).is_some() {
                    expected.push_back(next_val);
                }
                next_val += 1;
            } else if let Some((at, w)) = fifo.pop(t) {
                let want = expected.pop_front().expect("fifo had an item");
                assert_eq!(w.data, want, "FIFO order violated");
                assert!(at >= t.min(at), "pop time sane");
                // Pop completion times are not globally monotone (clocks
                // differ per agent), but never precede the push.
                last_pop_time = last_pop_time.max(at);
            }
            assert!(fifo.len() <= cap);
        }
        assert_eq!(fifo.len(), expected.len());
    });
}

/// A local copy is semantically memcpy for every pattern combination:
/// after the run, dst element i holds src element i.
#[test]
fn local_copy_is_memcpy() {
    forall("local_copy_is_memcpy", 64, |rng| {
        let src_stride = rng.range_u32(1, 20);
        let dst_stride = rng.range_u32(1, 20);
        let n = rng.range_u64(1, 200);
        let seed = rng.range_u64(0, 1000);
        let mut node = Node::new(NodeParams::default());
        let sp = AccessPattern::strided(src_stride).unwrap();
        let dp = AccessPattern::strided(dst_stride).unwrap();
        let src = node.alloc_walk(sp, n, None).unwrap();
        let dst = node.alloc_walk(dp, n, None).unwrap();
        for i in 0..n {
            node.mem
                .write(src.addr(i), seed.wrapping_mul(31).wrapping_add(i));
        }
        let mut cpu = node.cpu();
        LocalCopier::new(src.clone(), dst.clone())
            .run(&mut cpu, &mut node.path, &mut node.mem)
            .unwrap();
        for i in 0..n {
            assert_eq!(node.mem.read(dst.addr(i)), node.mem.read(src.addr(i)));
        }
        assert!(cpu.t > 0);
    });
}

/// Copy time grows at least linearly in the element count (no super-linear
/// accounting bugs, no sublinear time travel).
#[test]
fn copy_time_scales_sanely() {
    forall("copy_time_scales_sanely", 32, |rng| {
        let n = rng.range_u64(64, 512);
        let time = |count: u64| {
            let mut node = Node::new(NodeParams::default());
            let src = node
                .alloc_walk(AccessPattern::Contiguous, count, None)
                .unwrap();
            let dst = node
                .alloc_walk(AccessPattern::Contiguous, count, None)
                .unwrap();
            let mut cpu = node.cpu();
            LocalCopier::new(src, dst)
                .run(&mut cpu, &mut node.path, &mut node.mem)
                .unwrap();
            node.path.flush(cpu.t)
        };
        let t1 = time(n);
        let t2 = time(2 * n);
        let ratio = t2 as f64 / t1 as f64;
        assert!((1.6..2.6).contains(&ratio), "doubling n gave ratio {ratio}");
    });
}
