//! A node: memory, memory path, NIC FIFOs and engine cost models.

use crate::clock::{Clock, Cycle};
use crate::engines::{Cpu, CpuParams, DepositParams, DmaParams};
use crate::error::{SimError, SimResult};
use crate::mem::Memory;
use crate::nic::TimedFifo;
use crate::path::{MemPath, PathParams, Port};
use crate::pfq::PfqParams;
use crate::walk::Walk;
use memcomm_model::AccessPattern;

/// Full configuration of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeParams {
    /// Processor clock in MHz.
    pub clock_mhz: f64,
    /// Node memory capacity in 64-bit words.
    pub memory_words: u64,
    /// Memory-path (cache/WBQ/read-ahead/DRAM) parameters.
    pub path: PathParams,
    /// Main-processor cost model.
    pub cpu: CpuParams,
    /// DMA engine cost model.
    pub dma: DmaParams,
    /// Deposit engine cost model.
    pub deposit: DepositParams,
    /// Outgoing NIC FIFO depth in words.
    pub tx_fifo_words: usize,
    /// Incoming NIC FIFO depth in words.
    pub rx_fifo_words: usize,
}

impl Default for NodeParams {
    /// A generic mid-1990s node (150 MHz, 8 KB direct-mapped cache,
    /// single-bank page-mode DRAM) for examples and tests; the calibrated
    /// T3D and Paragon configurations live in `memcomm-machines`.
    fn default() -> Self {
        use crate::cache::{CacheParams, WritePolicy};
        use crate::dram::DramParams;
        use crate::readahead::ReadAheadParams;
        use crate::wbq::WbqParams;
        NodeParams {
            clock_mhz: 150.0,
            memory_words: 4 << 20,
            path: PathParams {
                cache: CacheParams {
                    size_bytes: 8 * 1024,
                    line_bytes: 32,
                    ways: 1,
                    write_policy: WritePolicy::WriteThrough,
                    allocate_on_store_miss: false,
                    hit_cycles: 1,
                },
                wbq: WbqParams {
                    entries: 6,
                    merge: true,
                    line_bytes: 32,
                },
                readahead: ReadAheadParams {
                    enabled: true,
                    buffer_hit_cycles: 4,
                },
                dram: DramParams {
                    banks: 1,
                    interleave_bytes: 32,
                    row_bytes: 2048,
                    read_hit_cycles: 5,
                    read_miss_cycles: 22,
                    write_hit_cycles: 4,
                    write_miss_cycles: 22,
                    posted_write_miss_cycles: 14,
                    burst_word_cycles: 1,
                    channel_word_cycles: 1,
                    demand_latency_cycles: 10,
                    write_row_affinity: true,
                    read_row_affinity: true,
                    turnaround_cycles: 0,
                },
                switch_penalty_cycles: 0,
                switch_window_cycles: 0,
                deposit_invalidates_cache: true,
            },
            cpu: CpuParams {
                port: Port::Cpu,
                load_issue_cycles: 1,
                store_issue_cycles: 1,
                loop_cycles: 1,
                indexed_extra_cycles: 1,
                port_store_cycles: 6,
                port_load_cycles: 6,
                pfq: PfqParams {
                    depth: 1,
                    enabled: false,
                },
            },
            dma: DmaParams {
                burst_words: 4,
                setup_cycles: 100,
                page_bytes: 4096,
                kick_cycles: 50,
                word_fifo_cycles: 1,
            },
            deposit: DepositParams {
                word_cycles: 2,
                coalesce_words: 4,
                contiguous_only: false,
            },
            tx_fifo_words: 64,
            rx_fifo_words: 64,
        }
    }
}

/// A simulated node.
///
/// Fields are public because drivers (microbenchmarks, end-to-end
/// co-simulations) advance several agents that each need disjoint mutable
/// access to the node's parts.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node memory (data).
    pub mem: Memory,
    /// The arbitrated memory path (timing).
    pub path: MemPath,
    /// Outgoing NIC FIFO.
    pub tx: TimedFifo,
    /// Incoming NIC FIFO.
    pub rx: TimedFifo,
    params: NodeParams,
}

impl Node {
    /// Builds a node from its configuration.
    pub fn new(params: NodeParams) -> Self {
        // 256-byte placement granularity: line-aligned (every line size in
        // use divides it), fine enough that the allocator's jittered guard
        // gaps spread arrays over many distinct cache colours.
        Node {
            mem: Memory::new(params.memory_words, 256),
            path: MemPath::new(params.path),
            tx: TimedFifo::new(params.tx_fifo_words),
            rx: TimedFifo::new(params.rx_fifo_words),
            params,
        }
    }

    /// The node configuration.
    pub fn params(&self) -> &NodeParams {
        &self.params
    }

    /// The node clock.
    pub fn clock(&self) -> Clock {
        Clock::from_mhz(self.params.clock_mhz)
    }

    /// A fresh main processor (local clock 0).
    pub fn cpu(&self) -> Cpu {
        Cpu::new(self.params.cpu)
    }

    /// A fresh co-processor: same cost model, its own arbitration port (for
    /// Paragon-style dual-processor nodes).
    pub fn coprocessor(&self) -> Cpu {
        Cpu::new(CpuParams {
            port: Port::CoProcessor,
            ..self.params.cpu
        })
    }

    /// Allocates a region and returns a walk over it (see
    /// [`Memory::alloc_walk`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::InvalidWalk`] / [`SimError::OutOfMemory`] from
    /// [`Memory::alloc_walk`].
    pub fn alloc_walk(
        &mut self,
        pattern: AccessPattern,
        words: u64,
        index: Option<Vec<u32>>,
    ) -> SimResult<Walk> {
        self.mem.alloc_walk(pattern, words, index)
    }
}

/// A bounded-progress watchdog for co-simulation driver loops.
///
/// Every driver iteration calls [`tick`](Watchdog::tick); once the step
/// bound (or the optional simulated-cycle budget) elapses, the watchdog
/// returns a [`SimError`] instead of letting a wedged co-simulation spin
/// forever. Fault injection makes wedges *reachable* (a dropped word with no
/// retransmission, a stalled engine), so every driver loop must be bounded.
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    max_steps: u64,
    max_cycles: Option<Cycle>,
    steps: u64,
}

impl Watchdog {
    /// A watchdog that fires after `max_steps` driver iterations.
    pub fn new(max_steps: u64) -> Self {
        Watchdog {
            max_steps,
            max_cycles: None,
            steps: 0,
        }
    }

    /// Adds a simulated-cycle budget: [`tick`](Watchdog::tick) fails as soon
    /// as the observed cycle count exceeds it. `None` leaves only the step
    /// bound.
    pub fn with_cycle_budget(mut self, max_cycles: Option<Cycle>) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Records one driver iteration at local time `at`.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleBudget`] when the cycle budget is exceeded,
    /// [`SimError::Wedged`] when the step bound elapses.
    pub fn tick(&mut self, engine: &'static str, at: Cycle) -> SimResult<()> {
        if let Some(budget) = self.max_cycles {
            if at > budget {
                return Err(SimError::CycleBudget { budget, at });
            }
        }
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(SimError::Wedged {
                engine,
                at,
                steps: self.steps,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_node_builds_and_allocates() {
        let mut n = Node::new(NodeParams::default());
        let w = n.alloc_walk(AccessPattern::Contiguous, 128, None).unwrap();
        assert_eq!(w.len(), 128);
        assert_eq!(n.clock().hz(), 150.0e6);
    }

    #[test]
    fn watchdog_fires_on_step_bound() {
        let mut w = Watchdog::new(3);
        for _ in 0..3 {
            w.tick("test driver", 10).unwrap();
        }
        assert!(matches!(
            w.tick("test driver", 11),
            Err(SimError::Wedged { steps: 4, .. })
        ));
    }

    #[test]
    fn watchdog_enforces_cycle_budget() {
        let mut w = Watchdog::new(u64::MAX).with_cycle_budget(Some(100));
        w.tick("test driver", 100).unwrap();
        assert!(matches!(
            w.tick("test driver", 101),
            Err(SimError::CycleBudget {
                budget: 100,
                at: 101
            })
        ));
    }

    #[test]
    fn coprocessor_uses_its_own_port() {
        let n = Node::new(NodeParams::default());
        assert_eq!(n.cpu().params().port, Port::Cpu);
        assert_eq!(n.coprocessor().params().port, Port::CoProcessor);
    }
}
