//! Address walks: the concrete address streams behind access patterns.

use crate::error::{SimError, SimResult};
use crate::mem::{Region, WORD_BYTES};
use memcomm_model::AccessPattern;

/// A concrete address stream over a memory [`Region`] following an
/// [`AccessPattern`]: the sequence of word addresses a transfer reads or
/// writes.
///
/// For [`AccessPattern::Indexed`] walks the index array itself lives in
/// memory (see [`Walk::index_addr`]); reading it is overhead charged to the
/// transfer, exactly as the paper specifies ("reading the index is
/// considered to be part of the memory access operation").
#[derive(Debug, Clone)]
pub struct Walk {
    pattern: AccessPattern,
    region: Region,
    offset: u64,
    count: u64,
    index: Option<Vec<u32>>,
    index_region: Option<Region>,
}

impl Walk {
    /// Creates a walk of `count` elements over `region`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidWalk`] if the pattern is
    /// [`AccessPattern::Fixed`] (a port has no addresses to walk), if an
    /// indexed walk lacks an index array (or a non-indexed walk has one),
    /// if the index array is shorter than `count` or points outside the
    /// region, or if the region cannot hold the walk.
    pub fn new(
        pattern: AccessPattern,
        region: Region,
        count: u64,
        index: Option<Vec<u32>>,
    ) -> SimResult<Self> {
        let invalid = |detail: String| Err(SimError::InvalidWalk { detail });
        match pattern {
            AccessPattern::Indexed => {
                let Some(ix) = index.as_ref() else {
                    return invalid("indexed walk needs an index array".to_string());
                };
                if (ix.len() as u64) < count {
                    return invalid(format!(
                        "index array has {} entries, walk needs {count}",
                        ix.len()
                    ));
                }
                if !ix
                    .iter()
                    .take(count as usize)
                    .all(|&i| u64::from(i) < region.words)
                {
                    return invalid("index array points outside the region".to_string());
                }
            }
            AccessPattern::Contiguous => {
                if index.is_some() {
                    return invalid("contiguous walk takes no index array".to_string());
                }
                if count > region.words {
                    return invalid(format!(
                        "walk of {count} longer than region of {} words",
                        region.words
                    ));
                }
            }
            AccessPattern::Strided(s) => {
                if index.is_some() {
                    return invalid("strided walk takes no index array".to_string());
                }
                if count.saturating_sub(1) * u64::from(s) >= region.words && count != 0 {
                    return invalid(format!(
                        "strided walk of {count} at stride {s} overruns region of {} words",
                        region.words
                    ));
                }
            }
            AccessPattern::Fixed => {
                return invalid("a walk cannot follow the fixed port pattern".to_string());
            }
        }
        Ok(Walk {
            pattern,
            region,
            offset: 0,
            count,
            index,
            index_region: None,
        })
    }

    /// A sub-walk covering elements `start .. start + len` of this walk
    /// (same region, same index array) — the unit of chunked pipelining in
    /// buffer-packing transfers.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the walk.
    pub fn slice(&self, start: u64, len: u64) -> Walk {
        assert!(
            start + len <= self.count,
            "slice {start}+{len} exceeds walk of {}",
            self.count
        );
        Walk {
            pattern: self.pattern,
            region: self.region,
            offset: self.offset + start,
            count: len,
            index: self.index.clone(),
            index_region: self.index_region,
        }
    }

    /// Attaches the memory region holding the index array (for timing the
    /// index loads). Index entries are 32-bit, packed two per word.
    ///
    /// # Panics
    ///
    /// Panics if the region is too small for the index array.
    pub fn with_index_region(mut self, region: Region) -> Self {
        let entries = self.index.as_ref().map_or(0, Vec::len) as u64;
        assert!(
            region.words * 2 >= entries,
            "index region too small: {} words for {entries} packed entries",
            region.words
        );
        self.index_region = Some(region);
        self
    }

    /// The walk's access pattern.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// The region the walk covers.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Number of elements in the walk.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the walk is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Byte address of the `i`-th element.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn addr(&self, i: u64) -> u64 {
        assert!(i < self.count, "element {i} outside walk of {}", self.count);
        let i = self.offset + i;
        let word = match self.pattern {
            AccessPattern::Contiguous => i,
            AccessPattern::Strided(s) => i * u64::from(s),
            AccessPattern::Indexed => {
                u64::from(self.index.as_ref().expect("validated in new")[i as usize])
            }
            AccessPattern::Fixed => unreachable!("rejected in new"),
        };
        self.region.base + word * WORD_BYTES
    }

    /// Byte address (word-aligned) of the index entry for element `i`, if
    /// this walk is indexed: the load the processor must issue before it can
    /// compute [`addr`](Self::addr).
    pub fn index_addr(&self, i: u64) -> Option<u64> {
        let region = self.index_region?;
        Some(region.base + ((self.offset + i) / 2) * WORD_BYTES)
    }

    /// Iterates over the element addresses.
    pub fn addrs(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.count).map(|i| self.addr(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(words: u64) -> Region {
        Region {
            base: 0x1000,
            words,
        }
    }

    #[test]
    fn contiguous_addresses() {
        let w = Walk::new(AccessPattern::Contiguous, region(8), 4, None).unwrap();
        assert_eq!(
            w.addrs().collect::<Vec<_>>(),
            vec![0x1000, 0x1008, 0x1010, 0x1018]
        );
    }

    #[test]
    fn strided_addresses() {
        let w = Walk::new(AccessPattern::Strided(4), region(16), 4, None).unwrap();
        assert_eq!(
            w.addrs().collect::<Vec<_>>(),
            vec![0x1000, 0x1020, 0x1040, 0x1060]
        );
    }

    #[test]
    fn indexed_addresses_follow_index() {
        let w = Walk::new(AccessPattern::Indexed, region(8), 3, Some(vec![7, 0, 3])).unwrap();
        assert_eq!(
            w.addrs().collect::<Vec<_>>(),
            vec![0x1000 + 56, 0x1000, 0x1000 + 24]
        );
    }

    #[test]
    fn index_addr_packs_two_per_word() {
        let w = Walk::new(AccessPattern::Indexed, region(8), 4, Some(vec![0, 1, 2, 3]))
            .unwrap()
            .with_index_region(Region {
                base: 0x8000,
                words: 2,
            });
        assert_eq!(w.index_addr(0), Some(0x8000));
        assert_eq!(w.index_addr(1), Some(0x8000));
        assert_eq!(w.index_addr(2), Some(0x8008));
        assert_eq!(w.index_addr(3), Some(0x8008));
        let c = Walk::new(AccessPattern::Contiguous, region(8), 4, None).unwrap();
        assert_eq!(c.index_addr(0), None);
    }

    #[test]
    fn slice_preserves_addresses() {
        let w = Walk::new(AccessPattern::Strided(4), region(32), 8, None).unwrap();
        let s = w.slice(2, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.addr(0), w.addr(2));
        assert_eq!(s.addr(2), w.addr(4));
        // Slicing a slice composes.
        let ss = s.slice(1, 2);
        assert_eq!(ss.addr(0), w.addr(3));
    }

    #[test]
    fn slice_of_indexed_walk_follows_index() {
        let w = Walk::new(AccessPattern::Indexed, region(8), 4, Some(vec![3, 1, 7, 0]))
            .unwrap()
            .with_index_region(Region {
                base: 0x8000,
                words: 2,
            });
        let s = w.slice(2, 2);
        assert_eq!(s.addr(0), 0x1000 + 7 * 8);
        assert_eq!(s.index_addr(0), Some(0x8008));
    }

    #[test]
    #[should_panic(expected = "exceeds walk")]
    fn slice_out_of_range_panics() {
        let w = Walk::new(AccessPattern::Contiguous, region(8), 4, None).unwrap();
        let _ = w.slice(2, 3);
    }

    fn invalid_detail(r: SimResult<Walk>) -> String {
        match r {
            Err(SimError::InvalidWalk { detail }) => detail,
            other => panic!("expected InvalidWalk, got {other:?}"),
        }
    }

    #[test]
    fn strided_walk_must_fit() {
        let detail = invalid_detail(Walk::new(AccessPattern::Strided(4), region(8), 4, None));
        assert!(detail.contains("overruns region"), "{detail}");
    }

    #[test]
    fn index_out_of_range_rejected() {
        let detail = invalid_detail(Walk::new(
            AccessPattern::Indexed,
            region(4),
            2,
            Some(vec![0, 9]),
        ));
        assert!(detail.contains("points outside"), "{detail}");
    }

    #[test]
    fn indexed_requires_index() {
        let detail = invalid_detail(Walk::new(AccessPattern::Indexed, region(4), 2, None));
        assert!(detail.contains("needs an index array"), "{detail}");
    }

    #[test]
    fn fixed_pattern_rejected() {
        let detail = invalid_detail(Walk::new(AccessPattern::Fixed, region(4), 2, None));
        assert!(detail.contains("fixed port"), "{detail}");
    }
}
