//! The agents that move data: processor roles, DMA, deposit engine.
//!
//! Each engine is a resumable state machine advanced by a driver through
//! `step(...)` calls that return a [`Step`]: drivers advance the engine with
//! the earliest local time that is not [`Step::Blocked`], which keeps the
//! shared [`MemPath`](crate::path::MemPath) request stream causally ordered.

mod annex;
mod cpu;
mod deposit;
mod dma;

pub use annex::{AnnexEngine, AnnexStats};
pub use cpu::{Cpu, CpuParams, CpuReceiver, CpuSender, LocalCopier};
pub use deposit::{DepositEngine, DepositMode, DepositParams};
pub use dma::{Dma, DmaParams};

/// Result of advancing an engine by one unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Work was done; the engine's local time advanced.
    Progressed,
    /// The engine is waiting on a FIFO; advance its counterpart first.
    Blocked,
    /// The engine has finished its assignment.
    Done,
}
