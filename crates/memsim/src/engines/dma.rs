//! DMA / line-transfer engine (fetch-send `xF0`).
//!
//! The Paragon's line-transfer units stream well-aligned contiguous blocks
//! from memory into the network FIFO in the background, but "require
//! permanent attention of a processor; they need to be kicked back on if
//! they stall due to crossing a memory page boundary". The model charges a
//! setup cost, reads memory in bursts, and stalls for a kick at every page
//! crossing.

use std::collections::VecDeque;

use crate::clock::Cycle;
use crate::engines::Step;
use crate::mem::{Memory, WORD_BYTES};
use crate::nic::{NetWord, TimedFifo, WordKind};
use crate::path::{MemPath, Port};
use crate::walk::Walk;
use memcomm_model::AccessPattern;

/// DMA cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaParams {
    /// Words fetched per memory burst.
    pub burst_words: u32,
    /// Processor cycles to program the transfer.
    pub setup_cycles: Cycle,
    /// Page size; crossing a boundary stalls the engine for a kick.
    pub page_bytes: u64,
    /// Stall cycles per page crossing.
    pub kick_cycles: Cycle,
    /// Per-word cost to move data into the NIC FIFO.
    pub word_fifo_cycles: Cycle,
}

/// A DMA engine streaming one contiguous walk to the NIC.
#[derive(Debug, Clone)]
pub struct Dma {
    /// The engine's local clock.
    pub t: Cycle,
    params: DmaParams,
    src: Walk,
    fetched: u64,
    staged: VecDeque<NetWord>,
    started: bool,
}

impl Dma {
    /// Creates a DMA transfer over `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not contiguous — the hardware "can handle only
    /// well aligned, contiguous block-transfers".
    pub fn new(params: DmaParams, src: Walk) -> Self {
        assert_eq!(
            src.pattern(),
            AccessPattern::Contiguous,
            "the DMA engine handles only contiguous transfers"
        );
        assert!(params.burst_words >= 1);
        Dma {
            t: 0,
            params,
            src,
            fetched: 0,
            staged: VecDeque::new(),
            started: false,
        }
    }

    /// Words pushed to the FIFO so far.
    pub fn sent(&self) -> u64 {
        self.fetched - self.staged.len() as u64
    }

    /// Advances: setup, one memory burst, or one FIFO push.
    pub fn step(&mut self, path: &mut MemPath, mem: &Memory, tx: &mut TimedFifo) -> Step {
        if !self.started {
            self.t += self.params.setup_cycles;
            self.started = true;
            return Step::Progressed;
        }
        if let Some(&word) = self.staged.front() {
            return match tx.push(self.t, word) {
                Some(at) => {
                    self.t = self.t.max(at) + self.params.word_fifo_cycles;
                    self.staged.pop_front();
                    Step::Progressed
                }
                None => Step::Blocked,
            };
        }
        let n = self.src.len();
        if self.fetched == n {
            return Step::Done;
        }
        let start_addr = self.src.addr(self.fetched);
        let to_page_end =
            (self.params.page_bytes - start_addr % self.params.page_bytes) / WORD_BYTES;
        let burst = u64::from(self.params.burst_words)
            .min(n - self.fetched)
            .min(to_page_end.max(1));
        self.t = path.engine_read(self.t, Port::Dma, start_addr, burst as u32);
        for k in 0..burst {
            self.staged.push_back(NetWord {
                addr: None,
                data: mem.read(self.src.addr(self.fetched + k)),
                kind: WordKind::Data,
            });
        }
        self.fetched += burst;
        if self.fetched < n
            && self
                .src
                .addr(self.fetched)
                .is_multiple_of(self.params.page_bytes)
        {
            // The next burst starts a new page: the engine stalls until the
            // processor kicks it.
            self.t += self.params.kick_cycles;
        }
        Step::Progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheParams, WritePolicy};
    use crate::dram::DramParams;
    use crate::path::PathParams;
    use crate::readahead::ReadAheadParams;
    use crate::wbq::WbqParams;

    fn path() -> MemPath {
        MemPath::new(PathParams {
            cache: CacheParams {
                size_bytes: 8 * 1024,
                line_bytes: 32,
                ways: 1,
                write_policy: WritePolicy::WriteThrough,
                allocate_on_store_miss: false,
                hit_cycles: 1,
            },
            wbq: WbqParams {
                entries: 4,
                merge: true,
                line_bytes: 32,
            },
            readahead: ReadAheadParams {
                enabled: false,
                buffer_hit_cycles: 4,
            },
            dram: DramParams {
                banks: 1,
                interleave_bytes: 32,
                row_bytes: 2048,
                read_hit_cycles: 5,
                read_miss_cycles: 22,
                write_hit_cycles: 4,
                write_miss_cycles: 22,
                posted_write_miss_cycles: 14,
                burst_word_cycles: 1,
                channel_word_cycles: 1,
                demand_latency_cycles: 10,
                write_row_affinity: true,
                read_row_affinity: true,
                turnaround_cycles: 0,
            },
            switch_penalty_cycles: 0,
            switch_window_cycles: 0,
            deposit_invalidates_cache: true,
        })
    }

    fn params() -> DmaParams {
        DmaParams {
            burst_words: 4,
            setup_cycles: 50,
            page_bytes: 4096,
            kick_cycles: 30,
            word_fifo_cycles: 1,
        }
    }

    #[test]
    fn streams_whole_walk_in_order() {
        let mut mem = Memory::new(1 << 16, 2048);
        let mut p = path();
        let src = mem.alloc_walk(AccessPattern::Contiguous, 64, None).unwrap();
        mem.fill(src.region(), 0..64);
        let mut tx = TimedFifo::new(128);
        let mut dma = Dma::new(params(), src);
        while dma.step(&mut p, &mem, &mut tx) != Step::Done {}
        let got: Vec<u64> =
            std::iter::from_fn(|| tx.pop(u64::MAX / 2).map(|(_, w)| w.data)).collect();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn page_crossings_cost_kicks() {
        let run = |words: u64, page: u64| {
            let mut mem = Memory::new(1 << 20, 4096);
            let mut p = path();
            let src = mem
                .alloc_walk(AccessPattern::Contiguous, words, None)
                .unwrap();
            let mut tx = TimedFifo::new(1 << 16);
            let mut dma = Dma::new(
                DmaParams {
                    page_bytes: page,
                    ..params()
                },
                src,
            );
            while dma.step(&mut p, &mem, &mut tx) != Step::Done {}
            dma.t
        };
        // 2048 words = 16 KB: three page crossings at 4 KB, none at 1 MB.
        let with_kicks = run(2048, 4096);
        let without = run(2048, 1 << 20);
        assert_eq!(with_kicks - without, 3 * 30);
    }

    #[test]
    fn blocks_on_full_fifo() {
        let mut mem = Memory::new(1 << 16, 2048);
        let mut p = path();
        let src = mem.alloc_walk(AccessPattern::Contiguous, 16, None).unwrap();
        let mut tx = TimedFifo::new(2);
        let mut dma = Dma::new(params(), src);
        let mut saw_block = false;
        for _ in 0..500 {
            match dma.step(&mut p, &mem, &mut tx) {
                Step::Blocked => {
                    saw_block = true;
                    tx.pop(dma.t + 10);
                }
                Step::Done => break,
                Step::Progressed => {}
            }
        }
        assert!(saw_block);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn rejects_strided_source() {
        let mut mem = Memory::new(1 << 16, 2048);
        let src = mem
            .alloc_walk(AccessPattern::strided(4).unwrap(), 8, None)
            .unwrap();
        let _ = Dma::new(params(), src);
    }
}
