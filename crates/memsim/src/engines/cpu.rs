//! Processor roles: local copies, load-send, receive-store.

use std::collections::VecDeque;

use crate::clock::Cycle;
use crate::engines::Step;
use crate::error::{SimError, SimResult};
use crate::mem::Memory;
use crate::nic::{NetWord, TimedFifo, WordKind};
use crate::path::{MemPath, Port};
use crate::pfq::{Pfq, PfqParams};
use crate::walk::Walk;
use memcomm_model::AccessPattern;

/// Processor cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuParams {
    /// Memory-path port this processor arbitrates as.
    pub port: Port,
    /// Cycles to generate an address and issue a load (amortized over an
    /// unrolled loop).
    pub load_issue_cycles: Cycle,
    /// Cycles to issue a store.
    pub store_issue_cycles: Cycle,
    /// Residual loop-control cycles per element.
    pub loop_cycles: Cycle,
    /// Extra address arithmetic per indexed access (beyond the index load).
    pub indexed_extra_cycles: Cycle,
    /// Cycles to store one word to the memory-mapped NIC port.
    pub port_store_cycles: Cycle,
    /// Cycles to load one word from the NIC port.
    pub port_load_cycles: Cycle,
    /// Pipelined-load (cache-bypassing) capability.
    pub pfq: PfqParams,
}

/// A processor: a local clock plus the pipelined-load state.
///
/// Engines ([`LocalCopier`], [`CpuSender`], [`CpuReceiver`]) borrow a `Cpu`
/// per step, so one physical processor can time-share several roles — the
/// situation the model's sequential-composition rule describes.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// The processor's local clock.
    pub t: Cycle,
    params: CpuParams,
    pfq: Pfq,
    values: VecDeque<u64>,
}

impl Cpu {
    /// Creates a processor at cycle 0.
    pub fn new(params: CpuParams) -> Self {
        Cpu {
            t: 0,
            params,
            pfq: Pfq::new(params.pfq),
            values: VecDeque::new(),
        }
    }

    /// The cost model.
    pub fn params(&self) -> &CpuParams {
        &self.params
    }

    /// Whether loads of this pattern use the pipelined (cache-bypassing)
    /// path: enabled hardware and a non-contiguous pattern (contiguous
    /// streams do better through cache-line fills and read-ahead).
    pub fn pipelined_for(&self, pattern: AccessPattern) -> bool {
        self.pfq.enabled() && pattern != AccessPattern::Contiguous
    }

    /// Software-pipeline depth for loads of this pattern.
    pub fn depth_for(&self, pattern: AccessPattern) -> usize {
        if self.pipelined_for(pattern) {
            self.pfq.params().depth
        } else {
            1
        }
    }

    /// Outstanding issued-but-unretired loads.
    pub fn pending_loads(&self) -> usize {
        self.values.len()
    }

    /// Charges the index-array load for element `i` of an indexed walk
    /// (no-op for other patterns).
    pub fn fetch_index(&mut self, path: &mut MemPath, walk: &Walk, i: u64) {
        if let Some(ia) = walk.index_addr(i) {
            self.t = path.cpu_load(self.t + self.params.load_issue_cycles, self.params.port, ia);
            self.t += self.params.indexed_extra_cycles;
        }
    }

    /// Issues the load of element `i` of `walk`: index fetch, issue cost,
    /// and either a blocking cached load or a pipelined uncached load. The
    /// loaded value is retrieved with [`retire_load`](Self::retire_load).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] if the load pipe is full — the engine
    /// must retire before issuing past the pipeline depth.
    pub fn issue_load(
        &mut self,
        path: &mut MemPath,
        mem: &Memory,
        walk: &Walk,
        i: u64,
    ) -> SimResult<()> {
        self.fetch_index(path, walk, i);
        self.t += self.params.loop_cycles + self.params.load_issue_cycles;
        let addr = walk.addr(i);
        let value = mem.read(addr);
        if self.pipelined_for(walk.pattern()) {
            let t = self.pfq.issue_time(self.t);
            let ready = path.uncached_load(t, self.params.port, addr);
            self.pfq.push(ready);
            self.t = t;
        } else {
            // Cached loads complete in order and never exceed depth 1 in the
            // engines, but share the bookkeeping path for uniform retire.
            if self.pfq.is_full() {
                return Err(SimError::Protocol {
                    detail: "load issued past the pipeline depth".to_string(),
                    at: self.t,
                });
            }
            let ready = path.cpu_load(self.t, self.params.port, addr);
            self.t = ready;
            self.pfq.push(ready);
        }
        self.values.push_back(value);
        Ok(())
    }

    /// Retires the oldest outstanding load, waiting for its data, and
    /// returns the value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] if no load is outstanding.
    pub fn retire_load(&mut self) -> SimResult<u64> {
        let Some(ready) = self.pfq.retire() else {
            return Err(SimError::Protocol {
                detail: "no outstanding load to retire".to_string(),
                at: self.t,
            });
        };
        self.t = self.t.max(ready);
        self.values.pop_front().ok_or(SimError::Protocol {
            detail: "load value queue out of sync with the pipeline".to_string(),
            at: self.t,
        })
    }

    /// Stores `value` as element `i` of `walk` (index fetch, issue, posted
    /// store through the memory path) and updates memory.
    pub fn store_element(
        &mut self,
        path: &mut MemPath,
        mem: &mut Memory,
        walk: &Walk,
        i: u64,
        value: u64,
    ) {
        self.fetch_index(path, walk, i);
        self.store_at(path, mem, walk.addr(i), value);
    }

    /// Stores `value` at an explicit byte address (used when the address
    /// arrived over the wire).
    pub fn store_at(&mut self, path: &mut MemPath, mem: &mut Memory, addr: u64, value: u64) {
        self.t += self.params.store_issue_cycles;
        self.t = path.cpu_store(self.t, self.params.port, addr);
        mem.write(addr, value);
    }

    /// Charges a store of one word to the NIC port.
    pub fn port_store(&mut self) {
        self.t += self.params.port_store_cycles;
    }

    /// Pops a word from a NIC FIFO, charging the port-load cost. Returns
    /// `None` (and leaves the clock untouched) when the FIFO is empty.
    pub fn port_pop(&mut self, fifo: &mut TimedFifo) -> Option<NetWord> {
        let (at, word) = fifo.pop(self.t)?;
        self.t = at + self.params.port_load_cycles;
        Some(word)
    }
}

/// A local memory-to-memory copy `xCy`, element by element, with software
/// pipelining for non-contiguous loads.
#[derive(Debug, Clone)]
pub struct LocalCopier {
    src: Walk,
    dst: Walk,
    issued: u64,
    retired: u64,
}

impl LocalCopier {
    /// Creates a copier.
    ///
    /// # Panics
    ///
    /// Panics if the walks differ in length.
    pub fn new(src: Walk, dst: Walk) -> Self {
        assert_eq!(src.len(), dst.len(), "copy walks must have equal length");
        LocalCopier {
            src,
            dst,
            issued: 0,
            retired: 0,
        }
    }

    /// Advances by one element (unpipelined loads) or by one issue or one
    /// retire+store (pipelined loads).
    ///
    /// With a pipeline depth of 1 each step is atomic — it leaves no load
    /// in flight — so several engines can time-share one [`Cpu`] safely (a
    /// buffer-packing processor interleaving gather, send and scatter).
    /// Deeper pipelines keep loads in flight across steps and must not be
    /// interleaved with other engines on the same processor.
    ///
    /// # Errors
    ///
    /// Propagates pipeline-discipline violations from the processor.
    pub fn step(&mut self, cpu: &mut Cpu, path: &mut MemPath, mem: &mut Memory) -> SimResult<Step> {
        let n = self.src.len();
        if self.retired == n {
            return Ok(Step::Done);
        }
        let depth = cpu.depth_for(self.src.pattern()) as u64;
        if depth == 1 {
            cpu.issue_load(path, mem, &self.src, self.issued)?;
            self.issued += 1;
            let value = cpu.retire_load()?;
            cpu.store_element(path, mem, &self.dst, self.retired, value);
            self.retired += 1;
        } else if self.issued < n && self.issued - self.retired < depth {
            cpu.issue_load(path, mem, &self.src, self.issued)?;
            self.issued += 1;
        } else {
            let value = cpu.retire_load()?;
            cpu.store_element(path, mem, &self.dst, self.retired, value);
            self.retired += 1;
        }
        Ok(Step::Progressed)
    }

    /// Runs the whole copy (local copies never block on FIFOs).
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`step`](Self::step).
    pub fn run(mut self, cpu: &mut Cpu, path: &mut MemPath, mem: &mut Memory) -> SimResult<()> {
        while self.step(cpu, path, mem)? != Step::Done {}
        Ok(())
    }
}

/// A processor send loop `xS0`: loads elements of `src` and stores them to
/// the NIC port, optionally pairing each with a remote destination address
/// (address-data pairs for chained transfers).
#[derive(Debug, Clone)]
pub struct CpuSender {
    src: Walk,
    remote_dst: Option<Walk>,
    issued: u64,
    sent: u64,
    staged: Option<NetWord>,
}

impl CpuSender {
    /// Creates a sender. `remote_dst`, when present, supplies the remote
    /// store address for each element (its index region, if indexed, must
    /// live in *this* node's memory: the sender computes the addresses).
    ///
    /// # Panics
    ///
    /// Panics if walk lengths differ.
    pub fn new(src: Walk, remote_dst: Option<Walk>) -> Self {
        if let Some(d) = &remote_dst {
            assert_eq!(src.len(), d.len(), "send walks must have equal length");
        }
        CpuSender {
            src,
            remote_dst,
            issued: 0,
            sent: 0,
            staged: None,
        }
    }

    /// Words this sender has pushed so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Advances by one issue, one stage, or one FIFO push.
    ///
    /// # Errors
    ///
    /// Propagates pipeline-discipline violations from the processor.
    pub fn step(
        &mut self,
        cpu: &mut Cpu,
        path: &mut MemPath,
        mem: &Memory,
        tx: &mut TimedFifo,
    ) -> SimResult<Step> {
        let n = self.src.len();
        if let Some(word) = self.staged {
            return Ok(match tx.push(cpu.t, word) {
                Some(at) => {
                    cpu.t = cpu.t.max(at);
                    self.staged = None;
                    self.sent += 1;
                    Step::Progressed
                }
                None => Step::Blocked,
            });
        }
        if self.sent == n {
            return Ok(Step::Done);
        }
        let depth = cpu.depth_for(self.src.pattern()) as u64;
        if depth == 1 {
            // Atomic per element: no load stays in flight across steps, so
            // the processor can be time-shared with other engines.
            cpu.issue_load(path, mem, &self.src, self.issued)?;
            self.issued += 1;
            let value = cpu.retire_load()?;
            let addr = self.remote_dst.as_ref().map(|d| {
                cpu.fetch_index(path, d, self.sent);
                d.addr(self.sent)
            });
            cpu.port_store();
            self.staged = Some(NetWord {
                addr,
                data: value,
                kind: WordKind::Data,
            });
        } else if self.issued < n && self.issued - self.sent < depth {
            cpu.issue_load(path, mem, &self.src, self.issued)?;
            self.issued += 1;
        } else {
            let value = cpu.retire_load()?;
            let addr = self.remote_dst.as_ref().map(|d| {
                cpu.fetch_index(path, d, self.sent);
                d.addr(self.sent)
            });
            cpu.port_store();
            self.staged = Some(NetWord {
                addr,
                data: value,
                kind: WordKind::Data,
            });
        }
        Ok(Step::Progressed)
    }
}

/// A processor receive loop `0Ry`: pops words from the NIC FIFO and stores
/// them — either at the address carried by the word (address-data pairs) or
/// along a destination walk (data-only transfers).
#[derive(Debug, Clone)]
pub struct CpuReceiver {
    dst: Walk,
    received: u64,
}

impl CpuReceiver {
    /// Creates a receiver expecting `dst.len()` words. Words carrying their
    /// own address are stored there; bare data words follow `dst`.
    pub fn new(dst: Walk) -> Self {
        CpuReceiver { dst, received: 0 }
    }

    /// Words received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Advances by one word.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] when a protocol control word reaches a
    /// raw receive loop — control traffic belongs to the protocol layer.
    pub fn step(
        &mut self,
        cpu: &mut Cpu,
        path: &mut MemPath,
        mem: &mut Memory,
        rx: &mut TimedFifo,
    ) -> SimResult<Step> {
        if self.received == self.dst.len() {
            return Ok(Step::Done);
        }
        let Some(word) = cpu.port_pop(rx) else {
            return Ok(Step::Blocked);
        };
        if word.kind == WordKind::Control {
            return Err(SimError::Protocol {
                detail: "raw receive loop cannot interpret control words".to_string(),
                at: cpu.t,
            });
        }
        match word.addr {
            Some(addr) => cpu.store_at(path, mem, addr, word.data),
            None => cpu.store_element(path, mem, &self.dst, self.received, word.data),
        }
        self.received += 1;
        Ok(Step::Progressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheParams, WritePolicy};
    use crate::dram::DramParams;
    use crate::path::PathParams;
    use crate::readahead::ReadAheadParams;
    use crate::wbq::WbqParams;

    fn path() -> MemPath {
        MemPath::new(PathParams {
            cache: CacheParams {
                size_bytes: 8 * 1024,
                line_bytes: 32,
                ways: 1,
                write_policy: WritePolicy::WriteThrough,
                allocate_on_store_miss: false,
                hit_cycles: 1,
            },
            wbq: WbqParams {
                entries: 6,
                merge: true,
                line_bytes: 32,
            },
            readahead: ReadAheadParams {
                enabled: true,
                buffer_hit_cycles: 4,
            },
            dram: DramParams {
                banks: 1,
                interleave_bytes: 32,
                row_bytes: 2048,
                read_hit_cycles: 5,
                read_miss_cycles: 22,
                write_hit_cycles: 4,
                write_miss_cycles: 22,
                posted_write_miss_cycles: 14,
                burst_word_cycles: 1,
                channel_word_cycles: 1,
                demand_latency_cycles: 10,
                write_row_affinity: true,
                read_row_affinity: true,
                turnaround_cycles: 0,
            },
            switch_penalty_cycles: 0,
            switch_window_cycles: 0,
            deposit_invalidates_cache: true,
        })
    }

    fn cpu(pfq: bool) -> Cpu {
        Cpu::new(CpuParams {
            port: Port::Cpu,
            load_issue_cycles: 1,
            store_issue_cycles: 1,
            loop_cycles: 1,
            indexed_extra_cycles: 1,
            port_store_cycles: 6,
            port_load_cycles: 6,
            pfq: PfqParams {
                depth: 3,
                enabled: pfq,
            },
        })
    }

    #[test]
    fn local_copy_moves_data() {
        let mut mem = Memory::new(64 * 1024, 2048);
        let mut p = path();
        let mut c = cpu(false);
        let src = mem.alloc_walk(AccessPattern::Contiguous, 64, None).unwrap();
        let dst = mem
            .alloc_walk(AccessPattern::strided(4).unwrap(), 64, None)
            .unwrap();
        mem.fill(src.region(), (0..64).map(|i| i * 11));
        LocalCopier::new(src.clone(), dst.clone())
            .run(&mut c, &mut p, &mut mem)
            .unwrap();
        for i in 0..64 {
            assert_eq!(mem.read(dst.addr(i)), i * 11);
        }
        assert!(c.t > 0);
    }

    #[test]
    fn indexed_copy_permutes() {
        let mut mem = Memory::new(64 * 1024, 2048);
        let mut p = path();
        let mut c = cpu(false);
        let n = 16u64;
        let index: Vec<u32> = (0..n as u32).rev().collect();
        let src = mem
            .alloc_walk(AccessPattern::Indexed, n, Some(index))
            .unwrap();
        let dst = mem.alloc_walk(AccessPattern::Contiguous, n, None).unwrap();
        mem.fill(src.region(), 0..n);
        LocalCopier::new(src, dst.clone())
            .run(&mut c, &mut p, &mut mem)
            .unwrap();
        assert_eq!(mem.dump(dst.region()), (0..n).rev().collect::<Vec<_>>());
    }

    #[test]
    fn pipelined_loads_speed_strided_copies() {
        let run = |pfq: bool| {
            let mut mem = Memory::new(1 << 20, 2048);
            let mut p = path();
            let mut c = cpu(pfq);
            let src = mem
                .alloc_walk(AccessPattern::strided(64).unwrap(), 1024, None)
                .unwrap();
            let dst = mem
                .alloc_walk(AccessPattern::Contiguous, 1024, None)
                .unwrap();
            LocalCopier::new(src, dst)
                .run(&mut c, &mut p, &mut mem)
                .unwrap();
            c.t
        };
        // With a single DRAM bank the pipeline cannot overlap much; the test
        // only requires it not to be slower.
        assert!(run(true) <= run(false));
    }

    #[test]
    fn sender_blocks_on_full_fifo_and_resumes() {
        let mut mem = Memory::new(64 * 1024, 2048);
        let mut p = path();
        let mut c = cpu(false);
        let src = mem.alloc_walk(AccessPattern::Contiguous, 8, None).unwrap();
        mem.fill(src.region(), 100..108);
        let mut tx = TimedFifo::new(2);
        let mut s = CpuSender::new(src, None);
        let mut blocked = 0;
        let mut done = false;
        let mut drained = Vec::new();
        // Drive sender; drain one word whenever it blocks.
        for _ in 0..200 {
            match s.step(&mut c, &mut p, &mem, &mut tx).unwrap() {
                Step::Blocked => {
                    blocked += 1;
                    let (_, w) = tx.pop(c.t + 50).unwrap();
                    drained.push(w.data);
                }
                Step::Done => {
                    done = true;
                    break;
                }
                Step::Progressed => {}
            }
        }
        while let Some((_, w)) = tx.pop(u64::MAX / 2) {
            drained.push(w.data);
        }
        assert!(done, "sender must finish");
        assert!(blocked > 0, "2-slot fifo must backpressure");
        assert_eq!(drained, (100..108).collect::<Vec<_>>());
    }

    #[test]
    fn receiver_stores_addressed_words() {
        let mut mem = Memory::new(64 * 1024, 2048);
        let mut p = path();
        let mut c = cpu(false);
        let dst = mem
            .alloc_walk(AccessPattern::strided(2).unwrap(), 4, None)
            .unwrap();
        let mut rx = TimedFifo::new(8);
        for i in 0..4u64 {
            rx.push(
                i * 10,
                NetWord {
                    addr: Some(dst.addr(3 - i)),
                    data: 70 + i,
                    kind: WordKind::Data,
                },
            )
            .unwrap();
        }
        let mut r = CpuReceiver::new(dst.clone());
        while r.step(&mut c, &mut p, &mut mem, &mut rx).unwrap() != Step::Done {}
        assert_eq!(mem.read(dst.addr(3)), 70);
        assert_eq!(mem.read(dst.addr(0)), 73);
    }

    #[test]
    fn receiver_blocks_on_empty_fifo() {
        let mut mem = Memory::new(64 * 1024, 2048);
        let mut p = path();
        let mut c = cpu(false);
        let dst = mem.alloc_walk(AccessPattern::Contiguous, 1, None).unwrap();
        let mut rx = TimedFifo::new(2);
        let mut r = CpuReceiver::new(dst);
        assert_eq!(
            r.step(&mut c, &mut p, &mut mem, &mut rx).unwrap(),
            Step::Blocked
        );
    }

    #[test]
    fn adp_sender_attaches_remote_addresses() {
        let mut mem = Memory::new(64 * 1024, 2048);
        let mut p = path();
        let mut c = cpu(false);
        let src = mem.alloc_walk(AccessPattern::Contiguous, 4, None).unwrap();
        let dst = mem
            .alloc_walk(AccessPattern::strided(8).unwrap(), 4, None)
            .unwrap();
        mem.fill(src.region(), 0..4);
        let mut tx = TimedFifo::new(16);
        let mut s = CpuSender::new(src, Some(dst.clone()));
        while s.step(&mut c, &mut p, &mem, &mut tx).unwrap() != Step::Done {}
        for i in 0..4 {
            let (_, w) = tx.pop(c.t).unwrap();
            assert_eq!(w.addr, Some(dst.addr(i)));
            assert_eq!(w.wire_bytes(), 16);
        }
    }
}
