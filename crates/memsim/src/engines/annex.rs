//! The full annex: deposit **and** remote-load service.
//!
//! The T3D's fetch/deposit circuitry "handles incoming remote operations
//! (loads and stores) with their memory accesses on behalf of the
//! communication system". [`DepositEngine`](crate::engines::DepositEngine)
//! models the store half in isolation; an [`AnnexEngine`] handles a mixed
//! incoming stream: data words are deposited, request words
//! ([`WordKind::Request`]) are served by reading local memory and sending
//! the value back as an addressed reply. This is the machinery behind
//! remote *loads* ("get"), which the paper deliberately avoids: "when
//! withdrawing data, the latency is higher since address information has to
//! travel first to the node that holds the data."

use crate::clock::Cycle;
use crate::engines::{DepositParams, Step};
use crate::error::{SimError, SimResult};
use crate::mem::Memory;
use crate::nic::{NetWord, TimedFifo, WordKind};
use crate::path::{MemPath, Port};

/// Counters of an annex run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnexStats {
    /// Data words deposited to memory.
    pub deposited: u64,
    /// Remote-load requests served.
    pub served: u64,
}

/// An annex serving a mixed incoming stream of deposits and remote-load
/// requests.
#[derive(Debug)]
pub struct AnnexEngine {
    /// The engine's local clock.
    pub t: Cycle,
    params: DepositParams,
    expected_deposits: u64,
    expected_requests: u64,
    staged_reply: Option<NetWord>,
    stats: AnnexStats,
}

impl AnnexEngine {
    /// Creates an annex that will deposit `expected_deposits` data words and
    /// serve `expected_requests` remote loads.
    pub fn new(params: DepositParams, expected_deposits: u64, expected_requests: u64) -> Self {
        AnnexEngine {
            t: 0,
            params,
            expected_deposits,
            expected_requests,
            staged_reply: None,
            stats: AnnexStats::default(),
        }
    }

    /// Progress counters.
    pub fn stats(&self) -> AnnexStats {
        self.stats
    }

    fn is_done(&self) -> bool {
        self.stats.deposited == self.expected_deposits
            && self.stats.served == self.expected_requests
            && self.staged_reply.is_none()
    }

    /// Advances by one word: flush a staged reply, or consume one incoming
    /// word (deposit it or serve it).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] when a word is missing the address the
    /// annex needs (bare data, bare request) or carries protocol control
    /// traffic the annex cannot interpret — all reachable under fault
    /// injection.
    pub fn step(
        &mut self,
        path: &mut MemPath,
        mem: &mut Memory,
        rx: &mut TimedFifo,
        tx: &mut TimedFifo,
    ) -> SimResult<Step> {
        if let Some(reply) = self.staged_reply {
            return Ok(match tx.push(self.t, reply) {
                Some(at) => {
                    self.t = self.t.max(at);
                    self.staged_reply = None;
                    Step::Progressed
                }
                None => Step::Blocked,
            });
        }
        if self.is_done() {
            return Ok(Step::Done);
        }
        let Some((at, word)) = rx.pop(self.t) else {
            return Ok(Step::Blocked);
        };
        self.t = self.t.max(at) + self.params.word_cycles;
        let protocol_err = |detail: &str, at: Cycle| {
            Err(SimError::Protocol {
                detail: detail.to_string(),
                at,
            })
        };
        match word.kind {
            WordKind::Data => {
                let Some(addr) = word.addr else {
                    return protocol_err("annex deposits are always addressed", self.t);
                };
                self.t = path.engine_write(self.t, Port::Deposit, addr, 1);
                mem.write(addr, word.data);
                self.stats.deposited += 1;
            }
            WordKind::Request => {
                let Some(remote) = word.addr else {
                    return protocol_err("requests carry the address to read", self.t);
                };
                self.t = path.engine_read(self.t, Port::Deposit, remote, 1);
                let value = mem.read(remote);
                self.staged_reply = Some(NetWord::addressed(word.data, value));
                self.stats.served += 1;
            }
            WordKind::Control => {
                return protocol_err("annex cannot interpret control words", self.t);
            }
        }
        Ok(Step::Progressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, NodeParams};
    use memcomm_model::AccessPattern;

    fn drive(annex: &mut AnnexEngine, node: &mut Node) {
        // tx/rx are disjoint fields; split-borrow through the node.
        for _ in 0..10_000 {
            let Node {
                path, mem, tx, rx, ..
            } = node;
            match annex.step(path, mem, rx, tx).unwrap() {
                Step::Done => return,
                Step::Blocked => panic!("annex starved"),
                Step::Progressed => {}
            }
        }
        panic!("annex did not finish");
    }

    #[test]
    fn serves_requests_with_replies() {
        let mut node = Node::new(NodeParams::default());
        let data = node.alloc_walk(AccessPattern::Contiguous, 8, None).unwrap();
        node.mem.fill(data.region(), (0..8).map(|i| 100 + i));
        for i in 0..8 {
            node.rx
                .push(i, NetWord::request(data.addr(i), 0x9000 + i * 8))
                .unwrap();
        }
        let mut annex = AnnexEngine::new(node.params().deposit, 0, 8);
        drive(&mut annex, &mut node);
        assert_eq!(annex.stats().served, 8);
        let replies: Vec<NetWord> =
            std::iter::from_fn(|| node.tx.pop(u64::MAX / 2).map(|(_, w)| w)).collect();
        assert_eq!(replies.len(), 8);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.kind, WordKind::Data);
            assert_eq!(r.addr, Some(0x9000 + i as u64 * 8));
            assert_eq!(r.data, 100 + i as u64);
        }
    }

    #[test]
    fn mixed_stream_deposits_and_serves() {
        let mut node = Node::new(NodeParams::default());
        let data = node.alloc_walk(AccessPattern::Contiguous, 4, None).unwrap();
        node.mem.fill(data.region(), [7, 8, 9, 10]);
        let sink = node.alloc_walk(AccessPattern::Contiguous, 2, None).unwrap();
        node.rx
            .push(0, NetWord::addressed(sink.addr(0), 41))
            .unwrap();
        node.rx
            .push(1, NetWord::request(data.addr(2), 0x9000))
            .unwrap();
        node.rx
            .push(2, NetWord::addressed(sink.addr(1), 42))
            .unwrap();
        let mut annex = AnnexEngine::new(node.params().deposit, 2, 1);
        drive(&mut annex, &mut node);
        assert_eq!(node.mem.read(sink.addr(0)), 41);
        assert_eq!(node.mem.read(sink.addr(1)), 42);
        let (_, reply) = node.tx.pop(u64::MAX / 2).unwrap();
        assert_eq!(reply.data, 9);
    }

    #[test]
    fn blocked_reply_is_not_lost() {
        let mut node = Node::new(NodeParams::default());
        // Tiny tx so the reply push blocks.
        node.tx = TimedFifo::new(1);
        node.tx.push(0, NetWord::data(0)).unwrap();
        let data = node.alloc_walk(AccessPattern::Contiguous, 1, None).unwrap();
        node.mem.write(data.addr(0), 55);
        node.rx
            .push(0, NetWord::request(data.addr(0), 0x9000))
            .unwrap();
        let mut annex = AnnexEngine::new(node.params().deposit, 0, 1);
        let Node {
            path, mem, tx, rx, ..
        } = &mut node;
        assert_eq!(annex.step(path, mem, rx, tx).unwrap(), Step::Progressed); // read memory, stage
        assert_eq!(annex.step(path, mem, rx, tx).unwrap(), Step::Blocked); // tx full
        tx.pop(100);
        assert_eq!(annex.step(path, mem, rx, tx).unwrap(), Step::Progressed); // reply out
        assert_eq!(annex.step(path, mem, rx, tx).unwrap(), Step::Done);
        let (_, reply) = tx.pop(u64::MAX / 2).unwrap();
        assert_eq!(reply.data, 55);
    }

    #[test]
    fn control_words_are_rejected() {
        let mut node = Node::new(NodeParams::default());
        node.rx.push(0, NetWord::control(0xAB)).unwrap();
        let mut annex = AnnexEngine::new(node.params().deposit, 1, 0);
        let Node {
            path, mem, tx, rx, ..
        } = &mut node;
        assert!(matches!(
            annex.step(path, mem, rx, tx),
            Err(SimError::Protocol { .. })
        ));
    }
}
