//! Deposit engine (receive-deposit `0Dy`).
//!
//! "The sole purpose of a deposit engine is to take data from the network
//! and store it to the memory system on behalf of the communication system"
//! — in the background, without processor involvement. The T3D's annex
//! handles any access pattern (addresses travel with the data); the
//! Paragon's DMA can act as a deposit engine for contiguous blocks only.

use crate::clock::Cycle;
use crate::engines::Step;
use crate::error::{SimError, SimResult};
use crate::mem::{Memory, WORD_BYTES};
use crate::nic::TimedFifo;
use crate::path::{MemPath, Port};
use crate::walk::Walk;
use memcomm_model::AccessPattern;

/// Where the deposit engine gets its store addresses.
#[derive(Debug, Clone)]
pub enum DepositMode {
    /// Each incoming word carries its own address (address-data pairs).
    Addressed,
    /// Bare data words land along a predetermined walk (data-only
    /// transfers into a receive buffer).
    Stream(Walk),
}

/// Deposit-engine cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepositParams {
    /// Engine overhead per word (FIFO pop, address decode).
    pub word_cycles: Cycle,
    /// Maximum contiguous words coalesced into one memory burst.
    pub coalesce_words: u32,
    /// Whether the engine can only store contiguous streams (Paragon DMA).
    pub contiguous_only: bool,
}

/// A deposit engine draining one transfer of `expected` words.
#[derive(Debug, Clone)]
pub struct DepositEngine {
    /// The engine's local clock.
    pub t: Cycle,
    params: DepositParams,
    mode: DepositMode,
    expected: u64,
    received: u64,
    burst_base: u64,
    burst: Vec<u64>,
}

impl DepositEngine {
    /// Creates a deposit engine expecting `expected` words.
    ///
    /// # Panics
    ///
    /// Panics if a contiguous-only engine is given a non-contiguous stream
    /// walk, or if a stream walk is shorter than `expected`.
    pub fn new(params: DepositParams, mode: DepositMode, expected: u64) -> Self {
        assert!(params.coalesce_words >= 1);
        if let DepositMode::Stream(w) = &mode {
            assert!(w.len() >= expected, "stream walk shorter than transfer");
            if params.contiguous_only {
                assert_eq!(
                    w.pattern(),
                    AccessPattern::Contiguous,
                    "this deposit engine handles only contiguous streams"
                );
            }
        }
        DepositEngine {
            t: 0,
            params,
            mode,
            expected,
            received: 0,
            burst_base: 0,
            burst: Vec::new(),
        }
    }

    /// Words deposited (including any still coalescing).
    pub fn received(&self) -> u64 {
        self.received
    }

    fn flush(&mut self, path: &mut MemPath, mem: &mut Memory) {
        if self.burst.is_empty() {
            return;
        }
        self.t = path.engine_write(
            self.t,
            Port::Deposit,
            self.burst_base,
            self.burst.len() as u32,
        );
        for (k, v) in self.burst.drain(..).enumerate() {
            mem.write(self.burst_base + k as u64 * WORD_BYTES, v);
        }
    }

    /// Advances by one word (or a final burst flush).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] when an addressed engine receives a
    /// bare data or control word (it has no address to deposit at), or when
    /// a contiguous-only engine sees a non-contiguous address. Both are
    /// reachable under fault injection (a corrupted or misrouted word), so
    /// they fail the transfer rather than the process.
    pub fn step(
        &mut self,
        path: &mut MemPath,
        mem: &mut Memory,
        rx: &mut TimedFifo,
    ) -> SimResult<Step> {
        if self.received == self.expected {
            if self.burst.is_empty() {
                return Ok(Step::Done);
            }
            self.flush(path, mem);
            return Ok(Step::Progressed);
        }
        let Some((at, word)) = rx.pop(self.t) else {
            return Ok(Step::Blocked);
        };
        self.t = self.t.max(at) + self.params.word_cycles;
        let addr = match (&self.mode, word.addr) {
            (DepositMode::Addressed, Some(a)) => a,
            (DepositMode::Addressed, None) => {
                return Err(SimError::Protocol {
                    detail: "addressed deposit engine received a bare data word".to_string(),
                    at: self.t,
                });
            }
            (DepositMode::Stream(w), _) => w.addr(self.received),
        };
        if self.params.contiguous_only
            && !self.burst.is_empty()
            && addr != self.burst_base + self.burst.len() as u64 * WORD_BYTES
        {
            return Err(SimError::Protocol {
                detail: "contiguous-only deposit engine saw a non-contiguous address".to_string(),
                at: self.t,
            });
        }
        let continues = !self.burst.is_empty()
            && addr == self.burst_base + self.burst.len() as u64 * WORD_BYTES
            && (self.burst.len() as u32) < self.params.coalesce_words;
        if !continues {
            self.flush(path, mem);
            self.burst_base = addr;
        }
        self.burst.push(word.data);
        self.received += 1;
        if self.burst.len() as u32 == self.params.coalesce_words {
            self.flush(path, mem);
        }
        Ok(Step::Progressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheParams, WritePolicy};
    use crate::dram::DramParams;
    use crate::nic::{NetWord, WordKind};
    use crate::path::PathParams;
    use crate::readahead::ReadAheadParams;
    use crate::wbq::WbqParams;

    fn path() -> MemPath {
        MemPath::new(PathParams {
            cache: CacheParams {
                size_bytes: 8 * 1024,
                line_bytes: 32,
                ways: 1,
                write_policy: WritePolicy::WriteThrough,
                allocate_on_store_miss: false,
                hit_cycles: 1,
            },
            wbq: WbqParams {
                entries: 4,
                merge: true,
                line_bytes: 32,
            },
            readahead: ReadAheadParams {
                enabled: false,
                buffer_hit_cycles: 4,
            },
            dram: DramParams {
                banks: 1,
                interleave_bytes: 32,
                row_bytes: 2048,
                read_hit_cycles: 5,
                read_miss_cycles: 22,
                write_hit_cycles: 4,
                write_miss_cycles: 22,
                posted_write_miss_cycles: 14,
                burst_word_cycles: 1,
                channel_word_cycles: 1,
                demand_latency_cycles: 10,
                write_row_affinity: true,
                read_row_affinity: true,
                turnaround_cycles: 0,
            },
            switch_penalty_cycles: 0,
            switch_window_cycles: 0,
            deposit_invalidates_cache: true,
        })
    }

    fn params() -> DepositParams {
        DepositParams {
            word_cycles: 2,
            coalesce_words: 4,
            contiguous_only: false,
        }
    }

    fn drive(engine: &mut DepositEngine, path: &mut MemPath, mem: &mut Memory, rx: &mut TimedFifo) {
        for _ in 0..10_000 {
            match engine.step(path, mem, rx).unwrap() {
                Step::Done => return,
                Step::Blocked => panic!("deposit engine starved"),
                Step::Progressed => {}
            }
        }
        panic!("deposit engine did not finish");
    }

    #[test]
    fn addressed_words_land_where_sent() {
        let mut mem = Memory::new(1 << 16, 2048);
        let mut p = path();
        let dst = mem
            .alloc_walk(AccessPattern::strided(16).unwrap(), 8, None)
            .unwrap();
        let mut rx = TimedFifo::new(32);
        for i in 0..8u64 {
            rx.push(
                0,
                NetWord {
                    addr: Some(dst.addr(i)),
                    data: 900 + i,
                    kind: WordKind::Data,
                },
            )
            .unwrap();
        }
        let mut d = DepositEngine::new(params(), DepositMode::Addressed, 8);
        drive(&mut d, &mut p, &mut mem, &mut rx);
        for i in 0..8 {
            assert_eq!(mem.read(dst.addr(i)), 900 + i);
        }
    }

    #[test]
    fn stream_mode_follows_walk() {
        let mut mem = Memory::new(1 << 16, 2048);
        let mut p = path();
        let dst = mem.alloc_walk(AccessPattern::Contiguous, 8, None).unwrap();
        let mut rx = TimedFifo::new(32);
        for i in 0..8u64 {
            rx.push(
                0,
                NetWord {
                    addr: None,
                    data: i,
                    kind: WordKind::Data,
                },
            )
            .unwrap();
        }
        let mut d = DepositEngine::new(params(), DepositMode::Stream(dst.clone()), 8);
        drive(&mut d, &mut p, &mut mem, &mut rx);
        assert_eq!(mem.dump(dst.region()), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn contiguous_runs_coalesce_into_bursts() {
        let mut mem = Memory::new(1 << 16, 2048);
        let mut p = path();
        let dst = mem.alloc_walk(AccessPattern::Contiguous, 16, None).unwrap();
        let mut rx = TimedFifo::new(32);
        for i in 0..16u64 {
            rx.push(
                0,
                NetWord {
                    addr: Some(dst.addr(i)),
                    data: i,
                    kind: WordKind::Data,
                },
            )
            .unwrap();
        }
        let mut d = DepositEngine::new(params(), DepositMode::Addressed, 16);
        drive(&mut d, &mut p, &mut mem, &mut rx);
        // 16 contiguous words at coalesce 4: four DRAM writes, not sixteen.
        assert_eq!(p.dram_stats().writes, 4);
    }

    #[test]
    fn strided_deposits_write_word_at_a_time() {
        let mut mem = Memory::new(1 << 20, 2048);
        let mut p = path();
        let dst = mem
            .alloc_walk(AccessPattern::strided(64).unwrap(), 8, None)
            .unwrap();
        let mut rx = TimedFifo::new(32);
        for i in 0..8u64 {
            rx.push(
                0,
                NetWord {
                    addr: Some(dst.addr(i)),
                    data: i,
                    kind: WordKind::Data,
                },
            )
            .unwrap();
        }
        let mut d = DepositEngine::new(params(), DepositMode::Addressed, 8);
        drive(&mut d, &mut p, &mut mem, &mut rx);
        assert_eq!(p.dram_stats().writes, 8);
    }

    #[test]
    fn blocks_when_fifo_empty() {
        let mut mem = Memory::new(1 << 16, 2048);
        let mut p = path();
        let mut rx = TimedFifo::new(4);
        let mut d = DepositEngine::new(params(), DepositMode::Addressed, 4);
        assert_eq!(d.step(&mut p, &mut mem, &mut rx).unwrap(), Step::Blocked);
    }

    #[test]
    fn contiguous_only_engine_rejects_gaps() {
        let mut mem = Memory::new(1 << 16, 2048);
        let mut p = path();
        let mut rx = TimedFifo::new(4);
        rx.push(
            0,
            NetWord {
                addr: Some(0),
                data: 1,
                kind: WordKind::Data,
            },
        )
        .unwrap();
        rx.push(
            0,
            NetWord {
                addr: Some(64),
                data: 2,
                kind: WordKind::Data,
            },
        )
        .unwrap();
        let mut d = DepositEngine::new(
            DepositParams {
                contiguous_only: true,
                ..params()
            },
            DepositMode::Addressed,
            2,
        );
        d.step(&mut p, &mut mem, &mut rx).unwrap();
        match d.step(&mut p, &mut mem, &mut rx) {
            Err(SimError::Protocol { detail, .. }) => {
                assert!(detail.contains("non-contiguous"), "{detail}");
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn addressed_engine_rejects_bare_words() {
        let mut mem = Memory::new(1 << 16, 2048);
        let mut p = path();
        let mut rx = TimedFifo::new(4);
        rx.push(0, NetWord::data(5)).unwrap();
        let mut d = DepositEngine::new(params(), DepositMode::Addressed, 1);
        assert!(matches!(
            d.step(&mut p, &mut mem, &mut rx),
            Err(SimError::Protocol { .. })
        ));
    }
}
