//! On-chip cache model (tags only).
//!
//! The cache decides hit/miss timing; the data itself lives in
//! [`Memory`](crate::mem::Memory). Massively parallel nodes of the period
//! have a single cache level: the T3D's 8 KB direct-mapped on-chip cache
//! (write-around stores) and the Paragon's 16 KB 4-way cache (write-through
//! under SUNMOS).

use crate::clock::Cycle;

/// Store handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Stores propagate to memory immediately (through the write buffer);
    /// a hit also updates the line.
    WriteThrough,
    /// Stores dirty the line; memory is updated on eviction.
    WriteBack,
}

/// Geometry and policy of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
    /// Store policy.
    pub write_policy: WritePolicy,
    /// Whether a store miss allocates the line ("write-around" caches do
    /// not).
    pub allocate_on_store_miss: bool,
    /// Load-hit latency in cycles (pipelined).
    pub hit_cycles: Cycle,
}

/// Result of a load lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The line was present.
    Hit,
    /// The line must be filled from memory; if the victim was dirty its
    /// line-base address must be written back first.
    Miss {
        /// Dirty victim to write back, if any.
        evicted_dirty: Option<u64>,
    },
}

/// Result of a store lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// Write-through: the word goes to the write buffer regardless; `hit`
    /// records whether the line was also updated in place.
    WriteThrough {
        /// Whether the store also hit the cache.
        hit: bool,
    },
    /// Write-back hit: line dirtied, no memory traffic now.
    WriteBackHit,
    /// Write-back miss.
    WriteBackMiss {
        /// Whether the line was allocated (fill required).
        allocated: bool,
        /// Dirty victim to write back, if any.
        evicted_dirty: Option<u64>,
    },
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Load lookups that hit.
    pub load_hits: u64,
    /// Load lookups that missed.
    pub load_misses: u64,
    /// Store lookups that hit.
    pub store_hits: u64,
    /// Store lookups that missed.
    pub store_misses: u64,
    /// Lines invalidated by external agents (deposit engine).
    pub invalidations: u64,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// The cache.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into
    /// `ways` × power-of-two sets of `line_bytes`).
    pub fn new(params: CacheParams) -> Self {
        assert!(
            params.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(params.ways >= 1);
        let lines = params.size_bytes / params.line_bytes;
        assert!(
            lines.is_multiple_of(u64::from(params.ways)) && lines > 0,
            "cache of {} bytes cannot hold {}-way sets of {}-byte lines",
            params.size_bytes,
            params.ways,
            params.line_bytes
        );
        let set_count = (lines / u64::from(params.ways)) as usize;
        assert!(
            set_count.is_power_of_two(),
            "set count must be a power of two"
        );
        Cache {
            params,
            sets: vec![
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        lru: 0
                    };
                    params.ways as usize
                ];
                set_count
            ],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Line-base address of `addr`.
    pub fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.params.line_bytes - 1)
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.params.line_bytes;
        let set = (line as usize) & (self.sets.len() - 1);
        (set, line)
    }

    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        self.sets[set].iter().position(|l| l.valid && l.tag == tag)
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.tick += 1;
        self.sets[set][way].lru = self.tick;
    }

    fn victim(&self, set: usize) -> usize {
        self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("sets are never empty")
    }

    fn fill(&mut self, set: usize, tag: u64, dirty: bool) -> Option<u64> {
        let way = self.victim(set);
        let old = self.sets[set][way];
        let evicted_dirty = (old.valid && old.dirty).then(|| old.tag * self.params.line_bytes);
        self.tick += 1;
        self.sets[set][way] = Line {
            tag,
            valid: true,
            dirty,
            lru: self.tick,
        };
        evicted_dirty
    }

    /// Looks up a load, updating tags (a miss allocates the line).
    pub fn load(&mut self, addr: u64) -> LoadOutcome {
        let (set, tag) = self.set_and_tag(addr);
        if let Some(way) = self.find(set, tag) {
            self.stats.load_hits += 1;
            self.touch(set, way);
            LoadOutcome::Hit
        } else {
            self.stats.load_misses += 1;
            let evicted_dirty = self.fill(set, tag, false);
            LoadOutcome::Miss { evicted_dirty }
        }
    }

    /// Looks up a store, updating tags per the write policy.
    pub fn store(&mut self, addr: u64) -> StoreOutcome {
        let (set, tag) = self.set_and_tag(addr);
        let hit_way = self.find(set, tag);
        match self.params.write_policy {
            WritePolicy::WriteThrough => {
                if let Some(way) = hit_way {
                    self.stats.store_hits += 1;
                    self.touch(set, way);
                    StoreOutcome::WriteThrough { hit: true }
                } else {
                    self.stats.store_misses += 1;
                    if self.params.allocate_on_store_miss {
                        self.fill(set, tag, false);
                    }
                    StoreOutcome::WriteThrough { hit: false }
                }
            }
            WritePolicy::WriteBack => {
                if let Some(way) = hit_way {
                    self.stats.store_hits += 1;
                    self.touch(set, way);
                    self.sets[set][way].dirty = true;
                    StoreOutcome::WriteBackHit
                } else {
                    self.stats.store_misses += 1;
                    if self.params.allocate_on_store_miss {
                        let evicted_dirty = self.fill(set, tag, true);
                        StoreOutcome::WriteBackMiss {
                            allocated: true,
                            evicted_dirty,
                        }
                    } else {
                        StoreOutcome::WriteBackMiss {
                            allocated: false,
                            evicted_dirty: None,
                        }
                    }
                }
            }
        }
    }

    /// Invalidates the line containing `addr` (the T3D annex invalidates
    /// line by line as remote stores land).
    pub fn invalidate_line(&mut self, addr: u64) {
        let (set, tag) = self.set_and_tag(addr);
        if let Some(way) = self.find(set, tag) {
            self.sets[set][way].valid = false;
            self.stats.invalidations += 1;
        }
    }

    /// Invalidates the whole cache (T3D synchronization-point flush).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.valid {
                    line.valid = false;
                    self.stats.invalidations += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_mapped() -> Cache {
        Cache::new(CacheParams {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 1,
            write_policy: WritePolicy::WriteThrough,
            allocate_on_store_miss: false,
            hit_cycles: 1,
        })
    }

    #[test]
    fn load_miss_then_hit_within_line() {
        let mut c = direct_mapped();
        assert!(matches!(c.load(0), LoadOutcome::Miss { .. }));
        assert_eq!(c.load(8), LoadOutcome::Hit);
        assert_eq!(c.load(24), LoadOutcome::Hit);
        assert!(matches!(c.load(32), LoadOutcome::Miss { .. }));
        assert_eq!(c.stats().load_hits, 2);
        assert_eq!(c.stats().load_misses, 2);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = direct_mapped();
        // 1024-byte direct-mapped: addresses 1024 apart conflict.
        c.load(0);
        c.load(1024);
        assert!(matches!(c.load(0), LoadOutcome::Miss { .. }));
    }

    #[test]
    fn set_associative_avoids_conflict() {
        let mut c = Cache::new(CacheParams {
            size_bytes: 2048,
            line_bytes: 32,
            ways: 2,
            write_policy: WritePolicy::WriteThrough,
            allocate_on_store_miss: false,
            hit_cycles: 1,
        });
        c.load(0);
        c.load(1024); // same set, second way
        assert_eq!(c.load(0), LoadOutcome::Hit);
        assert_eq!(c.load(1024), LoadOutcome::Hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(CacheParams {
            size_bytes: 2048,
            line_bytes: 32,
            ways: 2,
            write_policy: WritePolicy::WriteThrough,
            allocate_on_store_miss: false,
            hit_cycles: 1,
        });
        c.load(0);
        c.load(1024);
        c.load(0); // refresh 0
        c.load(2048); // evicts 1024, not 0
        assert_eq!(c.load(0), LoadOutcome::Hit);
        assert!(matches!(c.load(1024), LoadOutcome::Miss { .. }));
    }

    #[test]
    fn write_around_does_not_allocate() {
        let mut c = direct_mapped();
        assert_eq!(c.store(0), StoreOutcome::WriteThrough { hit: false });
        assert!(matches!(c.load(0), LoadOutcome::Miss { .. }));
    }

    #[test]
    fn write_back_dirties_and_evicts() {
        let mut c = Cache::new(CacheParams {
            size_bytes: 1024,
            line_bytes: 32,
            ways: 1,
            write_policy: WritePolicy::WriteBack,
            allocate_on_store_miss: true,
            hit_cycles: 1,
        });
        assert!(matches!(
            c.store(0),
            StoreOutcome::WriteBackMiss {
                allocated: true,
                evicted_dirty: None
            }
        ));
        assert_eq!(c.store(8), StoreOutcome::WriteBackHit);
        // Conflicting load must write the dirty line back.
        match c.load(1024) {
            LoadOutcome::Miss { evicted_dirty } => assert_eq!(evicted_dirty, Some(0)),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn invalidation_forces_refetch() {
        let mut c = direct_mapped();
        c.load(64);
        c.invalidate_line(64);
        assert!(matches!(c.load(64), LoadOutcome::Miss { .. }));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let mut c = direct_mapped();
        c.load(0);
        c.load(32);
        c.invalidate_all();
        assert!(matches!(c.load(0), LoadOutcome::Miss { .. }));
        assert!(matches!(c.load(32), LoadOutcome::Miss { .. }));
    }

    #[test]
    fn line_base_masks_offset() {
        let c = direct_mapped();
        assert_eq!(c.line_base(0x1234), 0x1220);
    }
}
