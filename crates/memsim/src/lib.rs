//! # memcomm-memsim — node memory-system simulator
//!
//! A discrete-event, timestamp-based simulator of the memory system of a
//! mid-1990s massively-parallel-computer node, built to reproduce the
//! measurements of Stricker & Gross (ISCA 1995) on the Cray T3D and Intel
//! Paragon.
//!
//! The simulator is **mechanistic**: throughput differences between access
//! patterns are not looked up from tables but *emerge* from component
//! models —
//!
//! * a page-mode [`Dram`](dram::Dram) with per-bank row buffers and burst
//!   transfers (one bank on the T3D, interleaved banks on the Paragon);
//! * an on-chip [`Cache`](cache::Cache) (tags only — data lives in
//!   [`Memory`](mem::Memory) so every simulated transfer moves real bytes);
//! * a write buffer ([`Wbq`](wbq::Wbq)) with line merging and posted-write
//!   pipelining, the T3D's "write-back queue";
//! * a stream-detecting [`ReadAhead`](readahead::ReadAhead) unit, the T3D's
//!   RDAL circuitry;
//! * a pipelined-load queue ([`Pfq`](pfq::Pfq)), the i860XP's cache-bypassing
//!   `pfld` mechanism;
//! * background engines: a contiguous-only [`Dma`](engines::Dma) with
//!   page-boundary "kick" stalls, and a flexible
//!   [`DepositEngine`](engines::DepositEngine) like the T3D annex;
//! * network-interface FIFOs ([`nic`]) with timestamped, bounded occupancy.
//!
//! All agents contend for memory through a single arbitration point, the
//! [`MemPath`](path::MemPath); time is a `u64` cycle count and each agent is
//! a state machine that a driver advances in causal (earliest-first) order.
//!
//! ## Example: measuring a local strided copy
//!
//! ```rust
//! use memcomm_memsim::node::{Node, NodeParams};
//! use memcomm_memsim::scenario;
//! use memcomm_model::AccessPattern;
//!
//! # fn main() {
//! let mut node = Node::new(NodeParams::default());
//! let words = 16 * 1024;
//! let src = node
//!     .alloc_walk(AccessPattern::Contiguous, words, None)
//!     .unwrap();
//! let dst = node
//!     .alloc_walk(AccessPattern::strided(64).unwrap(), words, None)
//!     .unwrap();
//! let m = scenario::run_local_copy(&mut node, &src, &dst).unwrap();
//! assert_eq!(m.words, words as u64);
//! assert!(m.throughput(node.clock()).as_mbps() > 0.0);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod dram;
pub mod engines;
pub mod error;
pub mod fault;
pub mod mem;
pub mod nic;
pub mod node;
pub mod path;
pub mod pfq;
pub mod readahead;
pub mod scenario;
pub mod stats;
pub mod trace;
pub mod walk;
pub mod wbq;

pub use clock::{Clock, Cycle};
pub use error::{SimError, SimResult};
pub use fault::{FaultConfig, FaultPlan, LinkFault};
pub use node::{Node, NodeParams};
pub use stats::Measurement;
