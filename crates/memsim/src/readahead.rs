//! Stream-detecting read-ahead unit (the T3D's RDAL circuitry).
//!
//! When the external read-ahead logic observes two consecutive line fills,
//! it prefetches the next line during otherwise idle DRAM time. The paper
//! reports ≈ 60% improvement for contiguous load streams when the
//! programmer enables it at load time.

use crate::clock::Cycle;

/// Read-ahead configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadAheadParams {
    /// Whether the unit is enabled (a load-time choice on the T3D).
    pub enabled: bool,
    /// Cycles to hand a prefetched line to the processor (the fill comes
    /// from the read-ahead buffer, not DRAM).
    pub buffer_hit_cycles: Cycle,
}

/// Counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadAheadStats {
    /// Demand fills served from the prefetch buffer.
    pub prefetch_hits: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Prefetched lines that were never used.
    pub wasted: u64,
}

/// The read-ahead unit's state.
#[derive(Debug, Clone)]
pub struct ReadAhead {
    params: ReadAheadParams,
    last_fill: Option<u64>,
    prefetched: Option<(u64, Cycle)>,
    stats: ReadAheadStats,
}

impl ReadAhead {
    /// Creates the unit.
    pub fn new(params: ReadAheadParams) -> Self {
        ReadAhead {
            params,
            last_fill: None,
            prefetched: None,
            stats: ReadAheadStats::default(),
        }
    }

    /// Configuration.
    pub fn params(&self) -> &ReadAheadParams {
        &self.params
    }

    /// Counters.
    pub fn stats(&self) -> ReadAheadStats {
        self.stats
    }

    /// Checks whether a demand fill of `line_base` is already in the
    /// prefetch buffer. On a hit, returns when the buffered data is ready
    /// and consumes the buffer entry.
    pub fn buffer_hit(&mut self, line_base: u64, now: Cycle) -> Option<Cycle> {
        if !self.params.enabled {
            return None;
        }
        match self.prefetched {
            Some((line, ready)) if line == line_base => {
                self.prefetched = None;
                self.stats.prefetch_hits += 1;
                Some(now.max(ready) + self.params.buffer_hit_cycles)
            }
            _ => None,
        }
    }

    /// Records a demand fill of `line_base` and decides whether the next
    /// sequential line should be prefetched (two consecutive lines seen).
    pub fn on_fill(&mut self, line_base: u64, line_bytes: u64) -> Option<u64> {
        if !self.params.enabled {
            return None;
        }
        let sequential = self.last_fill == Some(line_base.wrapping_sub(line_bytes))
            || self
                .prefetched
                .is_some_and(|(l, _)| l == line_base.wrapping_sub(line_bytes));
        self.last_fill = Some(line_base);
        sequential.then_some(line_base + line_bytes)
    }

    /// Records that the prefetch of `line_base` was issued and will be ready
    /// at `ready_at`. A previously buffered unused line is discarded.
    pub fn note_prefetch(&mut self, line_base: u64, ready_at: Cycle) {
        if self.prefetched.is_some() {
            self.stats.wasted += 1;
        }
        self.prefetched = Some((line_base, ready_at));
        self.stats.prefetches += 1;
        self.last_fill = Some(line_base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(enabled: bool) -> ReadAhead {
        ReadAhead::new(ReadAheadParams {
            enabled,
            buffer_hit_cycles: 4,
        })
    }

    #[test]
    fn detects_sequential_stream_on_second_fill() {
        let mut r = unit(true);
        assert_eq!(r.on_fill(0, 32), None);
        assert_eq!(r.on_fill(32, 32), Some(64));
    }

    #[test]
    fn non_sequential_fills_do_not_trigger() {
        let mut r = unit(true);
        r.on_fill(0, 32);
        assert_eq!(r.on_fill(512, 32), None);
    }

    #[test]
    fn buffer_hit_consumes_entry_and_waits_for_ready() {
        let mut r = unit(true);
        r.note_prefetch(64, 100);
        assert_eq!(r.buffer_hit(64, 50), Some(104));
        assert_eq!(r.buffer_hit(64, 50), None, "entry consumed");
        assert_eq!(r.stats().prefetch_hits, 1);
    }

    #[test]
    fn buffer_hit_after_ready_costs_only_transfer() {
        let mut r = unit(true);
        r.note_prefetch(64, 100);
        assert_eq!(r.buffer_hit(64, 200), Some(204));
    }

    #[test]
    fn stream_continues_through_prefetched_lines() {
        let mut r = unit(true);
        r.on_fill(0, 32);
        assert_eq!(r.on_fill(32, 32), Some(64));
        r.note_prefetch(64, 10);
        // The demand stream reaches line 64 via the buffer; the next fill at
        // 96 still counts as sequential.
        assert!(r.buffer_hit(64, 20).is_some());
        assert_eq!(r.on_fill(96, 32), Some(128));
    }

    #[test]
    fn disabled_unit_is_inert() {
        let mut r = unit(false);
        assert_eq!(r.on_fill(0, 32), None);
        assert_eq!(r.on_fill(32, 32), None);
        r.note_prefetch(64, 0);
        assert_eq!(r.buffer_hit(64, 10), None);
    }

    #[test]
    fn replacing_unused_prefetch_counts_as_waste() {
        let mut r = unit(true);
        r.note_prefetch(64, 0);
        r.note_prefetch(128, 0);
        assert_eq!(r.stats().wasted, 1);
    }
}
