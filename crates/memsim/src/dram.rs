//! Page-mode DRAM with per-bank row buffers and a shared data channel.
//!
//! The T3D node has "a simple non-interleaved memory system built from DRAM
//! chips" — one bank, so every row conflict serializes. The Paragon spreads
//! lines over interleaved banks on its 400 MB/s bus, so independent accesses
//! to different banks overlap their row-miss latencies. This difference is
//! what makes indexed gathers comparatively fast on the Paragon and slow on
//! the T3D.

use crate::clock::Cycle;

/// Timing and geometry parameters of the DRAM system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramParams {
    /// Number of interleaved banks (1 on the T3D).
    pub banks: u32,
    /// Bank interleave granularity in bytes (typically the cache line).
    pub interleave_bytes: u64,
    /// Row (DRAM page) size in bytes per bank.
    pub row_bytes: u64,
    /// Cycles for the first word of a read that hits the open row.
    pub read_hit_cycles: Cycle,
    /// Cycles for the first word of a read that misses the open row
    /// (precharge + activate + access).
    pub read_miss_cycles: Cycle,
    /// Cycles for the first word of a write into the open row.
    pub write_hit_cycles: Cycle,
    /// Cycles for the first word of a write that misses the open row.
    pub write_miss_cycles: Cycle,
    /// Cycles for a row-miss *posted* write whose address the controller
    /// could predict (a constant-stride stream drained from the write
    /// buffer): precharge overlaps the previous transfer.
    pub posted_write_miss_cycles: Cycle,
    /// Cycles per additional word of a burst within the row.
    pub burst_word_cycles: Cycle,
    /// Data-channel occupancy per word, shared across banks.
    pub channel_word_cycles: Cycle,
    /// Extra latency (controller + board) a *demand* read pays between the
    /// access completing at the DRAM and the data reaching the requester.
    /// Occupies no resource — prefetching (read-ahead) and pipelined loads
    /// hide it, which is exactly their benefit.
    pub demand_latency_cycles: Cycle,
    /// Whether writes can hit an open row and leave it open. Controllers
    /// that perform read-modify-write for sub-line ECC updates (the T3D) or
    /// run a closed-page policy for writes get `false`: every write pays the
    /// row-miss cost and closes the row. Posted-write pipelining (regular
    /// drain streams) still applies.
    pub write_row_affinity: bool,
    /// Whether reads can hit an open row across accesses. Simple mid-90s
    /// controllers precharge after every access (closed page): each access
    /// pays its miss-class cost and bursts only help within one access.
    pub read_row_affinity: bool,
    /// Bus turnaround cycles charged when an access switches direction
    /// (read after write or write after read) on the shared memory bus.
    pub turnaround_cycles: Cycle,
}

impl DramParams {
    fn validate(&self) {
        assert!(self.banks >= 1, "need at least one bank");
        assert!(self.interleave_bytes > 0 && self.row_bytes > 0);
        assert!(self.read_miss_cycles >= self.read_hit_cycles);
        assert!(self.write_miss_cycles >= self.write_hit_cycles);
        assert!(self.posted_write_miss_cycles <= self.write_miss_cycles);
    }
}

/// The kind of DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramOp {
    /// A demand or prefetch read.
    Read,
    /// A write issued synchronously (e.g. by a deposit engine).
    Write,
    /// A write drained from a write buffer; `regular` is true when the
    /// drain stream has a predictable constant stride, enabling posted-write
    /// pipelining.
    PostedWrite {
        /// Whether the drain stream's addresses form a constant stride.
        regular: bool,
    },
}

/// The busy interval of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// When the access started (after bank arbitration).
    pub start: Cycle,
    /// When the last word was transferred.
    pub end: Cycle,
}

/// Counters exposed for tests and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses (bursts count once).
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that had to open a row.
    pub row_misses: u64,
    /// Row-miss writes served at the pipelined posted-write cost.
    pub posted_pipelined: u64,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    free_at: Cycle,
    open_row: Option<u64>,
}

/// The DRAM system: banks plus a shared data channel.
#[derive(Debug, Clone)]
pub struct Dram {
    params: DramParams,
    bank_state: Vec<Bank>,
    channel_free_at: Cycle,
    last_was_write: Option<bool>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM system.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (zero banks, miss faster than hit,
    /// …).
    pub fn new(params: DramParams) -> Self {
        params.validate();
        Dram {
            params,
            bank_state: vec![
                Bank {
                    free_at: 0,
                    open_row: None
                };
                params.banks as usize
            ],
            channel_free_at: 0,
            last_was_write: None,
            stats: DramStats::default(),
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &DramParams {
        &self.params
    }

    /// Access counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.params.interleave_bytes) % u64::from(self.params.banks)) as usize
    }

    fn row_of(&self, addr: u64) -> u64 {
        addr / (self.params.row_bytes * u64::from(self.params.banks))
    }

    /// Performs an access of `words` consecutive words starting at `addr`,
    /// requested at time `at`. Returns the busy interval; the bank and the
    /// data channel are occupied until `end`.
    ///
    /// # Panics
    ///
    /// Panics for zero-word accesses.
    pub fn access(&mut self, at: Cycle, addr: u64, words: u32, op: DramOp) -> Span {
        assert!(words >= 1, "dram access must move at least one word");
        let b = self.bank_of(addr);
        let row = self.row_of(addr);
        let bank = &mut self.bank_state[b];
        let is_write = !matches!(op, DramOp::Read);
        let turnaround = match self.last_was_write {
            Some(last) if last != is_write => self.params.turnaround_cycles,
            _ => 0,
        };
        self.last_was_write = Some(is_write);
        let start = at.max(bank.free_at) + turnaround;
        let affinity = if is_write {
            self.params.write_row_affinity
        } else {
            self.params.read_row_affinity
        };
        let hit = bank.open_row == Some(row) && affinity;
        if hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        let first = match (op, hit) {
            (DramOp::Read, true) => self.params.read_hit_cycles,
            (DramOp::Read, false) => self.params.read_miss_cycles,
            (DramOp::Write, true) | (DramOp::PostedWrite { .. }, true) => {
                self.params.write_hit_cycles
            }
            (DramOp::Write, false) => self.params.write_miss_cycles,
            (DramOp::PostedWrite { regular }, false) => {
                if regular {
                    self.stats.posted_pipelined += 1;
                    self.params.posted_write_miss_cycles
                } else {
                    self.params.write_miss_cycles
                }
            }
        };
        match op {
            DramOp::Read => self.stats.reads += 1,
            DramOp::Write | DramOp::PostedWrite { .. } => self.stats.writes += 1,
        }
        let burst = u64::from(words - 1) * self.params.burst_word_cycles;
        let access_end = start + first + burst;
        let channel_occ = u64::from(words) * self.params.channel_word_cycles;
        let end = access_end.max(self.channel_free_at + channel_occ);
        self.channel_free_at = end;
        bank.free_at = end;
        bank.open_row = if affinity { Some(row) } else { None };
        Span { start, end }
    }

    /// The earliest time a new access to `addr` could start.
    pub fn free_at(&self, addr: u64) -> Cycle {
        self.bank_state[self.bank_of(addr)].free_at
    }

    /// Whether an access to `addr` at this moment would hit the open row —
    /// used by write buffers to decide drain regularity.
    pub fn would_hit(&self, addr: u64) -> bool {
        self.bank_state[self.bank_of(addr)].open_row == Some(self.row_of(addr))
    }

    /// Resets the open-row and busy state (between measurement phases).
    pub fn quiesce(&mut self) {
        for bank in &mut self.bank_state {
            bank.open_row = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(banks: u32) -> DramParams {
        DramParams {
            banks,
            interleave_bytes: 32,
            row_bytes: 2048,
            read_hit_cycles: 4,
            read_miss_cycles: 22,
            write_hit_cycles: 3,
            write_miss_cycles: 22,
            posted_write_miss_cycles: 14,
            burst_word_cycles: 1,
            channel_word_cycles: 1,
            demand_latency_cycles: 10,
            write_row_affinity: true,
            read_row_affinity: true,
            turnaround_cycles: 0,
        }
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut d = Dram::new(params(1));
        let miss = d.access(0, 0, 1, DramOp::Read);
        let hit = d.access(miss.end, 8, 1, DramOp::Read);
        assert_eq!(miss.end - miss.start, 22);
        assert_eq!(hit.end - hit.start, 4);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn burst_words_are_cheap() {
        let mut d = Dram::new(params(1));
        let s = d.access(0, 0, 4, DramOp::Read);
        assert_eq!(s.end - s.start, 22 + 3);
    }

    #[test]
    fn bank_interleaving_overlaps_misses() {
        // Same-bank conflicting accesses serialize...
        let mut one = Dram::new(params(1));
        one.access(0, 0, 1, DramOp::Read);
        let serial = one.access(0, 4096, 1, DramOp::Read).end;
        // ...but with 4 banks, addresses 32 apart land in different banks
        // and only serialize on the channel.
        let mut four = Dram::new(params(4));
        four.access(0, 0, 1, DramOp::Read);
        let overlapped = four.access(0, 32, 1, DramOp::Read).end;
        assert!(overlapped < serial, "{overlapped} !< {serial}");
    }

    #[test]
    fn posted_regular_writes_are_pipelined() {
        let mut d = Dram::new(params(1));
        let irregular = d.access(0, 1 << 20, 1, DramOp::PostedWrite { regular: false });
        assert_eq!(irregular.end - irregular.start, 22);
        let regular = d.access(
            irregular.end,
            2 << 20,
            1,
            DramOp::PostedWrite { regular: true },
        );
        assert_eq!(regular.end - regular.start, 14);
        assert_eq!(d.stats().posted_pipelined, 1);
    }

    #[test]
    fn channel_serializes_across_banks() {
        let mut d = Dram::new(DramParams {
            channel_word_cycles: 10,
            ..params(4)
        });
        let a = d.access(0, 0, 4, DramOp::Read);
        let b = d.access(0, 32, 4, DramOp::Read);
        // Both transfers need 40 channel cycles; the second cannot end
        // before 80 channel cycles have elapsed.
        assert!(b.end >= a.end + 40);
    }

    #[test]
    fn busy_bank_delays_start() {
        let mut d = Dram::new(params(1));
        let first = d.access(0, 0, 4, DramOp::Read);
        let second = d.access(1, 8192, 1, DramOp::Read);
        assert_eq!(second.start, first.end);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = Dram::new(DramParams {
            banks: 0,
            ..params(1)
        });
    }
}
