//! Simulated time.

use memcomm_model::Throughput;

/// Simulated time, counted in processor clock cycles.
pub type Cycle = u64;

/// A node clock, converting between cycles, seconds and throughput.
///
/// # Examples
///
/// ```rust
/// use memcomm_memsim::Clock;
///
/// let t3d = Clock::from_mhz(150.0);
/// // 8 bytes every 12 cycles at 150 MHz is 100 MB/s.
/// let rate = t3d.throughput(8, 12);
/// assert!((rate.as_mbps() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    hz: f64,
}

impl Clock {
    /// Creates a clock from a frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive and finite.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz > 0.0, "clock must be positive");
        Clock { hz: mhz * 1.0e6 }
    }

    /// The clock frequency in Hz.
    pub fn hz(self) -> f64 {
        self.hz
    }

    /// Converts a cycle count to seconds.
    pub fn seconds(self, cycles: Cycle) -> f64 {
        cycles as f64 / self.hz
    }

    /// The throughput of moving `bytes` in `cycles`.
    ///
    /// Zero cycles with a positive byte count is a simulation bug and
    /// panics.
    pub fn throughput(self, bytes: u64, cycles: Cycle) -> Throughput {
        Throughput::from_bytes_per_sec(bytes, self.seconds(cycles.max(u64::from(bytes > 0))))
    }

    /// The number of cycles (rounded up, minimum 1) that moving one `unit`
    /// of `unit_bytes` takes at a target rate — used to express link or sink
    /// bandwidths in cycle terms.
    pub fn cycles_per_unit(self, unit_bytes: u64, rate: Throughput) -> Cycle {
        let cycles = unit_bytes as f64 * self.hz / rate.as_bytes_per_sec();
        cycles.ceil().max(1.0) as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcomm_model::MBps;

    #[test]
    fn seconds_conversion() {
        let c = Clock::from_mhz(100.0);
        assert!((c.seconds(100_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_of_zero_bytes_is_zero() {
        let c = Clock::from_mhz(100.0);
        assert_eq!(c.throughput(0, 0).as_mbps(), 0.0);
    }

    #[test]
    fn cycles_per_unit_rounds_up() {
        let c = Clock::from_mhz(150.0);
        // 160 MB/s for 8 bytes: 150e6*8/160e6 = 7.5 -> 8 cycles.
        assert_eq!(c.cycles_per_unit(8, MBps(160.0)), 8);
    }

    #[test]
    #[should_panic(expected = "clock must be positive")]
    fn rejects_nonpositive_clock() {
        let _ = Clock::from_mhz(0.0);
    }
}
