//! Measurement results and process-wide simulation counters.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::clock::{Clock, Cycle};
use memcomm_model::Throughput;

static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);
static SIM_WORDS: AtomicU64 = AtomicU64::new(0);
static MEASUREMENTS: AtomicU64 = AtomicU64::new(0);

/// Canonical names of the per-run fault counters in the `memcomm-obs`
/// metrics registry. Injection sites (`netsim::Link::step`, the NIC FIFO
/// push, the protocol's outage check) count under these names; the sweep
/// engine reads them back into a [`FaultCounters`] snapshot.
pub mod fault_metric {
    /// Fault decisions that fired (drops, corruptions, delays, stalls,
    /// outages).
    pub const INJECTED: &str = "faults.injected";
    /// Protocol frame retransmissions.
    pub const RETRIED: &str = "faults.retried";
    /// Transfers that fell back from chained to buffer packing.
    pub const DEGRADED: &str = "faults.degraded";
    /// Wire words dropped by link faults.
    pub const DROPPED: &str = "faults.dropped";
}

/// A snapshot of one run's fault counters. Counts are *observability data*
/// like wall times: their totals are deterministic for a given fault plan,
/// but they must never enter a byte-deterministic report (per-point counts
/// belong there instead). Sourced exclusively from the per-run
/// `memcomm-obs` registry via [`FaultCounters::from_obs`], so concurrent
/// runs with separate registries never bleed counts into each other (the
/// process-wide statics that once backed these counters are gone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounters {
    /// Fault decisions that fired (drops, corruptions, delays, stalls,
    /// outages).
    pub injected: u64,
    /// Protocol frame retransmissions.
    pub retried: u64,
    /// Transfers that fell back from chained to buffer packing.
    pub degraded: u64,
    /// Wire words dropped by link faults.
    pub dropped: u64,
}

impl FaultCounters {
    /// Counter deltas since an earlier snapshot.
    pub fn since(self, earlier: FaultCounters) -> FaultCounters {
        FaultCounters {
            injected: self.injected.wrapping_sub(earlier.injected),
            retried: self.retried.wrapping_sub(earlier.retried),
            degraded: self.degraded.wrapping_sub(earlier.degraded),
            dropped: self.dropped.wrapping_sub(earlier.dropped),
        }
    }

    /// Reads one run's fault counters out of its `memcomm-obs` registry
    /// (all zeros for a disabled handle — no faults could have been
    /// recorded anywhere else).
    pub fn from_obs(obs: &memcomm_obs::Obs) -> FaultCounters {
        FaultCounters {
            injected: obs.counter(fault_metric::INJECTED),
            retried: obs.counter(fault_metric::RETRIED),
            degraded: obs.counter(fault_metric::DEGRADED),
            dropped: obs.counter(fault_metric::DROPPED),
        }
    }
}

/// A snapshot of the process-wide simulation counters: every
/// [`Measurement`] ever constructed adds to them, so a sweep engine can
/// report how much simulated machine time a run covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimCounters {
    /// Total simulated cycles across all measurements.
    pub cycles: u64,
    /// Total payload words across all measurements.
    pub words: u64,
    /// Number of measurements constructed.
    pub measurements: u64,
}

/// Reads the current counters.
pub fn counters() -> SimCounters {
    SimCounters {
        cycles: SIM_CYCLES.load(Ordering::Relaxed),
        words: SIM_WORDS.load(Ordering::Relaxed),
        measurements: MEASUREMENTS.load(Ordering::Relaxed),
    }
}

/// Resets the counters to zero (test isolation; the counters are global).
pub fn reset_counters() {
    SIM_CYCLES.store(0, Ordering::Relaxed);
    SIM_WORDS.store(0, Ordering::Relaxed);
    MEASUREMENTS.store(0, Ordering::Relaxed);
}

impl SimCounters {
    /// Counter deltas since an earlier snapshot.
    pub fn since(self, earlier: SimCounters) -> SimCounters {
        SimCounters {
            cycles: self.cycles.wrapping_sub(earlier.cycles),
            words: self.words.wrapping_sub(earlier.words),
            measurements: self.measurements.wrapping_sub(earlier.measurements),
        }
    }
}

/// The result of one simulated transfer measurement: how many 64-bit words
/// of *payload* moved and how many cycles the operation took end to end.
///
/// Following the paper, auxiliary traffic (headers, addresses, index loads)
/// consumes time but never counts as payload: "these operations, although
/// possibly consuming raw bandwidth, do not contribute to the net bandwidth
/// an application is interested in."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Payload words moved.
    pub words: u64,
    /// End-to-end duration in cycles.
    pub cycles: Cycle,
}

impl Measurement {
    /// Creates a measurement and records it in the process-wide
    /// [`counters`].
    pub fn new(words: u64, cycles: Cycle) -> Self {
        SIM_CYCLES.fetch_add(cycles, Ordering::Relaxed);
        SIM_WORDS.fetch_add(words, Ordering::Relaxed);
        MEASUREMENTS.fetch_add(1, Ordering::Relaxed);
        Measurement { words, cycles }
    }

    /// Payload bytes moved.
    pub fn bytes(&self) -> u64 {
        self.words * crate::mem::WORD_BYTES
    }

    /// Average cycles per payload word.
    pub fn cycles_per_word(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.cycles as f64 / self.words as f64
        }
    }

    /// Effective throughput under the given clock.
    pub fn throughput(&self, clock: Clock) -> Throughput {
        clock.throughput(self.bytes(), self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_cycles_per_word() {
        let m = Measurement::new(1000, 12_000);
        assert!((m.cycles_per_word() - 12.0).abs() < 1e-12);
        let clock = Clock::from_mhz(150.0);
        // 8 bytes / 12 cycles at 150 MHz = 100 MB/s.
        assert!((m.throughput(clock).as_mbps() - 100.0).abs() < 1e-9);
        assert_eq!(m.bytes(), 8000);
    }

    #[test]
    fn empty_measurement_is_zero() {
        let m = Measurement::new(0, 0);
        assert_eq!(m.cycles_per_word(), 0.0);
        assert_eq!(m.throughput(Clock::from_mhz(100.0)).as_mbps(), 0.0);
    }
}
