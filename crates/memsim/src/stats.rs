//! Measurement results.

use crate::clock::{Clock, Cycle};
use memcomm_model::Throughput;

/// The result of one simulated transfer measurement: how many 64-bit words
/// of *payload* moved and how many cycles the operation took end to end.
///
/// Following the paper, auxiliary traffic (headers, addresses, index loads)
/// consumes time but never counts as payload: "these operations, although
/// possibly consuming raw bandwidth, do not contribute to the net bandwidth
/// an application is interested in."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Payload words moved.
    pub words: u64,
    /// End-to-end duration in cycles.
    pub cycles: Cycle,
}

impl Measurement {
    /// Creates a measurement.
    pub fn new(words: u64, cycles: Cycle) -> Self {
        Measurement { words, cycles }
    }

    /// Payload bytes moved.
    pub fn bytes(&self) -> u64 {
        self.words * crate::mem::WORD_BYTES
    }

    /// Average cycles per payload word.
    pub fn cycles_per_word(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.cycles as f64 / self.words as f64
        }
    }

    /// Effective throughput under the given clock.
    pub fn throughput(&self, clock: Clock) -> Throughput {
        clock.throughput(self.bytes(), self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_cycles_per_word() {
        let m = Measurement::new(1000, 12_000);
        assert!((m.cycles_per_word() - 12.0).abs() < 1e-12);
        let clock = Clock::from_mhz(150.0);
        // 8 bytes / 12 cycles at 150 MHz = 100 MB/s.
        assert!((m.throughput(clock).as_mbps() - 100.0).abs() < 1e-9);
        assert_eq!(m.bytes(), 8000);
    }

    #[test]
    fn empty_measurement_is_zero() {
        let m = Measurement::new(0, 0);
        assert_eq!(m.cycles_per_word(), 0.0);
        assert_eq!(m.throughput(Clock::from_mhz(100.0)).as_mbps(), 0.0);
    }
}
