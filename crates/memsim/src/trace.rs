//! Memory-reference tracing.
//!
//! "Traditionally the need to accurately analyze the memory system
//! performance for compilers lead to trace driven investigations of the
//! cached memory system" — the approach the paper's throughput model
//! replaces. The simulator can nevertheless *produce* such traces: enable
//! tracing on a [`MemPath`](crate::path::MemPath), run any scenario, and
//! take the [`Trace`] for analysis. Useful for validating the model's
//! premises (e.g. that communication-related access streams have spatial
//! but not temporal locality).

use std::collections::HashSet;

use crate::clock::Cycle;
use crate::path::Port;

/// The kind of a traced memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Demand (cacheable) load — recorded on misses, i.e. actual memory
    /// traffic.
    Load,
    /// Uncached (pipelined) load.
    UncachedLoad,
    /// Posted store (entering the write buffer).
    Store,
    /// Write-buffer drain reaching DRAM.
    Drain,
    /// Background-engine read (DMA fetch, remote-load service).
    EngineRead,
    /// Background-engine write (deposit).
    EngineWrite,
}

impl TraceOp {
    /// Whether the operation reads memory.
    pub fn is_read(self) -> bool {
        matches!(
            self,
            TraceOp::Load | TraceOp::UncachedLoad | TraceOp::EngineRead
        )
    }
}

/// One traced memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle at which the operation was issued to the memory system.
    pub cycle: Cycle,
    /// Requesting port.
    pub port: Port,
    /// Operation kind.
    pub op: TraceOp,
    /// Byte address.
    pub addr: u64,
    /// Words touched.
    pub words: u32,
}

/// An ordered memory-reference trace with analysis helpers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an entry (used by the memory path).
    pub fn record(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// The raw entries, in issue order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// A sub-trace of the entries matching a predicate — analyses such as
    /// row locality are per-stream questions (the load stream, one engine's
    /// writes), while the full trace interleaves all requesters.
    pub fn filter<F: Fn(&TraceEntry) -> bool>(&self, keep: F) -> Trace {
        Trace {
            entries: self.entries.iter().copied().filter(|e| keep(e)).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fraction of traced operations that read memory.
    pub fn read_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().filter(|e| e.op.is_read()).count() as f64 / self.entries.len() as f64
    }

    /// Fraction of consecutive references that land in a different DRAM row
    /// — a direct measure of the row locality that separates contiguous
    /// from strided streams.
    pub fn row_switch_fraction(&self, row_bytes: u64) -> f64 {
        if self.entries.len() < 2 {
            return 0.0;
        }
        let switches = self
            .entries
            .windows(2)
            .filter(|w| w[0].addr / row_bytes != w[1].addr / row_bytes)
            .count();
        switches as f64 / (self.entries.len() - 1) as f64
    }

    /// Number of requester switches (consecutive references from different
    /// ports) — the fine-grain interleaving the Paragon bus penalized.
    pub fn port_switches(&self) -> u64 {
        self.entries
            .windows(2)
            .filter(|w| w[0].port != w[1].port)
            .count() as u64
    }

    /// Distinct cache lines touched — the footprint that decides whether a
    /// working set can have temporal locality at all.
    pub fn footprint_lines(&self, line_bytes: u64) -> u64 {
        let mut lines = HashSet::new();
        for e in &self.entries {
            let first = e.addr / line_bytes;
            let last = (e.addr + u64::from(e.words) * 8 - 1) / line_bytes;
            for l in first..=last {
                lines.insert(l);
            }
        }
        lines.len() as u64
    }

    /// Fraction of references whose line was touched before — temporal
    /// reuse. The paper's premise is that this is near zero for
    /// communication streams.
    pub fn reuse_fraction(&self, line_bytes: u64) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let mut seen = HashSet::new();
        let mut reused = 0usize;
        for e in &self.entries {
            let line = e.addr / line_bytes;
            if !seen.insert(line) {
                reused += 1;
            }
        }
        reused as f64 / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(cycle: Cycle, port: Port, op: TraceOp, addr: u64) -> TraceEntry {
        TraceEntry {
            cycle,
            port,
            op,
            addr,
            words: 1,
        }
    }

    #[test]
    fn read_fraction_counts_reads() {
        let mut t = Trace::new();
        t.record(entry(0, Port::Cpu, TraceOp::Load, 0));
        t.record(entry(1, Port::Cpu, TraceOp::Store, 8));
        t.record(entry(2, Port::Deposit, TraceOp::EngineWrite, 16));
        t.record(entry(3, Port::Dma, TraceOp::EngineRead, 24));
        assert!((t.read_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn row_switches_distinguish_patterns() {
        let mut contiguous = Trace::new();
        let mut strided = Trace::new();
        for i in 0..100u64 {
            contiguous.record(entry(i, Port::Cpu, TraceOp::Load, i * 8));
            strided.record(entry(i, Port::Cpu, TraceOp::Load, i * 4096));
        }
        assert!(contiguous.row_switch_fraction(2048) < 0.05);
        assert!(strided.row_switch_fraction(2048) > 0.95);
    }

    #[test]
    fn port_switches_count_interleavings() {
        let mut t = Trace::new();
        t.record(entry(0, Port::Cpu, TraceOp::Load, 0));
        t.record(entry(1, Port::Deposit, TraceOp::EngineWrite, 64));
        t.record(entry(2, Port::Cpu, TraceOp::Load, 8));
        assert_eq!(t.port_switches(), 2);
    }

    #[test]
    fn footprint_and_reuse() {
        let mut t = Trace::new();
        // Two touches of line 0, one of line 2.
        t.record(entry(0, Port::Cpu, TraceOp::Load, 0));
        t.record(entry(1, Port::Cpu, TraceOp::Load, 8));
        t.record(entry(2, Port::Cpu, TraceOp::Load, 64));
        assert_eq!(t.footprint_lines(32), 2);
        assert!((t.reuse_fraction(32) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn filter_extracts_streams() {
        let mut t = Trace::new();
        t.record(entry(0, Port::Cpu, TraceOp::Load, 0));
        t.record(entry(1, Port::Deposit, TraceOp::EngineWrite, 64));
        t.record(entry(2, Port::Cpu, TraceOp::Load, 8));
        let loads = t.filter(|e| e.op == TraceOp::Load);
        assert_eq!(loads.len(), 2);
        assert_eq!(loads.port_switches(), 0);
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.read_fraction(), 0.0);
        assert_eq!(t.row_switch_fraction(2048), 0.0);
        assert_eq!(t.footprint_lines(32), 0);
    }
}
