//! Deterministic fault injection.
//!
//! A [`FaultPlan`] decides, for every fault opportunity in a co-simulation,
//! whether a fault fires and what kind. Decisions are **pure functions** of
//! `(seed, site, index)` — not draws from a shared stateful generator — so
//! the same plan replays byte-identically whatever order parallel workers
//! reach their opportunities in, and a zero-rate plan behaves exactly like
//! no plan at all.
//!
//! Fault taxonomy:
//!
//! * **link faults** ([`LinkFault`]): a wire word is dropped, its payload
//!   corrupted, or delayed by a jitter window;
//! * **FIFO stalls**: a NIC FIFO slot is back-pressured for a window of
//!   cycles before accepting a push (see
//!   [`TimedFifo::set_faults`](crate::nic::TimedFifo::set_faults));
//! * **engine starvation**: a deposit/annex engine loses cycles to a stall
//!   window before consuming a word;
//! * **engine outage**: an engine site is out for the whole run — the
//!   trigger for graceful degradation to buffer packing.
//!
//! Plans are *pure deciders*: they never record anything. Counting fired
//! decisions is the injection site's job (the link step, the FIFO push,
//! the protocol's outage check), recorded into the per-run
//! `memcomm-obs` metrics registry so parallel runs never contend on — or
//! cross-contaminate — process-wide statics.

use memcomm_util::rng::Rng;

use crate::clock::Cycle;

/// Well-known fault sites. A *site* identifies one fault-injection point in
/// a co-simulation (a specific link, FIFO or engine); the per-site constants
/// keep decisions independent across sites under one seed.
pub mod site {
    /// Forward data link (sender → receiver).
    pub const LINK_FORWARD: u64 = 1;
    /// Reverse link (acknowledgements).
    pub const LINK_REVERSE: u64 = 2;
    /// Sender-side transmit FIFO.
    pub const TX_FIFO: u64 = 3;
    /// Receiver-side receive FIFO.
    pub const RX_FIFO: u64 = 4;
    /// Receiver-side deposit engine.
    pub const DEPOSIT: u64 = 5;
    /// Receiver-side annex engine.
    pub const ANNEX: u64 = 6;

    /// First per-node site of the sharded network engine; each node gets a
    /// (tx, rx) pair above this base.
    pub const ENGINE_NODE_BASE: u64 = 0x1000;
    /// First per-link site of the sharded network engine.
    pub const ENGINE_LINK_BASE: u64 = 0x0100_0000;

    /// Transmit-FIFO site of engine node `node`.
    pub fn engine_tx(node: usize) -> u64 {
        ENGINE_NODE_BASE + 2 * node as u64
    }

    /// Receive-FIFO site of engine node `node`.
    pub fn engine_rx(node: usize) -> u64 {
        ENGINE_NODE_BASE + 2 * node as u64 + 1
    }

    /// Wire site of engine link `link` (canonical link index).
    pub fn engine_link(link: u32) -> u64 {
        ENGINE_LINK_BASE + u64::from(link)
    }
}

/// What happened to one word on a faulty link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// The word vanishes: it consumes wire time but is never delivered.
    Drop,
    /// The payload is XORed with this non-zero mask (addresses are
    /// protected by hardware parity on both machines; payload corruption is
    /// what an end-to-end checksum must catch).
    Corrupt(u64),
    /// Delivery is delayed by this many extra cycles.
    Delay(Cycle),
}

/// Configuration of a fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed all decisions derive from.
    pub seed: u64,
    /// Probability that any single fault opportunity fires (per word on a
    /// link, per push into a FIFO, per word through an engine). `0.0`
    /// disables word-level faults entirely.
    pub rate: f64,
    /// Largest extra delay a jittered link word suffers.
    pub max_jitter_cycles: Cycle,
    /// Largest stall window injected into a FIFO push or an engine word.
    pub max_stall_cycles: Cycle,
    /// Probability that an *engine site* is out for the whole run (decided
    /// once per site, independent of `rate`).
    pub outage_rate: f64,
    /// Probability that any given outage period of a *link* site opens with
    /// a transient outage window (decided per `(site, period)`, independent
    /// of `rate`). `0.0` disables transient link outages.
    pub outage_window_rate: f64,
    /// Length of one transient link-outage window, in cycles. The window
    /// occupies the head of its outage period (and is clamped to it).
    pub outage_window_cycles: Cycle,
    /// Cycle period at which transient link-outage windows are drawn.
    pub outage_period_cycles: Cycle,
    /// Probability that a *link* site is out for the entire run (decided
    /// once per site, independent of every other rate).
    pub permanent_outage_rate: f64,
}

impl Default for FaultConfig {
    /// A disabled plan: zero rates (seed irrelevant by construction).
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            rate: 0.0,
            max_jitter_cycles: 256,
            max_stall_cycles: 1024,
            outage_rate: 0.0,
            outage_window_rate: 0.0,
            outage_window_cycles: 2048,
            outage_period_cycles: 1 << 14,
            permanent_outage_rate: 0.0,
        }
    }
}

/// A replayable fault plan. Copyable — handing a plan to an engine copies
/// the configuration, never shared mutable state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Creates a plan from its configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// A plan that never fires (all rates zero).
    pub fn disabled() -> Self {
        FaultPlan::default()
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether any fault can ever fire under this plan.
    pub fn is_active(&self) -> bool {
        self.cfg.rate > 0.0 || self.cfg.outage_rate > 0.0 || self.has_link_outages()
    }

    /// Whether link-outage windows (transient or permanent) can ever fire.
    pub fn has_link_outages(&self) -> bool {
        self.cfg.outage_window_rate > 0.0 || self.cfg.permanent_outage_rate > 0.0
    }

    /// The decision generator for one `(site, index)` opportunity: a fresh
    /// splitmix64 stream keyed by seed, site and index, so decisions are
    /// order-independent and replayable.
    fn decider(&self, site: u64, index: u64) -> Rng {
        let key = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(site.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(index.wrapping_mul(0x94D0_49BB_1331_11EB));
        Rng::new(key)
    }

    fn fires(&self, rate: f64, rng: &mut Rng) -> bool {
        rate > 0.0 && rng.range_f64(0.0, 1.0) < rate
    }

    /// Decides the fate of word `index` crossing the link at `site`.
    /// Retransmitted words get fresh indices (the link's attempt counter),
    /// so a retry is a fresh draw, not a guaranteed repeat.
    pub fn link_fault(&self, site: u64, index: u64) -> Option<LinkFault> {
        let mut rng = self.decider(site, index);
        if !self.fires(self.cfg.rate, &mut rng) {
            return None;
        }
        let fault = match rng.range_u64(0, 3) {
            0 => LinkFault::Drop,
            1 => LinkFault::Corrupt(rng.next_u64() | 1),
            _ => LinkFault::Delay(rng.range_u64(1, self.cfg.max_jitter_cycles.max(1) + 1)),
        };
        Some(fault)
    }

    /// Stall window (possibly zero) injected before opportunity `index` at
    /// a FIFO or engine `site`.
    pub fn stall_cycles(&self, site: u64, index: u64) -> Cycle {
        let mut rng = self.decider(site, index.wrapping_add(0x5747_A11E));
        if !self.fires(self.cfg.rate, &mut rng) {
            return 0;
        }
        rng.range_u64(1, self.cfg.max_stall_cycles.max(1) + 1)
    }

    /// Whether the engine at `site` is out for this whole run.
    pub fn engine_unavailable(&self, site: u64) -> bool {
        let mut rng = self.decider(site, 0x007A_6E00);
        self.fires(self.cfg.outage_rate, &mut rng)
    }

    /// Index salt of the permanent link-outage decision — far above any
    /// per-word attempt index, so it never collides with `link_fault` draws
    /// at the same site.
    const PERMANENT_OUTAGE_INDEX: u64 = 0x7E94_0000_0000_0000;
    /// Index base of the transient outage-window decisions; the period
    /// number is added, keeping windows independent of each other and of
    /// every word-level draw.
    const OUTAGE_WINDOW_BASE: u64 = 0x4000_0000_0000_0000;

    /// If the link at `site` is inside an outage at `cycle`, the cycle it
    /// recovers ([`Cycle::MAX`] = permanently out); `None` when the link is
    /// up. A pure function of `(seed, site, cycle)`: transient windows are
    /// decided once per `(site, outage period)` and occupy the head of
    /// their period, so any two observers — whatever order, shard or worker
    /// they ask from — see the same outage calendar.
    pub fn link_outage_until(&self, site: u64, cycle: Cycle) -> Option<Cycle> {
        if self.cfg.permanent_outage_rate > 0.0 {
            let mut rng = self.decider(site, Self::PERMANENT_OUTAGE_INDEX);
            if self.fires(self.cfg.permanent_outage_rate, &mut rng) {
                return Some(Cycle::MAX);
            }
        }
        if self.cfg.outage_window_rate > 0.0 {
            let period = self.cfg.outage_period_cycles.max(1);
            let len = self.cfg.outage_window_cycles.min(period);
            let w = cycle / period;
            if cycle - w * period < len {
                let mut rng = self.decider(site, Self::OUTAGE_WINDOW_BASE.wrapping_add(w));
                if self.fires(self.cfg.outage_window_rate, &mut rng) {
                    return Some(w * period + len);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rate: f64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed: 42,
            rate,
            ..FaultConfig::default()
        })
    }

    #[test]
    fn decisions_are_replayable_and_order_independent() {
        let p = plan(0.5);
        let forward: Vec<_> = (0..100)
            .map(|i| p.link_fault(site::LINK_FORWARD, i))
            .collect();
        let backward: Vec<_> = (0..100)
            .rev()
            .map(|i| p.link_fault(site::LINK_FORWARD, i))
            .collect();
        let reversed: Vec<_> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed, "decision order must not matter");
    }

    #[test]
    fn zero_rate_never_fires() {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let p = FaultPlan::new(FaultConfig {
                seed,
                rate: 0.0,
                outage_rate: 0.0,
                ..FaultConfig::default()
            });
            assert!(!p.is_active());
            for i in 0..1000 {
                assert_eq!(p.link_fault(site::LINK_FORWARD, i), None);
                assert_eq!(p.stall_cycles(site::RX_FIFO, i), 0);
            }
            assert!(!p.engine_unavailable(site::DEPOSIT));
        }
    }

    #[test]
    fn sites_decide_independently() {
        let p = plan(0.3);
        let a: Vec<_> = (0..200)
            .map(|i| p.link_fault(site::LINK_FORWARD, i))
            .collect();
        let b: Vec<_> = (0..200)
            .map(|i| p.link_fault(site::LINK_REVERSE, i))
            .collect();
        assert_ne!(a, b, "different sites must draw different decisions");
    }

    #[test]
    fn rate_controls_frequency() {
        let p = plan(0.25);
        let fired = (0..4000)
            .filter(|&i| p.link_fault(site::LINK_FORWARD, i).is_some())
            .count();
        assert!(
            (700..1300).contains(&fired),
            "expected ~1000 of 4000 at rate 0.25, got {fired}"
        );
    }

    #[test]
    fn outage_rate_one_always_out() {
        let p = FaultPlan::new(FaultConfig {
            seed: 7,
            outage_rate: 1.0,
            ..FaultConfig::default()
        });
        assert!(p.engine_unavailable(site::DEPOSIT));
        assert!(p.engine_unavailable(site::ANNEX));
    }

    #[test]
    fn outage_windows_are_pure_and_head_aligned() {
        let p = FaultPlan::new(FaultConfig {
            seed: 11,
            outage_window_rate: 0.5,
            outage_window_cycles: 100,
            outage_period_cycles: 1000,
            ..FaultConfig::default()
        });
        assert!(p.is_active());
        assert!(p.has_link_outages());
        for cycle in [0u64, 50, 99, 100, 500, 999, 1000, 12_345, 999_999] {
            let a = p.link_outage_until(site::engine_link(3), cycle);
            assert_eq!(
                a,
                p.link_outage_until(site::engine_link(3), cycle),
                "calendar must replay"
            );
            if cycle % 1000 >= 100 {
                assert_eq!(a, None, "outages occupy only the period head");
            }
            if let Some(end) = a {
                assert_eq!(end, cycle / 1000 * 1000 + 100, "recovery at window end");
            }
        }
        let out = (0..200u64)
            .filter(|&w| {
                p.link_outage_until(site::engine_link(3), w * 1000)
                    .is_some()
            })
            .count();
        assert!(
            (60..140).contains(&out),
            "expected ~100 of 200 periods out at rate 0.5, got {out}"
        );
    }

    #[test]
    fn permanent_outage_never_recovers() {
        let p = FaultPlan::new(FaultConfig {
            seed: 5,
            permanent_outage_rate: 1.0,
            ..FaultConfig::default()
        });
        assert_eq!(
            p.link_outage_until(site::engine_link(0), 0),
            Some(Cycle::MAX)
        );
        assert_eq!(
            p.link_outage_until(site::engine_link(0), 1 << 40),
            Some(Cycle::MAX)
        );
        let none = FaultPlan::new(FaultConfig {
            seed: 5,
            ..FaultConfig::default()
        });
        assert!(!none.has_link_outages());
        assert_eq!(none.link_outage_until(site::engine_link(0), 0), None);
    }

    #[test]
    fn corrupt_masks_are_nonzero_and_stalls_bounded() {
        let p = FaultPlan::new(FaultConfig {
            seed: 3,
            rate: 1.0,
            max_stall_cycles: 16,
            max_jitter_cycles: 8,
            ..FaultConfig::default()
        });
        for i in 0..200 {
            match p.link_fault(site::LINK_FORWARD, i) {
                Some(LinkFault::Corrupt(m)) => assert_ne!(m, 0),
                Some(LinkFault::Delay(d)) => assert!((1..=8).contains(&d)),
                Some(LinkFault::Drop) | None => {}
            }
            let s = p.stall_cycles(site::TX_FIFO, i);
            assert!(
                (1..=16).contains(&s),
                "rate 1.0 must stall within bounds: {s}"
            );
        }
    }
}
