//! Node memory: the data store behind the timing models.
//!
//! Timing components (cache, DRAM) model *when* accesses complete; the
//! [`Memory`] stores *what* they move, so that every simulated communication
//! operation can be checked for functional correctness (did the transpose
//! actually transpose?).

use crate::error::{SimError, SimResult};
use crate::walk::Walk;
use memcomm_model::AccessPattern;

/// Size of a 64-bit word in bytes.
pub const WORD_BYTES: u64 = 8;

/// A region of node memory, returned by [`Memory::alloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address of the region.
    pub base: u64,
    /// Length in 64-bit words.
    pub words: u64,
}

impl Region {
    /// Byte address of the `i`-th word.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn addr(&self, i: u64) -> u64 {
        assert!(
            i < self.words,
            "word {i} outside region of {} words",
            self.words
        );
        self.base + i * WORD_BYTES
    }

    /// One past the last byte address.
    pub fn end(&self) -> u64 {
        self.base + self.words * WORD_BYTES
    }
}

/// Word-addressed node memory with a bump allocator.
///
/// Addresses are byte addresses; all accesses are 8-byte aligned (the
/// model's unit of transfer is the 64-bit word).
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<u64>,
    next_free: u64,
    align_bytes: u64,
    alloc_count: u64,
}

impl Memory {
    /// Creates a memory of `capacity_words` 64-bit words, with allocations
    /// aligned to `align_bytes` (typically the DRAM row size, so that
    /// regions start row- and line-aligned as `malloc` on the real machines
    /// arranged for large arrays).
    ///
    /// # Panics
    ///
    /// Panics if the alignment is zero or not a multiple of the word size.
    pub fn new(capacity_words: u64, align_bytes: u64) -> Self {
        assert!(
            align_bytes >= WORD_BYTES && align_bytes.is_multiple_of(WORD_BYTES),
            "alignment must be a positive multiple of 8 bytes"
        );
        Memory {
            words: vec![0; capacity_words as usize],
            next_free: 0,
            align_bytes,
            alloc_count: 0,
        }
    }

    /// Allocates a region of `words` 64-bit words.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when the memory cannot hold the
    /// region — the experiment sized the node memory too small, which should
    /// fail the point, not the sweep.
    pub fn alloc(&mut self, words: u64) -> SimResult<Region> {
        // A deterministic pseudo-random guard gap of 1–4 alignment units
        // between allocations keeps same-sized arrays from systematically
        // landing a cache-size apart (which would make every set of a
        // direct-mapped cache ping-pong between them). Real allocators
        // stagger large arrays similarly; the jitter is a pure function of
        // the allocation sequence, so layouts stay reproducible.
        let mut h = self.alloc_count.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        let jitter = 1 + h % 4;
        self.alloc_count += 1;
        let base = (self.next_free + jitter * self.align_bytes).next_multiple_of(self.align_bytes);
        let end = base + words * WORD_BYTES;
        let capacity = self.words.len() as u64 * WORD_BYTES;
        if end > capacity {
            return Err(SimError::OutOfMemory {
                need_bytes: end,
                have_bytes: capacity,
            });
        }
        self.next_free = end;
        Ok(Region { base, words })
    }

    /// Reads the word at a byte address.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range addresses.
    pub fn read(&self, addr: u64) -> u64 {
        self.words[Self::index(addr, self.words.len())]
    }

    /// Writes the word at a byte address.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range addresses.
    pub fn write(&mut self, addr: u64, value: u64) {
        let i = Self::index(addr, self.words.len());
        self.words[i] = value;
    }

    fn index(addr: u64, len: usize) -> usize {
        assert!(
            addr.is_multiple_of(WORD_BYTES),
            "unaligned word access at {addr:#x}"
        );
        let i = (addr / WORD_BYTES) as usize;
        assert!(i < len, "address {addr:#x} outside node memory");
        i
    }

    /// Fills a region's words from an iterator (for seeding test data).
    pub fn fill<I: IntoIterator<Item = u64>>(&mut self, region: Region, values: I) {
        let mut n = 0;
        for (i, v) in values.into_iter().take(region.words as usize).enumerate() {
            self.write(region.addr(i as u64), v);
            n = i + 1;
        }
        debug_assert!(n as u64 <= region.words);
    }

    /// Reads a whole region into a vector (for asserting test results).
    pub fn dump(&self, region: Region) -> Vec<u64> {
        (0..region.words)
            .map(|i| self.read(region.addr(i)))
            .collect()
    }

    /// Convenience: allocates a region together with an access-pattern walk
    /// over it.
    ///
    /// For strided patterns the region is sized `words × stride` so that
    /// every strided element has a distinct home; for indexed patterns the
    /// caller supplies the index array (values must be `< words`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidWalk`] for a fixed-port pattern or a
    /// mismatched index array, and [`SimError::OutOfMemory`] when the region
    /// does not fit.
    pub fn alloc_walk(
        &mut self,
        pattern: AccessPattern,
        words: u64,
        index: Option<Vec<u32>>,
    ) -> SimResult<Walk> {
        let span = match pattern {
            AccessPattern::Contiguous => words,
            AccessPattern::Strided(s) => words * u64::from(s),
            AccessPattern::Indexed => words,
            AccessPattern::Fixed => {
                return Err(SimError::InvalidWalk {
                    detail: "cannot allocate a walk over a fixed port".to_string(),
                });
            }
        };
        let region = self.alloc(span)?;
        let index_region = match index.as_ref() {
            Some(ix) => Some(self.alloc((ix.len() as u64).div_ceil(2))?),
            None => None,
        };
        let walk = Walk::new(pattern, region, words, index)?;
        Ok(match index_region {
            Some(r) => walk.with_index_region(r),
            None => walk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = Memory::new(4096, 2048);
        let a = m.alloc(10).unwrap();
        let b = m.alloc(10).unwrap();
        assert_eq!(a.base % 2048, 0);
        assert_eq!(b.base % 2048, 0);
        assert!(b.base >= a.end());
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new(64, 8);
        let r = m.alloc(4).unwrap();
        m.write(r.addr(2), 0xdead_beef);
        assert_eq!(m.read(r.addr(2)), 0xdead_beef);
        assert_eq!(m.read(r.addr(0)), 0);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let m = Memory::new(8, 8);
        let _ = m.read(4);
    }

    #[test]
    fn exhaustion_reports_out_of_memory() {
        let mut m = Memory::new(8, 8);
        match m.alloc(9) {
            Err(SimError::OutOfMemory { have_bytes, .. }) => assert_eq!(have_bytes, 64),
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn fill_and_dump() {
        let mut m = Memory::new(64, 8);
        let r = m.alloc(4).unwrap();
        m.fill(r, [1, 2, 3, 4]);
        assert_eq!(m.dump(r), vec![1, 2, 3, 4]);
    }

    #[test]
    fn alloc_walk_sizes_strided_span() {
        let mut m = Memory::new(1024, 8);
        let w = m.alloc_walk(AccessPattern::Strided(4), 16, None).unwrap();
        assert_eq!(w.region().words, 64);
        assert_eq!(w.len(), 16);
    }

    #[test]
    fn alloc_walk_rejects_fixed_port() {
        let mut m = Memory::new(64, 8);
        assert!(matches!(
            m.alloc_walk(AccessPattern::Fixed, 4, None),
            Err(SimError::InvalidWalk { .. })
        ));
    }
}
