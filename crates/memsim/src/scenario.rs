//! Single-node measurement scenarios for the basic transfers.
//!
//! Each scenario drives one or two agents to steady state over a walk and
//! returns a [`Measurement`]. These are the simulated counterparts of the
//! paper's microbenchmarks: local copies `xCy` (Table 1 / Figure 4), pure
//! load/store streams `xC0` / `0Cy`, sends `xS0` / `xF0` (Table 2) and
//! receives `0Ry` / `0Dy` (Table 3). The network side of a send or receive
//! is an ideal port running at a configurable service rate (the machine's
//! network injection/ejection speed), so the measured figure isolates the
//! node-side transfer exactly as the paper's experiments did.

use crate::clock::Cycle;
use crate::engines::{
    Cpu, CpuReceiver, CpuSender, DepositEngine, DepositMode, Dma, LocalCopier, Step,
};
use crate::error::{SimError, SimResult};
use crate::nic::{NetWord, WordKind};
use crate::node::{Node, Watchdog};
use crate::stats::Measurement;
use crate::walk::Walk;

/// Step bound for a scenario's driver loop: generous per-word headroom plus
/// a fixed floor, so a legitimate slow transfer always finishes while a
/// wedged one is caught.
fn watchdog_for(words: u64) -> Watchdog {
    Watchdog::new(64 * words + 10_000)
}

/// Runs a local memory-to-memory copy `xCy` and returns the measurement
/// (including the final write-buffer flush).
///
/// # Errors
///
/// Propagates any [`SimError`] from the copy engine.
///
/// # Panics
///
/// Panics if the walks differ in length.
pub fn run_local_copy(node: &mut Node, src: &Walk, dst: &Walk) -> SimResult<Measurement> {
    let mut cpu = node.cpu();
    LocalCopier::new(src.clone(), dst.clone()).run(&mut cpu, &mut node.path, &mut node.mem)?;
    let end = node.path.flush(cpu.t);
    Ok(Measurement::new(src.len(), end))
}

/// Runs a pure load stream `xC0` (loads into a register sink).
///
/// # Errors
///
/// Propagates any [`SimError`] from the load pipeline.
pub fn run_load_stream(node: &mut Node, src: &Walk) -> SimResult<Measurement> {
    let mut cpu = node.cpu();
    let depth = cpu.depth_for(src.pattern());
    for i in 0..src.len() {
        if cpu.pending_loads() >= depth {
            let _ = cpu.retire_load()?;
        }
        cpu.issue_load(&mut node.path, &node.mem, src, i)?;
    }
    while cpu.pending_loads() > 0 {
        let _ = cpu.retire_load()?;
    }
    Ok(Measurement::new(src.len(), cpu.t))
}

/// Runs a pure store stream `0Cy` (stores of a constant).
///
/// # Errors
///
/// Infallible today; `Result` for uniformity with the other scenarios.
pub fn run_store_stream(node: &mut Node, dst: &Walk) -> SimResult<Measurement> {
    let mut cpu = node.cpu();
    for i in 0..dst.len() {
        cpu.t += cpu.params().loop_cycles;
        cpu.store_element(&mut node.path, &mut node.mem, dst, i, i);
    }
    let end = node.path.flush(cpu.t);
    Ok(Measurement::new(dst.len(), end))
}

/// Runs a processor load-send `xS0` against an ideal network port accepting
/// one word every `sink_cycles_per_word` cycles. When `remote_dst` is given,
/// each word is sent as an address-data pair following that walk.
///
/// # Errors
///
/// Returns [`SimError::Starved`] when the sender blocks on a FIFO the ideal
/// port finds empty (a wiring bug), and propagates engine errors.
pub fn run_load_send(
    node: &mut Node,
    src: &Walk,
    remote_dst: Option<&Walk>,
    sink_cycles_per_word: Cycle,
) -> SimResult<Measurement> {
    let mut cpu = node.cpu();
    let mut sender = CpuSender::new(src.clone(), remote_dst.cloned());
    let mut sink_t: Cycle = 0;
    let mut dog = watchdog_for(src.len());
    loop {
        dog.tick("load-send driver", cpu.t)?;
        match sender.step(&mut cpu, &mut node.path, &node.mem, &mut node.tx)? {
            Step::Done => break,
            Step::Blocked => {
                let Some((at, _)) = node.tx.pop(sink_t) else {
                    return Err(SimError::Starved {
                        engine: "load-send sink",
                        at: sink_t,
                    });
                };
                sink_t = at + sink_cycles_per_word;
            }
            Step::Progressed => {
                // Keep the port draining words that arrived in its past.
                while sink_t <= cpu.t {
                    match node.tx.pop(sink_t) {
                        Some((at, _)) => sink_t = at + sink_cycles_per_word,
                        None => break,
                    }
                }
            }
        }
    }
    while node.tx.pop(sink_t).is_some() {
        sink_t += sink_cycles_per_word;
    }
    Ok(Measurement::new(src.len(), cpu.t))
}

/// Runs a DMA fetch-send `1F0` against an ideal network port.
///
/// # Errors
///
/// Returns [`SimError::Starved`] when the DMA blocks on a FIFO the ideal
/// port finds empty, or [`SimError::Wedged`] if the loop stops progressing.
///
/// # Panics
///
/// Panics if `src` is not contiguous (a construction contract).
pub fn run_fetch_send(
    node: &mut Node,
    src: &Walk,
    sink_cycles_per_word: Cycle,
) -> SimResult<Measurement> {
    let mut dma = Dma::new(node.params().dma, src.clone());
    let mut sink_t: Cycle = 0;
    let mut dog = watchdog_for(src.len());
    loop {
        dog.tick("fetch-send driver", dma.t)?;
        match dma.step(&mut node.path, &node.mem, &mut node.tx) {
            Step::Done => break,
            Step::Blocked => {
                let Some((at, _)) = node.tx.pop(sink_t) else {
                    return Err(SimError::Starved {
                        engine: "fetch-send sink",
                        at: sink_t,
                    });
                };
                sink_t = at + sink_cycles_per_word;
            }
            Step::Progressed => {
                while sink_t <= dma.t {
                    match node.tx.pop(sink_t) {
                        Some((at, _)) => sink_t = at + sink_cycles_per_word,
                        None => break,
                    }
                }
            }
        }
    }
    // The transfer is complete when the port has taken the last word.
    let mut end = dma.t;
    while let Some((at, _)) = node.tx.pop(sink_t) {
        sink_t = at + sink_cycles_per_word;
        end = end.max(at);
    }
    Ok(Measurement::new(src.len(), end))
}

fn feed_words(dst: &Walk, addressed: bool) -> Vec<NetWord> {
    (0..dst.len())
        .map(|i| NetWord {
            addr: addressed.then(|| dst.addr(i)),
            data: i,
            kind: WordKind::Data,
        })
        .collect()
}

/// Runs a processor receive-store `0Ry`: words arrive at one per
/// `feed_cycles_per_word` cycles and the processor stores them along `dst`
/// (or at the carried address when `addressed`).
///
/// # Errors
///
/// Returns [`SimError::Starved`] when the receiver blocks after the feed is
/// exhausted, and propagates engine errors.
pub fn run_receive_store(
    node: &mut Node,
    dst: &Walk,
    addressed: bool,
    feed_cycles_per_word: Cycle,
) -> SimResult<Measurement> {
    let words = feed_words(dst, addressed);
    let mut cpu = node.cpu();
    let mut receiver = CpuReceiver::new(dst.clone());
    let mut source_t: Cycle = 0;
    let mut fed = 0usize;
    let mut dog = watchdog_for(dst.len());
    loop {
        dog.tick("receive-store driver", cpu.t)?;
        while fed < words.len() {
            match node.rx.push(source_t, words[fed]) {
                Some(at) => {
                    source_t = at.max(source_t) + feed_cycles_per_word;
                    fed += 1;
                }
                None => break,
            }
        }
        match receiver.step(&mut cpu, &mut node.path, &mut node.mem, &mut node.rx)? {
            Step::Done => break,
            Step::Blocked => {
                if fed >= words.len() {
                    return Err(SimError::Starved {
                        engine: "cpu receiver",
                        at: cpu.t,
                    });
                }
            }
            Step::Progressed => {}
        }
    }
    let end = node.path.flush(cpu.t);
    Ok(Measurement::new(dst.len(), end))
}

/// Runs a deposit-engine receive `0Dy` (same feed as
/// [`run_receive_store`]).
///
/// # Errors
///
/// Returns [`SimError::Starved`] when the engine blocks after the feed is
/// exhausted, and propagates engine errors.
pub fn run_receive_deposit(
    node: &mut Node,
    dst: &Walk,
    addressed: bool,
    feed_cycles_per_word: Cycle,
) -> SimResult<Measurement> {
    let words = feed_words(dst, addressed);
    let mode = if addressed {
        DepositMode::Addressed
    } else {
        DepositMode::Stream(dst.clone())
    };
    let mut engine = DepositEngine::new(node.params().deposit, mode, dst.len());
    let mut source_t: Cycle = 0;
    let mut fed = 0usize;
    let mut dog = watchdog_for(dst.len());
    loop {
        dog.tick("receive-deposit driver", engine.t)?;
        while fed < words.len() {
            match node.rx.push(source_t, words[fed]) {
                Some(at) => {
                    source_t = at.max(source_t) + feed_cycles_per_word;
                    fed += 1;
                }
                None => break,
            }
        }
        match engine.step(&mut node.path, &mut node.mem, &mut node.rx)? {
            Step::Done => break,
            Step::Blocked => {
                if fed >= words.len() {
                    return Err(SimError::Starved {
                        engine: "deposit engine",
                        at: engine.t,
                    });
                }
            }
            Step::Progressed => {}
        }
    }
    Ok(Measurement::new(dst.len(), engine.t))
}

/// Drives a processor and a [`Cpu`]-owned walk pair through a whole copy —
/// exposed for drivers that need the raw loop (ablations, custom kernels).
///
/// # Errors
///
/// Propagates any [`SimError`] from the copy engine.
pub fn copy_to_completion(
    cpu: &mut Cpu,
    node: &mut Node,
    src: &Walk,
    dst: &Walk,
) -> SimResult<Cycle> {
    LocalCopier::new(src.clone(), dst.clone()).run(cpu, &mut node.path, &mut node.mem)?;
    Ok(node.path.flush(cpu.t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeParams;
    use memcomm_model::AccessPattern;

    fn node() -> Node {
        Node::new(NodeParams::default())
    }

    const N: u64 = 4096;

    #[test]
    fn contiguous_copy_beats_strided_beats_indexed_loads() {
        let mut n = node();
        let c_src = n.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let c_dst = n.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let contiguous = run_local_copy(&mut n, &c_src, &c_dst).unwrap();

        let mut n = node();
        let s_src = n
            .alloc_walk(AccessPattern::strided(64).unwrap(), N, None)
            .unwrap();
        let s_dst = n.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let strided = run_local_copy(&mut n, &s_src, &s_dst).unwrap();

        assert!(
            contiguous.cycles < strided.cycles,
            "contiguous {} !< strided {}",
            contiguous.cycles,
            strided.cycles
        );
    }

    #[test]
    fn copy_moves_the_data() {
        let mut n = node();
        let src = n.alloc_walk(AccessPattern::Contiguous, 256, None).unwrap();
        let dst = n
            .alloc_walk(AccessPattern::strided(8).unwrap(), 256, None)
            .unwrap();
        n.mem.fill(src.region(), (0..256).map(|i| i * 3));
        run_local_copy(&mut n, &src, &dst).unwrap();
        for i in 0..256 {
            assert_eq!(n.mem.read(dst.addr(i)), i * 3);
        }
    }

    #[test]
    fn load_send_measures_and_drains() {
        let mut n = node();
        let src = n.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let m = run_load_send(&mut n, &src, None, 8).unwrap();
        assert_eq!(m.words, N);
        assert!(n.tx.is_empty());
        assert_eq!(n.tx.total_pushed(), N);
    }

    #[test]
    fn slow_port_throttles_the_sender() {
        let mut n = node();
        let src = n.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let fast = run_load_send(&mut n, &src, None, 2).unwrap();
        let mut n2 = node();
        let src2 = n2.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let slow = run_load_send(&mut n2, &src2, None, 200).unwrap();
        assert!(slow.cycles > 2 * fast.cycles);
    }

    #[test]
    fn receive_store_lands_data() {
        let mut n = node();
        let dst = n
            .alloc_walk(AccessPattern::strided(4).unwrap(), 512, None)
            .unwrap();
        let m = run_receive_store(&mut n, &dst, true, 4).unwrap();
        assert_eq!(m.words, 512);
        for i in 0..512 {
            assert_eq!(n.mem.read(dst.addr(i)), i);
        }
    }

    #[test]
    fn receive_deposit_lands_data_stream_mode() {
        let mut n = node();
        let dst = n.alloc_walk(AccessPattern::Contiguous, 512, None).unwrap();
        let m = run_receive_deposit(&mut n, &dst, false, 4).unwrap();
        assert_eq!(m.words, 512);
        assert_eq!(n.mem.dump(dst.region()), (0..512).collect::<Vec<_>>());
    }

    #[test]
    fn deposit_contiguous_faster_than_strided() {
        let mut n = node();
        let dst = n.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let contiguous = run_receive_deposit(&mut n, &dst, true, 1).unwrap();
        let mut n2 = node();
        let dst2 = n2
            .alloc_walk(AccessPattern::strided(64).unwrap(), N, None)
            .unwrap();
        let strided = run_receive_deposit(&mut n2, &dst2, true, 1).unwrap();
        assert!(contiguous.cycles < strided.cycles);
    }

    #[test]
    fn fetch_send_streams_contiguously() {
        let mut n = node();
        let src = n.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let m = run_fetch_send(&mut n, &src, 8).unwrap();
        assert_eq!(m.words, N);
        assert_eq!(n.tx.total_popped(), N);
    }

    #[test]
    fn load_stream_and_store_stream_run() {
        let mut n = node();
        let w = n.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let load = run_load_stream(&mut n, &w).unwrap();
        let mut n2 = node();
        let w2 = n2.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let store = run_store_stream(&mut n2, &w2).unwrap();
        assert!(load.cycles > 0 && store.cycles > 0);
        // A pure stream is faster than a full copy over the same pattern.
        let mut n3 = node();
        let a = n3.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let b = n3.alloc_walk(AccessPattern::Contiguous, N, None).unwrap();
        let copy = run_local_copy(&mut n3, &a, &b).unwrap();
        assert!(load.cycles < copy.cycles);
        assert!(store.cycles < copy.cycles);
    }
}
