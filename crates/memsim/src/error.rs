//! Typed simulation errors.
//!
//! Co-simulations used to `panic!` the moment an engine starved or a FIFO
//! wedged, killing the whole sweep. Every simulation path now surfaces a
//! [`SimError`] instead, so a driver can report *why* a point failed (and
//! under fault injection, *that* it failed by design) while the rest of the
//! sweep keeps running.
//!
//! Error messages are deterministic: they mention local cycle counts and
//! engine names but never wall-clock data or addresses of host objects, so
//! a report that embeds them stays byte-identical across runs.

use std::fmt;

use crate::clock::Cycle;

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An engine blocked waiting for input that can never arrive.
    Starved {
        /// The engine that starved.
        engine: &'static str,
        /// Its local cycle count when it starved.
        at: Cycle,
    },
    /// The watchdog's step bound elapsed with agents still unfinished —
    /// the co-simulation stopped making progress.
    Wedged {
        /// The driver or engine being watched.
        engine: &'static str,
        /// Latest local cycle count observed.
        at: Cycle,
        /// Steps taken before the watchdog fired.
        steps: u64,
    },
    /// The experiment's cycle budget elapsed before the transfer finished.
    CycleBudget {
        /// The configured budget.
        budget: Cycle,
        /// The cycle count that exceeded it.
        at: Cycle,
    },
    /// No agent could make progress but work remained — a wiring bug or a
    /// fault-induced wedge.
    Deadlock {
        /// Which agents were still unfinished.
        detail: String,
        /// Earliest local time among the stuck agents.
        at: Cycle,
    },
    /// An engine was taken offline by the fault plan.
    Unavailable {
        /// The engine that is out.
        engine: &'static str,
        /// Its local cycle count when the outage struck.
        at: Cycle,
    },
    /// A protocol violation: unexpected word kind, retries exhausted,
    /// checksum failure that could not be recovered.
    Protocol {
        /// What went wrong.
        detail: String,
        /// Local cycle count of the detecting engine.
        at: Cycle,
    },
    /// A walk could not be constructed over the requested pattern.
    InvalidWalk {
        /// What was wrong with the request.
        detail: String,
    },
    /// The node memory cannot hold the requested allocation.
    OutOfMemory {
        /// Bytes the allocation needed.
        need_bytes: u64,
        /// Bytes the node memory holds in total.
        have_bytes: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Starved { engine, at } => {
                write!(f, "{engine} starved at cycle {at}")
            }
            SimError::Wedged { engine, at, steps } => {
                write!(
                    f,
                    "{engine} made no progress after {steps} steps (cycle {at})"
                )
            }
            SimError::CycleBudget { budget, at } => {
                write!(f, "cycle budget {budget} exceeded at cycle {at}")
            }
            SimError::Deadlock { detail, at } => {
                write!(f, "co-simulation deadlocked at cycle {at}: {detail}")
            }
            SimError::Unavailable { engine, at } => {
                write!(f, "{engine} unavailable (fault-induced) at cycle {at}")
            }
            SimError::Protocol { detail, at } => {
                write!(f, "protocol error at cycle {at}: {detail}")
            }
            SimError::InvalidWalk { detail } => write!(f, "invalid walk: {detail}"),
            SimError::OutOfMemory {
                need_bytes,
                have_bytes,
            } => write!(
                f,
                "node memory exhausted: need {need_bytes} bytes, have {have_bytes}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Shorthand for simulation results.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_deterministic_and_lowercase() {
        let e = SimError::Starved {
            engine: "deposit engine",
            at: 42,
        };
        assert_eq!(e.to_string(), "deposit engine starved at cycle 42");
        let e = SimError::OutOfMemory {
            need_bytes: 100,
            have_bytes: 64,
        };
        assert_eq!(
            e.to_string(),
            "node memory exhausted: need 100 bytes, have 64"
        );
    }

    #[test]
    fn errors_compare_and_clone() {
        let a = SimError::CycleBudget { budget: 10, at: 11 };
        assert_eq!(a.clone(), a);
        assert_ne!(
            a,
            SimError::CycleBudget { budget: 10, at: 12 },
            "distinct cycles are distinct errors"
        );
    }
}
