//! Pipelined-load queue (the i860XP's cache-bypassing `pfld` pipe).
//!
//! The i860XP can issue pipelined floating-point loads that bypass the cache
//! and return in order with a fixed pipeline depth. The processor only
//! stalls when the pipe is full, so DRAM latency is hidden behind issue
//! bandwidth — the mechanism that makes strided and indexed *loads* fast on
//! the Paragon. The paper notes a 30–40% performance loss when these loads
//! cannot be used.

use std::collections::VecDeque;

use crate::clock::Cycle;

/// Pipelined-load queue configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfqParams {
    /// Number of outstanding loads the pipe holds (3 on the i860XP).
    pub depth: usize,
    /// Whether the queue is usable at all (compilers of the era often did
    /// not emit `pfld`; the paper's ablation measures this).
    pub enabled: bool,
}

/// The pipelined-load queue: completion times of outstanding loads, in
/// issue order.
#[derive(Debug, Clone)]
pub struct Pfq {
    params: PfqParams,
    completions: VecDeque<Cycle>,
    stalls: u64,
}

impl Pfq {
    /// Creates the queue.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero — the queue doubles as the in-order retire
    /// buffer for cached loads, so even a disabled queue needs one slot.
    pub fn new(params: PfqParams) -> Self {
        assert!(params.depth >= 1, "pipelined-load queue needs depth >= 1");
        Pfq {
            params,
            completions: VecDeque::with_capacity(params.depth),
            stalls: 0,
        }
    }

    /// Configuration.
    pub fn params(&self) -> &PfqParams {
        &self.params
    }

    /// Whether the queue can be used.
    pub fn enabled(&self) -> bool {
        self.params.enabled
    }

    /// Number of full-queue stalls observed.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Outstanding loads.
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// Whether no loads are outstanding.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// Whether the pipe holds `depth` outstanding loads.
    pub fn is_full(&self) -> bool {
        self.completions.len() >= self.params.depth
    }

    /// Earliest time a new load can issue at or after `now`: immediately if
    /// a slot is free, otherwise when the oldest outstanding load retires.
    /// (The slot itself is freed by [`retire`](Self::retire).)
    pub fn issue_time(&mut self, now: Cycle) -> Cycle {
        if self.is_full() {
            let front = *self.completions.front().expect("full implies non-empty");
            if front > now {
                self.stalls += 1;
            }
            now.max(front)
        } else {
            now
        }
    }

    /// Records an issued load that completes at `completion`.
    ///
    /// # Panics
    ///
    /// Panics if the pipe is full — call [`retire`](Self::retire) first.
    pub fn push(&mut self, completion: Cycle) {
        assert!(!self.is_full(), "push into a full pipelined-load queue");
        self.completions.push_back(completion);
    }

    /// Retires the oldest outstanding load, returning when its data was
    /// ready.
    pub fn retire(&mut self) -> Option<Cycle> {
        self.completions.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfq(depth: usize) -> Pfq {
        Pfq::new(PfqParams {
            depth,
            enabled: true,
        })
    }

    #[test]
    fn issues_freely_until_full() {
        let mut q = pfq(3);
        assert_eq!(q.issue_time(10), 10);
        q.push(100);
        assert_eq!(q.issue_time(11), 11);
        q.push(110);
        assert_eq!(q.issue_time(12), 12);
        q.push(120);
        // Full: the next issue waits for the oldest completion.
        assert_eq!(q.issue_time(13), 100);
        assert_eq!(q.stalls(), 1);
    }

    #[test]
    fn retire_returns_in_order() {
        let mut q = pfq(2);
        q.push(50);
        q.push(60);
        assert_eq!(q.retire(), Some(50));
        assert_eq!(q.retire(), Some(60));
        assert_eq!(q.retire(), None);
    }

    #[test]
    fn no_stall_counted_when_oldest_already_done() {
        let mut q = pfq(1);
        q.push(5);
        assert_eq!(q.issue_time(10), 10);
        assert_eq!(q.stalls(), 0);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn push_into_full_panics() {
        let mut q = pfq(1);
        q.push(1);
        q.push(2);
    }

    #[test]
    #[should_panic(expected = "depth >= 1")]
    fn zero_depth_rejected() {
        let _ = Pfq::new(PfqParams {
            depth: 0,
            enabled: false,
        });
    }
}
