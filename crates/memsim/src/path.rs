//! The memory path: cache + write buffer + read-ahead + DRAM behind one
//! arbitration point.
//!
//! Every agent that touches memory — the processor, a DMA engine, the
//! deposit engine — goes through the node's single [`MemPath`]. Requests
//! carry timestamps; drivers advance agents in earliest-first order, so the
//! path sees a causally ordered request stream and can model bank
//! occupancy, background write-buffer drains and requester-switch
//! arbitration penalties with simple free-until bookkeeping.

use crate::cache::{Cache, CacheParams, LoadOutcome, StoreOutcome};
use crate::clock::Cycle;
use crate::dram::{Dram, DramOp, DramParams};
use crate::mem::WORD_BYTES;
use crate::readahead::{ReadAhead, ReadAheadParams};
use crate::trace::{Trace, TraceEntry, TraceOp};
use crate::wbq::{Wbq, WbqParams};

/// The requester of a memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Port {
    /// The node's main processor.
    Cpu,
    /// The second processor of a multiprocessor node (Paragon co-processor).
    CoProcessor,
    /// A DMA / line-transfer engine.
    Dma,
    /// The deposit engine handling incoming remote stores.
    Deposit,
}

/// Memory-path configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathParams {
    /// Cache geometry and policy.
    pub cache: CacheParams,
    /// Write-buffer geometry.
    pub wbq: WbqParams,
    /// Read-ahead unit.
    pub readahead: ReadAheadParams,
    /// DRAM timing.
    pub dram: DramParams,
    /// Arbitration penalty in cycles when the requesting port changes
    /// between two requests closer than `switch_window_cycles` apart
    /// (fine-grain interleaving cost on the Paragon bus).
    pub switch_penalty_cycles: Cycle,
    /// Window within which a requester switch incurs the penalty.
    pub switch_window_cycles: Cycle,
    /// Whether deposit-engine writes invalidate matching cache lines (the
    /// T3D annex invalidates line by line).
    pub deposit_invalidates_cache: bool,
}

/// Counters for reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// CPU cacheable loads.
    pub cpu_loads: u64,
    /// CPU stores.
    pub cpu_stores: u64,
    /// Uncached (pipelined) loads.
    pub uncached_loads: u64,
    /// Background write-buffer drains.
    pub background_drains: u64,
    /// Drains forced by a full buffer or store-to-load conflict.
    pub forced_drains: u64,
    /// Requester-switch penalties applied.
    pub switch_penalties: u64,
    /// Engine (DMA/deposit) accesses.
    pub engine_accesses: u64,
}

/// The node memory path.
#[derive(Debug, Clone)]
pub struct MemPath {
    cache: Cache,
    wbq: Wbq,
    rdal: ReadAhead,
    dram: Dram,
    params: PathParams,
    last_port: Option<(Port, Cycle)>,
    last_drain_end: Cycle,
    stats: PathStats,
    trace: Option<Trace>,
}

impl MemPath {
    /// Creates a memory path.
    ///
    /// # Panics
    ///
    /// Panics if the component parameters are inconsistent (see the
    /// component constructors), or if the write-buffer line size differs
    /// from the cache line size.
    pub fn new(params: PathParams) -> Self {
        assert_eq!(
            params.wbq.line_bytes, params.cache.line_bytes,
            "write-buffer merge granularity must match the cache line"
        );
        MemPath {
            cache: Cache::new(params.cache),
            wbq: Wbq::new(params.wbq),
            rdal: ReadAhead::new(params.readahead),
            dram: Dram::new(params.dram),
            params,
            last_port: None,
            last_drain_end: 0,
            stats: PathStats::default(),
            trace: None,
        }
    }

    /// Starts recording a memory-reference trace (see
    /// [`trace`](crate::trace)). Any previous trace is discarded.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// Stops tracing and returns the recorded trace, if tracing was on.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    fn record(&mut self, cycle: Cycle, port: Port, op: TraceOp, addr: u64, words: u32) {
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEntry {
                cycle,
                port,
                op,
                addr,
                words,
            });
        }
    }

    /// Configuration.
    pub fn params(&self) -> &PathParams {
        &self.params
    }

    /// Counters.
    pub fn stats(&self) -> PathStats {
        self.stats
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// DRAM counters.
    pub fn dram_stats(&self) -> crate::dram::DramStats {
        self.dram.stats()
    }

    /// Write-buffer counters.
    pub fn wbq_stats(&self) -> crate::wbq::WbqStats {
        self.wbq.stats()
    }

    /// Read-ahead counters.
    pub fn readahead_stats(&self) -> crate::readahead::ReadAheadStats {
        self.rdal.stats()
    }

    fn arbitrate(&mut self, port: Port, t: Cycle) -> Cycle {
        let t = match self.last_port {
            Some((last, at))
                if last != port && t.saturating_sub(at) < self.params.switch_window_cycles =>
            {
                self.stats.switch_penalties += 1;
                t + self.params.switch_penalty_cycles
            }
            _ => t,
        };
        self.last_port = Some((port, t));
        t
    }

    /// Drains write-buffer entries that the controller would have started
    /// during DRAM idle time before `t`.
    fn background_drain(&mut self, t: Cycle) {
        loop {
            let Some(front_addr) = self.peek_drain_addr() else {
                return;
            };
            if self.dram.free_at(front_addr) >= t {
                return;
            }
            self.drain_one(self.dram.free_at(front_addr));
            self.stats.background_drains += 1;
        }
    }

    fn peek_drain_addr(&self) -> Option<u64> {
        self.wbq.front_line()
    }

    fn drain_one(&mut self, at: Cycle) -> Cycle {
        let item = self.wbq.pop().expect("drain_one called with empty wbq");
        // Write buffers drain in order with a single outstanding
        // transaction: the next drain cannot start before the previous one
        // completed, even to an idle bank.
        let at = at.max(self.last_drain_end);
        self.record(
            at,
            Port::Cpu,
            TraceOp::Drain,
            item.line_base,
            item.words.max(1),
        );
        let span = self.dram.access(
            at,
            item.line_base,
            item.words.max(1),
            DramOp::PostedWrite {
                regular: item.regular,
            },
        );
        self.last_drain_end = span.end;
        span.end
    }

    /// Forces drains until a predicate is satisfied, starting no earlier
    /// than `t`; returns when the last forced drain finished.
    fn forced_drain_until<F: Fn(&Wbq) -> bool>(&mut self, t: Cycle, done: F) -> Cycle {
        let mut now = t;
        while !done(&self.wbq) {
            let addr = self.wbq.front_line().expect("predicate holds on empty");
            let start = now.max(self.dram.free_at(addr));
            now = self.drain_one(start);
            self.stats.forced_drains += 1;
        }
        now
    }

    /// A cacheable CPU load of the word at `addr`, requested at `t`.
    /// Returns when the data is available to the processor.
    pub fn cpu_load(&mut self, t: Cycle, port: Port, addr: u64) -> Cycle {
        self.stats.cpu_loads += 1;
        let t = self.arbitrate(port, t);
        self.record(t, port, TraceOp::Load, addr, 1);
        self.background_drain(t);
        // Store-to-load ordering: pending buffered stores to this line must
        // reach memory first.
        let t = if self.wbq.overlaps(addr) {
            let base = self.cache.line_base(addr);
            self.forced_drain_until(t, |w| !w.overlaps(base))
        } else {
            t
        };
        match self.cache.load(addr) {
            LoadOutcome::Hit => t + self.cache.params().hit_cycles,
            LoadOutcome::Miss { evicted_dirty } => {
                let mut now = t;
                if let Some(victim) = evicted_dirty {
                    let words = (self.params.cache.line_bytes / WORD_BYTES) as u32;
                    now = self.dram.access(now, victim, words, DramOp::Write).end;
                }
                let line = self.cache.line_base(addr);
                let line_words = (self.params.cache.line_bytes / WORD_BYTES) as u32;
                if let Some(ready) = self.rdal.buffer_hit(line, now) {
                    // Served from the read-ahead buffer; keep the stream
                    // rolling by prefetching the next line in the background.
                    if let Some(next) = self.rdal.on_fill(line, self.params.cache.line_bytes) {
                        let span = self.dram.access(
                            self.dram.free_at(next).max(now),
                            next,
                            line_words,
                            DramOp::Read,
                        );
                        self.rdal.note_prefetch(next, span.end);
                    }
                    return ready;
                }
                let span = self.dram.access(now, line, line_words, DramOp::Read);
                if let Some(next) = self.rdal.on_fill(line, self.params.cache.line_bytes) {
                    let pspan = self.dram.access(span.end, next, line_words, DramOp::Read);
                    self.rdal.note_prefetch(next, pspan.end);
                }
                span.end + self.params.dram.demand_latency_cycles
            }
        }
    }

    /// An uncached (pipelined) load of one word — the i860 `pfld` path.
    /// Returns when the data arrives; the caller's pipelined-load queue
    /// decides whether the processor waits.
    pub fn uncached_load(&mut self, t: Cycle, port: Port, addr: u64) -> Cycle {
        self.stats.uncached_loads += 1;
        let t = self.arbitrate(port, t);
        self.record(t, port, TraceOp::UncachedLoad, addr, 1);
        self.background_drain(t);
        let t = if self.wbq.overlaps(addr) {
            let base = self.cache.line_base(addr);
            self.forced_drain_until(t, |w| !w.overlaps(base))
        } else {
            t
        };
        self.dram.access(t, addr, 1, DramOp::Read).end + self.params.dram.demand_latency_cycles
    }

    /// A CPU store of the word at `addr`, requested at `t`. Returns when
    /// the processor may proceed (stores are posted; the write reaches
    /// memory via the write buffer or on eviction).
    pub fn cpu_store(&mut self, t: Cycle, port: Port, addr: u64) -> Cycle {
        self.stats.cpu_stores += 1;
        let t = self.arbitrate(port, t);
        self.record(t, port, TraceOp::Store, addr, 1);
        self.background_drain(t);
        match self.cache.store(addr) {
            StoreOutcome::WriteThrough { .. } => {
                let mut now = t;
                if !self.wbq.push(addr) {
                    now = self.forced_drain_until(now, |w| !w.is_full());
                    assert!(self.wbq.push(addr), "space was just drained");
                }
                now
            }
            StoreOutcome::WriteBackHit => t,
            StoreOutcome::WriteBackMiss {
                allocated,
                evicted_dirty,
            } => {
                let mut now = t;
                if let Some(victim) = evicted_dirty {
                    let words = (self.params.cache.line_bytes / WORD_BYTES) as u32;
                    now = self.dram.access(now, victim, words, DramOp::Write).end;
                }
                if allocated {
                    // Write-allocate: fetch the line before completing.
                    let line = self.cache.line_base(addr);
                    let words = (self.params.cache.line_bytes / WORD_BYTES) as u32;
                    now = self.dram.access(now, line, words, DramOp::Read).end;
                } else if !self.wbq.push(addr) {
                    now = self.forced_drain_until(now, |w| !w.is_full());
                    assert!(self.wbq.push(addr), "space was just drained");
                }
                now
            }
        }
    }

    /// A background-engine write of `words` consecutive words at `addr`
    /// (deposit engine). Invalidates matching cache lines if configured.
    /// Returns when the write completed.
    pub fn engine_write(&mut self, t: Cycle, port: Port, addr: u64, words: u32) -> Cycle {
        self.stats.engine_accesses += 1;
        let t = self.arbitrate(port, t);
        self.record(t, port, TraceOp::EngineWrite, addr, words);
        self.background_drain(t);
        if self.params.deposit_invalidates_cache {
            let line_bytes = self.params.cache.line_bytes;
            let first = self.cache.line_base(addr);
            let last = self
                .cache
                .line_base(addr + u64::from(words - 1) * WORD_BYTES);
            let mut line = first;
            loop {
                self.cache.invalidate_line(line);
                if line >= last {
                    break;
                }
                line += line_bytes;
            }
        }
        self.dram.access(t, addr, words, DramOp::Write).end
    }

    /// A background-engine read of `words` consecutive words at `addr`
    /// (DMA fetch). Returns when the data is out of memory.
    pub fn engine_read(&mut self, t: Cycle, port: Port, addr: u64, words: u32) -> Cycle {
        self.stats.engine_accesses += 1;
        let t = self.arbitrate(port, t);
        self.record(t, port, TraceOp::EngineRead, addr, words);
        self.background_drain(t);
        let t = if self.wbq.overlaps(addr) {
            let base = self.cache.line_base(addr);
            self.forced_drain_until(t, |w| !w.overlaps(base))
        } else {
            t
        };
        self.dram.access(t, addr, words, DramOp::Read).end
    }

    /// Drains the whole write buffer, starting at `t`. Returns when memory
    /// is consistent.
    pub fn flush(&mut self, t: Cycle) -> Cycle {
        self.forced_drain_until(t, Wbq::is_empty)
    }

    /// Invalidates the entire cache (T3D synchronization point).
    pub fn invalidate_cache(&mut self) {
        self.cache.invalidate_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::WritePolicy;

    fn t3d_ish() -> PathParams {
        PathParams {
            cache: CacheParams {
                size_bytes: 8 * 1024,
                line_bytes: 32,
                ways: 1,
                write_policy: WritePolicy::WriteThrough,
                allocate_on_store_miss: false,
                hit_cycles: 1,
            },
            wbq: WbqParams {
                entries: 6,
                merge: true,
                line_bytes: 32,
            },
            readahead: ReadAheadParams {
                enabled: true,
                buffer_hit_cycles: 4,
            },
            dram: DramParams {
                banks: 1,
                interleave_bytes: 32,
                row_bytes: 2048,
                read_hit_cycles: 5,
                read_miss_cycles: 22,
                write_hit_cycles: 4,
                write_miss_cycles: 22,
                posted_write_miss_cycles: 14,
                burst_word_cycles: 1,
                channel_word_cycles: 1,
                demand_latency_cycles: 10,
                write_row_affinity: true,
                read_row_affinity: true,
                turnaround_cycles: 0,
            },
            switch_penalty_cycles: 0,
            switch_window_cycles: 0,
            deposit_invalidates_cache: true,
        }
    }

    #[test]
    fn cached_line_serves_following_words() {
        let mut p = MemPath::new(t3d_ish());
        let t1 = p.cpu_load(0, Port::Cpu, 0x0);
        let t2 = p.cpu_load(t1, Port::Cpu, 0x8);
        assert!(t1 >= 22, "first load misses");
        assert_eq!(t2, t1 + 1, "second word hits the line");
    }

    #[test]
    fn readahead_accelerates_contiguous_streams() {
        let sweep = |enabled: bool| {
            let mut params = t3d_ish();
            params.readahead.enabled = enabled;
            let mut p = MemPath::new(params);
            let mut t = 0;
            for i in 0..4096u64 {
                t = p.cpu_load(t, Port::Cpu, i * 8);
            }
            t
        };
        let with = sweep(true);
        let without = sweep(false);
        assert!(
            (without as f64) > 1.3 * with as f64,
            "read-ahead should speed a load stream: {with} vs {without}"
        );
    }

    #[test]
    fn stores_are_posted_until_buffer_fills() {
        let mut p = MemPath::new(t3d_ish());
        // Strided stores, each to a fresh line: first 6 are absorbed, then
        // the buffer is full and drains at DRAM speed.
        let mut t = 0;
        let mut release_times = Vec::new();
        for i in 0..12u64 {
            t = p.cpu_store(t, Port::Cpu, i * 512);
            release_times.push(t);
        }
        assert_eq!(release_times[..6], [0, 0, 0, 0, 0, 0][..]);
        assert!(release_times[11] > 0);
        assert!(p.wbq_stats().full_stalls > 0);
    }

    #[test]
    fn store_then_load_same_line_orders() {
        let mut p = MemPath::new(t3d_ish());
        let rel = p.cpu_store(0, Port::Cpu, 0x100);
        assert_eq!(rel, 0, "store posted");
        let ready = p.cpu_load(0, Port::Cpu, 0x100);
        // The load had to wait for the buffered store to drain (22, row
        // miss) and then fetch the line (row hit 5 + 3 burst + 10 latency).
        assert!(ready >= 40, "got {ready}");
        assert!(p.stats().forced_drains >= 1);
    }

    #[test]
    fn background_drain_uses_idle_time() {
        let mut p = MemPath::new(t3d_ish());
        p.cpu_store(0, Port::Cpu, 0x4000);
        // Long idle gap, then a load to an unrelated address: the store
        // drained in the background, so the load is not delayed.
        let ready = p.cpu_load(10_000, Port::Cpu, 0x8000);
        assert_eq!(ready, 10_000 + 22 + 3 + 10);
        assert!(p.stats().background_drains >= 1);
    }

    #[test]
    fn deposit_write_invalidates_cached_line() {
        let mut p = MemPath::new(t3d_ish());
        let t = p.cpu_load(0, Port::Cpu, 0x40);
        let t = p.engine_write(t, Port::Deposit, 0x40, 4);
        let again = p.cpu_load(t, Port::Cpu, 0x40);
        // The deposit left the row open, so the refetch is a row hit, but it
        // is a full line fill, not a cache hit.
        assert_eq!(p.cache_stats().load_misses, 2, "line must be refetched");
        assert!(
            again - t >= 18,
            "refetch pays fill + latency, got {}",
            again - t
        );
    }

    #[test]
    fn switch_penalty_applies_within_window() {
        let mut params = t3d_ish();
        params.switch_penalty_cycles = 10;
        params.switch_window_cycles = 100;
        let mut p = MemPath::new(params);
        let t = p.cpu_load(0, Port::Cpu, 0x0);
        let before = p.stats().switch_penalties;
        let _ = p.engine_write(t, Port::Deposit, 0x10000, 1);
        assert_eq!(p.stats().switch_penalties, before + 1);
        // Far apart in time: no penalty.
        let _ = p.cpu_load(t + 10_000, Port::Cpu, 0x2000);
        assert_eq!(p.stats().switch_penalties, before + 1);
    }

    #[test]
    fn flush_empties_the_buffer() {
        let mut p = MemPath::new(t3d_ish());
        for i in 0..4u64 {
            p.cpu_store(0, Port::Cpu, i * 512);
        }
        let done = p.flush(0);
        assert!(done > 0);
        let next = p.flush(done);
        assert_eq!(next, done, "second flush is a no-op");
    }

    #[test]
    fn uncached_load_bypasses_cache() {
        let mut p = MemPath::new(t3d_ish());
        let t1 = p.uncached_load(0, Port::Cpu, 0x0);
        let t2 = p.uncached_load(t1, Port::Cpu, 0x8);
        // Second word is a row hit (5) plus demand latency (10), but not a
        // cache hit.
        assert_eq!(t2 - t1, 15, "row hit + latency cost");
        assert_eq!(p.cache_stats().load_misses, 0);
    }

    #[test]
    fn write_back_cache_defers_memory_traffic() {
        let mut params = t3d_ish();
        params.cache.write_policy = WritePolicy::WriteBack;
        params.cache.allocate_on_store_miss = true;
        let mut p = MemPath::new(params);
        let t = p.cpu_store(0, Port::Cpu, 0x0); // miss: write-allocate fill
        assert!(t >= 22);
        let t2 = p.cpu_store(t, Port::Cpu, 0x8); // hit: free
        assert_eq!(t2, t);
    }
}
