//! Network-interface FIFOs.
//!
//! The nodes expose their network as memory-mapped FIFO ports. A
//! [`TimedFifo`] is a bounded queue whose items carry availability
//! timestamps, so producer and consumer state machines running at different
//! local times compose causally: a producer blocked on a full FIFO resumes
//! no earlier than the pop that freed the slot, and a consumer never sees a
//! word before the cycle it was pushed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::clock::Cycle;

/// What a wire word means to the receiving engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WordKind {
    /// Payload (optionally with a remote store address) — a put.
    #[default]
    Data,
    /// A remote-load request — a get: `addr` is the remote address to read,
    /// `data` carries the requester-local reply address.
    Request,
    /// Protocol control traffic (frame headers, checksums, acknowledgements)
    /// — `data` carries the opcode and operands, packed by the protocol
    /// layer. Engines that only understand raw puts/gets reject these.
    Control,
}

/// One word on the wire: the 64-bit payload, plus the remote store address
/// when the transfer sends address-data pairs (`Nadp`), plus its meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetWord {
    /// Destination byte address, present for address-data-pair transfers.
    pub addr: Option<u64>,
    /// The 64-bit payload (for requests: the reply address).
    pub data: u64,
    /// Request or data.
    pub kind: WordKind,
}

impl NetWord {
    /// A bare data word (data-only network, `Nd`).
    pub fn data(data: u64) -> Self {
        NetWord {
            addr: None,
            data,
            kind: WordKind::Data,
        }
    }

    /// An address-data pair (`Nadp`) — a remote store.
    pub fn addressed(addr: u64, data: u64) -> Self {
        NetWord {
            addr: Some(addr),
            data,
            kind: WordKind::Data,
        }
    }

    /// A remote-load request: read `remote_addr` on the target, deliver to
    /// `reply_addr` here.
    pub fn request(remote_addr: u64, reply_addr: u64) -> Self {
        NetWord {
            addr: Some(remote_addr),
            data: reply_addr,
            kind: WordKind::Request,
        }
    }

    /// A protocol control word; `data` packs the opcode and operands.
    pub fn control(data: u64) -> Self {
        NetWord {
            addr: None,
            data,
            kind: WordKind::Control,
        }
    }

    /// Bytes this word occupies on the wire: 8 for data, 16 for an
    /// address-data pair or a request (two addresses).
    pub fn wire_bytes(&self) -> u64 {
        if self.addr.is_some() {
            16
        } else {
            8
        }
    }
}

/// A bounded FIFO with timestamped occupancy.
#[derive(Debug, Clone)]
pub struct TimedFifo {
    items: VecDeque<(Cycle, NetWord)>,
    free_slots: BinaryHeap<Reverse<Cycle>>,
    capacity: usize,
    pushed: u64,
    popped: u64,
    stalls: u64,
    faults: Option<(crate::fault::FaultPlan, u64)>,
    obs: memcomm_obs::Obs,
}

impl TimedFifo {
    /// Creates a FIFO with `capacity` word slots.
    ///
    /// # Panics
    ///
    /// Panics for zero capacity (a zero-slot FIFO deadlocks every driver).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "fifo capacity must be at least 1");
        TimedFifo {
            items: VecDeque::with_capacity(capacity),
            free_slots: (0..capacity).map(|_| Reverse(0)).collect(),
            capacity,
            pushed: 0,
            popped: 0,
            stalls: 0,
            faults: None,
            obs: memcomm_obs::Obs::disabled(),
        }
    }

    /// Arms fault injection: each push draws a (usually zero) stall window
    /// from the plan, modelling back-pressure glitches in the NIC. Fired
    /// stalls count into the observability handle current at arming time.
    pub fn set_faults(&mut self, plan: crate::fault::FaultPlan, site: u64) {
        self.faults = plan.is_active().then_some((plan, site));
        if self.faults.is_some() {
            self.obs = memcomm_obs::Obs::current();
        }
    }

    /// Arms fault injection *without* capturing an observability handle:
    /// fired stalls only bump the local [`stalls_fired`](Self::stalls_fired)
    /// counter. Batch engines use this so their hot path never takes the
    /// registry lock per event — the coordinator diffs the counter once per
    /// window and flushes one aggregate delta, which lands on the same
    /// totals (counter adds commute).
    pub fn set_faults_quiet(&mut self, plan: crate::fault::FaultPlan, site: u64) {
        self.faults = plan.is_active().then_some((plan, site));
        self.obs = memcomm_obs::Obs::disabled();
    }

    /// Pushes that drew a non-zero stall window since construction.
    pub fn stalls_fired(&self) -> u64 {
        self.stalls
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Words currently enqueued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO holds no words.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total words ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total words ever popped.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Attempts to push at local time `t`. On success returns the cycle the
    /// word actually entered the FIFO (`>= t`; later if the freeing pop
    /// happened later). Returns `None` when every slot is occupied — the
    /// caller is blocked and must let the consumer run.
    pub fn push(&mut self, t: Cycle, word: NetWord) -> Option<Cycle> {
        let Reverse(slot_free) = self.free_slots.pop()?;
        let stall = match &self.faults {
            Some((plan, s)) => plan.stall_cycles(*s, self.pushed),
            None => 0,
        };
        if stall > 0 {
            self.stalls += 1;
            self.obs.count(crate::stats::fault_metric::INJECTED, 1);
        }
        let at = t.max(slot_free) + stall;
        self.items.push_back((at, word));
        self.pushed += 1;
        Some(at)
    }

    /// When the oldest word becomes visible to a consumer, if any.
    pub fn front_ready(&self) -> Option<Cycle> {
        self.items.front().map(|(at, _)| *at)
    }

    /// Attempts to pop at local time `t`. On success returns the pop cycle
    /// (`max(t, word availability)`) and the word; the freed slot is stamped
    /// with the pop cycle. Returns `None` when empty.
    pub fn pop(&mut self, t: Cycle) -> Option<(Cycle, NetWord)> {
        let (avail, word) = self.items.pop_front()?;
        let at = t.max(avail);
        self.free_slots.push(Reverse(at));
        self.popped += 1;
        Some((at, word))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(data: u64) -> NetWord {
        NetWord::data(data)
    }

    #[test]
    fn fifo_order_and_counts() {
        let mut f = TimedFifo::new(4);
        f.push(0, w(1)).unwrap();
        f.push(1, w(2)).unwrap();
        assert_eq!(f.pop(5).unwrap().1.data, 1);
        assert_eq!(f.pop(5).unwrap().1.data, 2);
        assert_eq!(f.total_pushed(), 2);
        assert_eq!(f.total_popped(), 2);
    }

    #[test]
    fn full_fifo_blocks_push() {
        let mut f = TimedFifo::new(2);
        assert!(f.push(0, w(1)).is_some());
        assert!(f.push(0, w(2)).is_some());
        assert!(f.push(0, w(3)).is_none());
        let (pop_t, _) = f.pop(50).unwrap();
        assert_eq!(pop_t, 50);
        // The freed slot is stamped with the pop time: a retry from an
        // earlier producer clock lands at 50.
        assert_eq!(f.push(10, w(3)), Some(50));
    }

    #[test]
    fn consumer_waits_for_availability() {
        let mut f = TimedFifo::new(2);
        f.push(100, w(9)).unwrap();
        let (t, word) = f.pop(10).unwrap();
        assert_eq!(t, 100, "cannot pop before the word arrived");
        assert_eq!(word.data, 9);
    }

    #[test]
    fn front_ready_peeks_without_removing() {
        let mut f = TimedFifo::new(1);
        assert_eq!(f.front_ready(), None);
        f.push(7, w(1)).unwrap();
        assert_eq!(f.front_ready(), Some(7));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn wire_bytes_reflect_addressing() {
        assert_eq!(w(0).wire_bytes(), 8);
        assert_eq!(NetWord::addressed(64, 0).wire_bytes(), 16);
        assert_eq!(NetWord::request(64, 128).wire_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = TimedFifo::new(0);
    }

    #[test]
    fn quiet_faults_stall_identically_but_skip_the_registry() {
        let plan = crate::fault::FaultPlan::new(crate::fault::FaultConfig {
            seed: 7,
            rate: 1.0,
            max_stall_cycles: 4,
            ..crate::fault::FaultConfig::default()
        });
        let obs = memcomm_obs::Obs::new(false);
        let _guard = obs.install();
        let mut loud = TimedFifo::new(64);
        loud.set_faults(plan, 11);
        let mut quiet = TimedFifo::new(64);
        quiet.set_faults_quiet(plan, 11);
        for i in 0..32 {
            // Identical plan and site: both FIFOs draw the same stalls and
            // land every word on the same cycle.
            assert_eq!(loud.push(i, w(i)), quiet.push(i, w(i)));
        }
        assert!(loud.stalls_fired() > 0);
        assert_eq!(loud.stalls_fired(), quiet.stalls_fired());
        // Only the loud FIFO touched the registry; the quiet one left the
        // aggregate flush to its coordinator.
        assert_eq!(
            obs.counter(crate::stats::fault_metric::INJECTED),
            loud.stalls_fired()
        );
    }
}
