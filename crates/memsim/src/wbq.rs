//! Write buffer ("write-back queue", WBQ).
//!
//! The DEC Alpha on the T3D node posts stores into a small write-back queue
//! that merges stores to the same line and drains to DRAM in the background.
//! This is why strided *stores* outperform strided *loads* on the T3D: the
//! processor never waits for the DRAM row miss, and the queue presents the
//! memory controller with a predictable address stream it can pipeline.

use std::collections::VecDeque;

use crate::mem::WORD_BYTES;

/// Write-buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WbqParams {
    /// Number of entries (lines or single words, depending on `merge`).
    pub entries: usize,
    /// Whether stores to the same line merge into one entry.
    pub merge: bool,
    /// Line size in bytes (merge granularity).
    pub line_bytes: u64,
}

/// One drained item: a line-base address, how many words of it are pending,
/// and whether the drain stream has been address-regular (constant stride),
/// enabling posted-write pipelining in the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainItem {
    /// Line-base byte address.
    pub line_base: u64,
    /// Number of distinct pending words in the line.
    pub words: u32,
    /// Whether this drain continues a constant-stride address stream.
    pub regular: bool,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line_base: u64,
    mask: u64,
}

/// Counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WbqStats {
    /// Stores accepted into a fresh entry.
    pub queued: u64,
    /// Stores merged into an existing entry.
    pub merged: u64,
    /// Pushes rejected because the queue was full (drain stalls).
    pub full_stalls: u64,
}

/// The write buffer.
#[derive(Debug, Clone)]
pub struct Wbq {
    params: WbqParams,
    entries: VecDeque<Entry>,
    last_drained: Option<u64>,
    last_delta: Option<i64>,
    stats: WbqStats,
}

impl Wbq {
    /// Creates a write buffer.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or the line size is not a multiple of the
    /// word size.
    pub fn new(params: WbqParams) -> Self {
        assert!(params.entries >= 1, "write buffer needs at least one entry");
        assert!(
            params.line_bytes >= WORD_BYTES && params.line_bytes.is_multiple_of(WORD_BYTES),
            "line size must be a positive multiple of the word size"
        );
        assert!(
            params.line_bytes / WORD_BYTES <= 64,
            "line mask limited to 64 words"
        );
        Wbq {
            params,
            entries: VecDeque::with_capacity(params.entries),
            last_drained: None,
            last_delta: None,
            stats: WbqStats::default(),
        }
    }

    /// Configuration.
    pub fn params(&self) -> &WbqParams {
        &self.params
    }

    /// Counters.
    pub fn stats(&self) -> WbqStats {
        self.stats
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full (the next non-merging push would stall).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.params.entries
    }

    fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.params.line_bytes - 1)
    }

    /// Attempts to post a store of the word at `addr`. Returns `true` if the
    /// store was absorbed (queued or merged); `false` if the queue is full
    /// and must be drained first (the caller records the stall and calls
    /// [`pop`](Self::pop)).
    pub fn push(&mut self, addr: u64) -> bool {
        let base = self.line_base(addr);
        let bit = 1u64 << ((addr - base) / WORD_BYTES);
        if self.params.merge {
            if let Some(e) = self.entries.iter_mut().find(|e| e.line_base == base) {
                e.mask |= bit;
                self.stats.merged += 1;
                return true;
            }
        }
        if self.is_full() {
            self.stats.full_stalls += 1;
            return false;
        }
        self.entries.push_back(Entry {
            line_base: base,
            mask: bit,
        });
        self.stats.queued += 1;
        true
    }

    /// Line-base address of the oldest entry (the next to drain).
    pub fn front_line(&self) -> Option<u64> {
        self.entries.front().map(|e| e.line_base)
    }

    /// Drains the oldest entry, reporting whether the drain stream remains
    /// address-regular.
    pub fn pop(&mut self) -> Option<DrainItem> {
        let e = self.entries.pop_front()?;
        let delta = self
            .last_drained
            .map(|prev| e.line_base as i64 - prev as i64);
        let regular = matches!((delta, self.last_delta), (Some(d), Some(p)) if d == p);
        self.last_delta = delta;
        self.last_drained = Some(e.line_base);
        Some(DrainItem {
            line_base: e.line_base,
            words: e.mask.count_ones(),
            regular,
        })
    }

    /// Whether any pending entry overlaps the line containing `addr` — a
    /// load of that line must wait for the drain (store-to-load ordering).
    pub fn overlaps(&self, addr: u64) -> bool {
        let base = self.line_base(addr);
        self.entries.iter().any(|e| e.line_base == base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wbq(entries: usize, merge: bool) -> Wbq {
        Wbq::new(WbqParams {
            entries,
            merge,
            line_bytes: 32,
        })
    }

    #[test]
    fn contiguous_stores_merge_into_lines() {
        let mut q = wbq(4, true);
        for a in (0..32).step_by(8) {
            assert!(q.push(a));
        }
        assert_eq!(q.len(), 1);
        let d = q.pop().unwrap();
        assert_eq!(d.words, 4);
        assert_eq!(d.line_base, 0);
        assert_eq!(q.stats().merged, 3);
    }

    #[test]
    fn full_queue_rejects() {
        let mut q = wbq(2, true);
        assert!(q.push(0));
        assert!(q.push(64));
        assert!(!q.push(128));
        assert_eq!(q.stats().full_stalls, 1);
        q.pop();
        assert!(q.push(128));
    }

    #[test]
    fn regularity_needs_two_equal_deltas() {
        let mut q = wbq(8, true);
        for a in [0u64, 512, 1024, 1536] {
            q.push(a);
        }
        let r: Vec<bool> = std::iter::from_fn(|| q.pop().map(|d| d.regular)).collect();
        // First drain has no history, second has one delta, third and fourth
        // continue the stride.
        assert_eq!(r, vec![false, false, true, true]);
    }

    #[test]
    fn irregular_stream_is_not_pipelined() {
        let mut q = wbq(8, true);
        for a in [0u64, 512, 96, 4096] {
            q.push(a);
        }
        let r: Vec<bool> = std::iter::from_fn(|| q.pop().map(|d| d.regular)).collect();
        assert!(!r.iter().any(|&x| x));
    }

    #[test]
    fn no_merge_mode_queues_each_word() {
        let mut q = wbq(8, false);
        q.push(0);
        q.push(8);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().words, 1);
    }

    #[test]
    fn overlap_detection() {
        let mut q = wbq(4, true);
        q.push(40); // line 32..64
        assert!(q.overlaps(32));
        assert!(q.overlaps(56));
        assert!(!q.overlaps(64));
    }

    #[test]
    fn duplicate_word_store_stays_one_word() {
        let mut q = wbq(4, true);
        q.push(8);
        q.push(8);
        assert_eq!(q.pop().unwrap().words, 1);
    }
}
