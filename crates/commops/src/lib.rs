//! # memcomm-commops — end-to-end communication operations
//!
//! The compiler's performance-critical operation is the local-to-remote
//! memory copy `xQy`. This crate implements its two families on the
//! simulated machines and measures them end to end:
//!
//! * **buffer packing** ([`Style::BufferPacking`]): gather into a contiguous
//!   buffer, move the block over the data-only network, scatter at the
//!   destination — chunked and pipelined, the processor time-sharing its
//!   roles exactly as the model's sequential-composition rule describes;
//! * **chained** ([`Style::Chained`]): gather, transfer and scatter in one
//!   step; non-contiguous patterns send address-data pairs so the receiving
//!   engine (the T3D annex, or the Paragon's co-processor) can store each
//!   word directly at its home.
//!
//! Measurements are **symmetric exchanges**: both nodes send and receive
//! simultaneously (the situation of a transpose or AAPC step, and the reason
//! the model's resource constraint `2 × |xQy| < |0Cx|` exists). Every
//! simulated transfer moves real data and is verified.
//!
//! [`library`] adds the message-library layer (PVM-style buffered messaging
//! vs a low-level put interface) used by Figure 1 and the Table 6 PVM rows.
//!
//! ```rust
//! use memcomm_commops::{run_exchange, ExchangeConfig, Style};
//! use memcomm_machines::Machine;
//! use memcomm_model::AccessPattern;
//!
//! # fn main() -> Result<(), memcomm_memsim::SimError> {
//! let t3d = Machine::t3d();
//! let cfg = ExchangeConfig { words: 2048, ..ExchangeConfig::default() };
//! let bp = run_exchange(&t3d, AccessPattern::Contiguous, AccessPattern::Strided(64),
//!                       Style::BufferPacking, &cfg)?;
//! let ch = run_exchange(&t3d, AccessPattern::Contiguous, AccessPattern::Strided(64),
//!                       Style::Chained, &cfg)?;
//! assert!(bp.verified && ch.verified);
//! // Chaining beats buffer packing for strided destinations.
//! assert!(ch.per_node(t3d.clock()) > bp.per_node(t3d.clock()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datatype;
pub mod exchange;
pub mod get;
pub mod layout;
pub mod library;
pub mod protocol;
pub mod roles;

pub use datatype::{run_datatype_exchange, Datatype, DatatypeMethod};
pub use exchange::{
    run_exchange, run_exchange_specs, ExchangeConfig, ExchangeResult, PhaseTimeline, Style,
};
pub use get::run_get_exchange;
pub use layout::WalkSpec;
pub use library::{measure_message, LibraryProfile};
pub use protocol::{blend_rates, run_resilient_transfer, ProtocolConfig, TransferReport};
