//! Per-node memory layout of an exchange and its verification.

use memcomm_machines::microbench::permutation_index;
use memcomm_memsim::walk::Walk;
use memcomm_memsim::{Node, SimError, SimResult};
use memcomm_model::{classify_offsets, AccessPattern};

/// How one side of an exchange walks memory: either a pattern (indexed
/// patterns get a seeded random permutation) or an explicit word-offset
/// list (e.g. derived from an MPI-style datatype).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkSpec {
    /// A plain access pattern.
    Pattern(AccessPattern),
    /// Explicit word offsets, in element order.
    Offsets(Vec<u32>),
}

impl WalkSpec {
    /// The access pattern this spec exhibits (explicit offsets are
    /// classified; a constant-stride offset list is exactly a strided
    /// pattern, so the classification is lossless for simulation).
    pub fn pattern(&self) -> AccessPattern {
        match self {
            WalkSpec::Pattern(p) => *p,
            WalkSpec::Offsets(offsets) => {
                let as64: Vec<u64> = offsets.iter().map(|&o| u64::from(o)).collect();
                classify_offsets(&as64)
            }
        }
    }

    /// Number of elements, if the spec pins it (offset lists do).
    pub fn len(&self) -> Option<u64> {
        match self {
            WalkSpec::Pattern(_) => None,
            WalkSpec::Offsets(o) => Some(o.len() as u64),
        }
    }

    /// Whether the spec pins the transfer to zero elements (an empty offset
    /// list; pattern specs leave the length to the configuration).
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    fn build_walk(&self, node: &mut Node, words: u64, seed: u64) -> SimResult<Walk> {
        match self {
            WalkSpec::Pattern(p) => {
                let index = (*p == AccessPattern::Indexed).then(|| permutation_index(words, seed));
                node.alloc_walk(*p, words, index)
            }
            WalkSpec::Offsets(offsets) => {
                if offsets.len() as u64 != words {
                    return Err(SimError::InvalidWalk {
                        detail: format!(
                            "offset list of {} entries for a transfer of {words} words",
                            offsets.len()
                        ),
                    });
                }
                match self.pattern() {
                    AccessPattern::Indexed => {
                        // Region spans the largest offset; the walk follows
                        // the explicit list.
                        let span = u64::from(*offsets.iter().max().expect("non-empty")) + 1;
                        let region = node.mem.alloc(span)?;
                        let index_region = node.mem.alloc((words).div_ceil(2))?;
                        Ok(
                            Walk::new(
                                AccessPattern::Indexed,
                                region,
                                words,
                                Some(offsets.clone()),
                            )?
                            .with_index_region(index_region),
                        )
                    }
                    pattern => {
                        // Contiguous or constant stride: the pattern walk
                        // reproduces the offsets exactly (starting at the
                        // region base plus the first offset — element 0's
                        // placement within the type does not affect timing).
                        let index = None;
                        node.alloc_walk(pattern, words, index)
                    }
                }
            }
        }
    }
}

/// The four arrays an exchange touches on every node: the source operand,
/// the destination operand, and the contiguous pack/unpack buffers used by
/// buffer-packing transfers.
///
/// Both nodes allocate in the same order, so a walk's addresses are valid
/// on either node — which is how a sending node computes remote store
/// addresses for chained transfers (the "compiler generates the addresses
/// on the sender" case of Section 2.1).
#[derive(Debug, Clone)]
pub struct ExchangeLayout {
    /// Source operand, pattern `x`.
    pub src: Walk,
    /// Destination operand, pattern `y`.
    pub dst: Walk,
    /// Contiguous send buffer.
    pub send_buf: Walk,
    /// Contiguous receive buffer.
    pub recv_buf: Walk,
}

impl ExchangeLayout {
    /// Allocates the layout on a node and fills the source with values that
    /// encode `(node_id, element)` for end-to-end verification.
    ///
    /// # Errors
    ///
    /// Propagates allocation and walk-validation failures.
    pub fn new(
        node: &mut Node,
        x: AccessPattern,
        y: AccessPattern,
        words: u64,
        seed: u64,
        node_id: u64,
    ) -> SimResult<Self> {
        Self::with_specs(
            node,
            &WalkSpec::Pattern(x),
            &WalkSpec::Pattern(y),
            words,
            seed,
            node_id,
        )
    }

    /// Like [`new`](Self::new), but with explicit walk specifications
    /// (offset lists from datatypes, or plain patterns).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidWalk`] if an offset list's length differs
    /// from `words`, and propagates allocation failures.
    pub fn with_specs(
        node: &mut Node,
        x: &WalkSpec,
        y: &WalkSpec,
        words: u64,
        seed: u64,
        node_id: u64,
    ) -> SimResult<Self> {
        let src = x.build_walk(node, words, seed)?;
        let dst = y.build_walk(node, words, seed ^ 0xABCD)?;
        let send_buf = node.alloc_walk(AccessPattern::Contiguous, words, None)?;
        let recv_buf = node.alloc_walk(AccessPattern::Contiguous, words, None)?;
        for i in 0..words {
            node.mem.write(src.addr(i), Self::value(node_id, i));
        }
        Ok(ExchangeLayout {
            src,
            dst,
            send_buf,
            recv_buf,
        })
    }

    /// A view of the layout truncated to `send_words` on the outgoing side
    /// and `recv_words` on the incoming side (half-duplex runs set one of
    /// them to zero).
    pub fn slice_for(&self, send_words: u64, recv_words: u64) -> ExchangeLayout {
        ExchangeLayout {
            src: self.src.slice(0, send_words),
            send_buf: self.send_buf.slice(0, send_words),
            recv_buf: self.recv_buf.slice(0, recv_words),
            dst: self.dst.slice(0, recv_words),
        }
    }

    /// The verification value for element `i` originating at `node_id`.
    pub fn value(node_id: u64, i: u64) -> u64 {
        (node_id << 48) | i
    }

    /// Checks that this node's destination holds the peer's source values
    /// in element order (element `i` of the peer's source landed at element
    /// `i` of our destination).
    pub fn verify_received(&self, node: &Node, peer_id: u64) -> bool {
        (0..self.dst.len()).all(|i| node.mem.read(self.dst.addr(i)) == Self::value(peer_id, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memcomm_memsim::NodeParams;

    #[test]
    fn layouts_are_identical_across_nodes() {
        let mut a = Node::new(NodeParams::default());
        let mut b = Node::new(NodeParams::default());
        let la = ExchangeLayout::new(
            &mut a,
            AccessPattern::Indexed,
            AccessPattern::Strided(4),
            64,
            7,
            0,
        )
        .unwrap();
        let lb = ExchangeLayout::new(
            &mut b,
            AccessPattern::Indexed,
            AccessPattern::Strided(4),
            64,
            7,
            1,
        )
        .unwrap();
        for i in 0..64 {
            assert_eq!(la.src.addr(i), lb.src.addr(i));
            assert_eq!(la.dst.addr(i), lb.dst.addr(i));
        }
    }

    #[test]
    fn verify_detects_missing_data() {
        let mut a = Node::new(NodeParams::default());
        let layout = ExchangeLayout::new(
            &mut a,
            AccessPattern::Contiguous,
            AccessPattern::Contiguous,
            8,
            1,
            0,
        )
        .unwrap();
        assert!(!layout.verify_received(&a, 1), "nothing received yet");
        for i in 0..8 {
            let v = ExchangeLayout::value(1, i);
            a.mem.write(layout.dst.addr(i), v);
        }
        assert!(layout.verify_received(&a, 1));
    }
}
