//! Resumable per-node roles of an exchange.
//!
//! A [`PipelinedCpu`] is one processor time-sharing up to three chunked
//! roles — gather, send, scatter — which is precisely the situation the
//! copy-transfer model composes with `∘`: stages on one resource add their
//! per-word times. A [`DmaChunkQueue`] streams gathered chunks through the
//! DMA engine (the Paragon's `1F0` send path).

use memcomm_memsim::clock::Cycle;
use memcomm_memsim::engines::{Cpu, CpuSender, Dma, DmaParams, LocalCopier, Step};
use memcomm_memsim::error::SimResult;
use memcomm_memsim::mem::Memory;
use memcomm_memsim::nic::TimedFifo;
use memcomm_memsim::path::MemPath;
use memcomm_memsim::walk::Walk;

use crate::layout::ExchangeLayout;

/// Which chunked roles a [`PipelinedCpu`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuDuties {
    /// Pack outgoing chunks from `src` into the send buffer.
    pub gather: bool,
    /// Feed gathered chunks to the NIC port (processor send).
    pub send: bool,
    /// Unpack received chunks from the receive buffer into `dst`.
    pub scatter: bool,
}

/// A processor executing chunked exchange roles.
///
/// Scatter has priority (drain the network first), a blocked send falls
/// back to gathering, and the whole pipeline reports
/// [`Step::Blocked`] only when it is genuinely waiting for incoming data.
#[derive(Debug)]
pub struct PipelinedCpu {
    duties: CpuDuties,
    layout: ExchangeLayout,
    chunk_words: u64,
    send_chunks: u64,
    recv_chunks: u64,
    gather_op: Option<LocalCopier>,
    send_op: Option<CpuSender>,
    scatter_op: Option<LocalCopier>,
    gathered: u64,
    sent: u64,
    scattered: u64,
    /// Completion cycle of each gathered chunk (read by the DMA queue).
    pub gather_done: Vec<Cycle>,
    /// Cycle the last chunk finished gathering (`None` until then, or when
    /// the pipeline had no gather duty). Feeds the phase timeline.
    pub gather_end: Option<Cycle>,
    /// Cycle the last chunk finished its processor send.
    pub send_end: Option<Cycle>,
    /// Cycle the last chunk finished scattering.
    pub scatter_end: Option<Cycle>,
}

impl PipelinedCpu {
    /// Creates the role set over a node's layout.
    ///
    /// # Panics
    ///
    /// Panics for a zero chunk size.
    pub fn new(duties: CpuDuties, layout: ExchangeLayout, chunk_words: u64) -> Self {
        assert!(chunk_words >= 1, "chunks must hold at least one word");
        let send_words = layout.src.len();
        let recv_words = layout.dst.len();
        let send_chunks = send_words.div_ceil(chunk_words);
        // Without a gather duty the outgoing data is pre-packed (or the
        // gather was elided because the source is contiguous): every chunk
        // is ready from cycle 0.
        let (gathered, gather_done) = if duties.gather {
            (0, Vec::new())
        } else {
            (send_chunks, vec![0; send_chunks as usize])
        };
        PipelinedCpu {
            duties,
            layout,
            chunk_words,
            send_chunks,
            recv_chunks: recv_words.div_ceil(chunk_words),
            gather_op: None,
            send_op: None,
            scatter_op: None,
            gathered,
            sent: 0,
            scattered: 0,
            gather_done,
            gather_end: None,
            send_end: None,
            scatter_end: None,
        }
    }

    /// Number of outgoing chunks.
    pub fn chunks(&self) -> u64 {
        self.send_chunks
    }

    /// Chunks gathered so far.
    pub fn gathered(&self) -> u64 {
        self.gathered
    }

    fn chunk_range(&self, k: u64, total_words: u64) -> (u64, u64) {
        let start = k * self.chunk_words;
        let len = self.chunk_words.min(total_words - start);
        (start, len)
    }

    fn is_done(&self) -> bool {
        (!self.duties.gather || self.gathered == self.send_chunks)
            && (!self.duties.send || self.sent == self.send_chunks)
            && (!self.duties.scatter || self.scattered == self.recv_chunks)
    }

    /// Advances by one unit of work. `chunk_ready[k]` is the cycle at which
    /// incoming chunk `k` finished arriving in the receive buffer.
    ///
    /// # Errors
    ///
    /// Propagates engine protocol errors from the underlying copy and send
    /// operations.
    pub fn step(
        &mut self,
        cpu: &mut Cpu,
        path: &mut MemPath,
        mem: &mut Memory,
        tx: &mut TimedFifo,
        chunk_ready: &[Cycle],
    ) -> SimResult<Step> {
        if self.is_done() {
            return Ok(Step::Done);
        }
        // Scatter first: drain the incoming pipeline.
        if self.duties.scatter {
            if self.scatter_op.is_none()
                && self.scattered < self.recv_chunks
                && (self.scattered as usize) < chunk_ready.len()
            {
                let (start, len) = self.chunk_range(self.scattered, self.layout.dst.len());
                cpu.t = cpu.t.max(chunk_ready[self.scattered as usize]);
                self.scatter_op = Some(LocalCopier::new(
                    self.layout.recv_buf.slice(start, len),
                    self.layout.dst.slice(start, len),
                ));
            }
            if let Some(op) = &mut self.scatter_op {
                match op.step(cpu, path, mem)? {
                    Step::Done => {
                        self.scatter_op = None;
                        self.scattered += 1;
                        if self.scattered == self.recv_chunks {
                            self.scatter_end = Some(cpu.t);
                        }
                    }
                    Step::Progressed => {}
                    Step::Blocked => unreachable!("local copies never block"),
                }
                return Ok(Step::Progressed);
            }
        }
        // Send gathered chunks; a blocked port falls through to gathering.
        if self.duties.send {
            if self.send_op.is_none() && self.sent < self.gathered.min(self.send_chunks) {
                let (start, len) = self.chunk_range(self.sent, self.layout.src.len());
                self.send_op = Some(CpuSender::new(self.layout.send_buf.slice(start, len), None));
            }
            if let Some(op) = &mut self.send_op {
                match op.step(cpu, path, mem, tx)? {
                    Step::Done => {
                        self.send_op = None;
                        self.sent += 1;
                        if self.sent == self.send_chunks {
                            self.send_end = Some(cpu.t);
                        }
                        return Ok(Step::Progressed);
                    }
                    Step::Progressed => return Ok(Step::Progressed),
                    Step::Blocked => {}
                }
            }
        }
        // Gather the next outgoing chunk.
        if self.duties.gather {
            if self.gather_op.is_none() && self.gathered < self.send_chunks {
                let (start, len) = self.chunk_range(self.gathered, self.layout.src.len());
                self.gather_op = Some(LocalCopier::new(
                    self.layout.src.slice(start, len),
                    self.layout.send_buf.slice(start, len),
                ));
            }
            if let Some(op) = &mut self.gather_op {
                match op.step(cpu, path, mem)? {
                    Step::Done => {
                        self.gather_op = None;
                        self.gathered += 1;
                        self.gather_done.push(cpu.t);
                        if self.gathered == self.send_chunks {
                            self.gather_end = Some(cpu.t);
                        }
                    }
                    Step::Progressed => {}
                    Step::Blocked => unreachable!("local copies never block"),
                }
                return Ok(Step::Progressed);
            }
        }
        Ok(if self.is_done() {
            Step::Done
        } else {
            Step::Blocked
        })
    }
}

/// A queue of chunk DMA transfers: as the processor finishes gathering a
/// chunk, the DMA engine is programmed to stream it to the NIC.
#[derive(Debug)]
pub struct DmaChunkQueue {
    params: DmaParams,
    send_buf: Walk,
    chunk_words: u64,
    chunks: u64,
    current: Option<Dma>,
    sent: u64,
    /// The engine's local clock (carried across chunk transfers).
    pub t: Cycle,
}

impl DmaChunkQueue {
    /// Creates the queue over the node's send buffer.
    ///
    /// # Panics
    ///
    /// Panics for a zero chunk size.
    pub fn new(params: DmaParams, send_buf: Walk, chunk_words: u64) -> Self {
        assert!(chunk_words >= 1);
        let words = send_buf.len();
        DmaChunkQueue {
            params,
            send_buf,
            chunk_words,
            chunks: words.div_ceil(chunk_words),
            current: None,
            sent: 0,
            t: 0,
        }
    }

    /// Chunks fully sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Advances by one unit of DMA work. `gathered` and `gather_done` come
    /// from the gathering processor.
    pub fn step(
        &mut self,
        path: &mut MemPath,
        mem: &Memory,
        tx: &mut TimedFifo,
        gathered: u64,
        gather_done: &[Cycle],
    ) -> Step {
        if self.current.is_none() {
            if self.sent == self.chunks {
                return Step::Done;
            }
            if self.sent >= gathered {
                return Step::Blocked;
            }
            let start = self.sent * self.chunk_words;
            let len = self.chunk_words.min(self.send_buf.len() - start);
            let mut dma = Dma::new(self.params, self.send_buf.slice(start, len));
            dma.t = self.t.max(gather_done[self.sent as usize]);
            self.current = Some(dma);
        }
        let dma = self.current.as_mut().expect("set above");
        let outcome = dma.step(path, mem, tx);
        self.t = dma.t;
        match outcome {
            Step::Done => {
                self.current = None;
                self.sent += 1;
                Step::Progressed
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ExchangeLayout;
    use memcomm_memsim::{Node, NodeParams};
    use memcomm_model::AccessPattern;

    #[test]
    fn gather_only_cpu_packs_everything() {
        let mut node = Node::new(NodeParams::default());
        let layout = ExchangeLayout::new(
            &mut node,
            AccessPattern::Strided(4),
            AccessPattern::Contiguous,
            64,
            3,
            0,
        )
        .unwrap();
        let mut cpu = node.cpu();
        let mut pipe = PipelinedCpu::new(
            CpuDuties {
                gather: true,
                send: false,
                scatter: false,
            },
            layout.clone(),
            16,
        );
        loop {
            match pipe
                .step(&mut cpu, &mut node.path, &mut node.mem, &mut node.tx, &[])
                .unwrap()
            {
                Step::Done => break,
                Step::Blocked => panic!("gather-only pipeline cannot block"),
                Step::Progressed => {}
            }
        }
        assert_eq!(pipe.gathered(), 4);
        assert_eq!(pipe.gather_done.len(), 4);
        for i in 0..64 {
            assert_eq!(
                node.mem.read(layout.send_buf.addr(i)),
                ExchangeLayout::value(0, i)
            );
        }
    }

    #[test]
    fn scatter_waits_for_chunk_readiness() {
        let mut node = Node::new(NodeParams::default());
        let layout = ExchangeLayout::new(
            &mut node,
            AccessPattern::Contiguous,
            AccessPattern::Contiguous,
            32,
            3,
            0,
        )
        .unwrap();
        // Pretend a peer deposited the first chunk only.
        for i in 0..16 {
            let v = ExchangeLayout::value(9, i);
            node.mem.write(layout.recv_buf.addr(i), v);
        }
        let mut cpu = node.cpu();
        let mut pipe = PipelinedCpu::new(
            CpuDuties {
                gather: false,
                send: false,
                scatter: true,
            },
            layout.clone(),
            16,
        );
        let ready = vec![1000u64];
        loop {
            match pipe
                .step(
                    &mut cpu,
                    &mut node.path,
                    &mut node.mem,
                    &mut node.tx,
                    &ready,
                )
                .unwrap()
            {
                Step::Blocked => break, // second chunk never arrives
                Step::Progressed => {}
                Step::Done => panic!("cannot finish with one chunk missing"),
            }
        }
        assert_eq!(
            cpu.t.max(1000),
            cpu.t,
            "scatter started no earlier than readiness"
        );
        assert_eq!(
            node.mem.read(layout.dst.addr(0)),
            ExchangeLayout::value(9, 0)
        );
        assert_eq!(
            node.mem.read(layout.dst.addr(15)),
            ExchangeLayout::value(9, 15)
        );
    }

    #[test]
    fn dma_queue_follows_gathering() {
        let mut node = Node::new(NodeParams::default());
        let layout = ExchangeLayout::new(
            &mut node,
            AccessPattern::Contiguous,
            AccessPattern::Contiguous,
            64,
            3,
            0,
        )
        .unwrap();
        let mut queue = DmaChunkQueue::new(node.params().dma, layout.send_buf.clone(), 32);
        // Nothing gathered: blocked.
        assert_eq!(
            queue.step(&mut node.path, &node.mem, &mut node.tx, 0, &[]),
            Step::Blocked
        );
        // One chunk gathered at cycle 500: the DMA starts no earlier.
        let done = [500u64];
        loop {
            match queue.step(&mut node.path, &node.mem, &mut node.tx, 1, &done) {
                Step::Blocked => break,
                Step::Progressed => {}
                Step::Done => break,
            }
        }
        assert_eq!(queue.sent(), 1);
        assert!(queue.t >= 500);
        assert_eq!(node.tx.total_pushed(), 32);
    }
}
