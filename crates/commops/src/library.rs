//! Message-library layer: PVM-style buffered messaging vs low-level puts.
//!
//! Figure 1 of the paper compares "a portable, general library (PVM)"
//! against "vendor specific or third party libraries that offer best
//! throughput". The mechanisms that separate them are per-message constant
//! software overhead and forced system buffering (extra local copies on
//! both sides); both are implemented here on the simulated machines, not
//! assumed.

use memcomm_machines::Machine;
use memcomm_memsim::clock::Cycle;
use memcomm_memsim::engines::{CpuSender, DepositEngine, DepositMode, LocalCopier, Step};
use memcomm_memsim::node::Watchdog;
use memcomm_memsim::{Node, SimError, SimResult};
use memcomm_model::{AccessPattern, Throughput};
use memcomm_netsim::Link;

/// A message-passing library's cost profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LibraryProfile {
    /// Library name.
    pub name: &'static str,
    /// Constant software cost per message on each side (argument checking,
    /// buffer management, protocol).
    pub per_message_cycles: Cycle,
    /// Whether the library forces store-and-forward copies through system
    /// buffers on both sides (PVM semantics).
    pub system_buffering: bool,
}

impl LibraryProfile {
    /// A PVM-like portable library: tens of microseconds of per-message
    /// overhead and mandatory system buffering on both ends.
    pub fn pvm(machine: &Machine) -> Self {
        LibraryProfile {
            name: "PVM",
            per_message_cycles: (40.0e-6 * machine.clock().hz()) as Cycle,
            system_buffering: true,
        }
    }

    /// The fastest vendor path (`libsma` on the T3D, SUNMOS `libnx` on the
    /// Paragon): a put with microseconds of overhead and no extra copies.
    pub fn low_level(machine: &Machine) -> Self {
        LibraryProfile {
            name: "low-level",
            per_message_cycles: (2.0e-6 * machine.clock().hz()) as Cycle,
            system_buffering: false,
        }
    }
}

/// Sends one contiguous message of `words` 64-bit words from node A to
/// node B through the library and returns the end-to-end throughput
/// (message bytes over total one-way time) — one point of Figure 1.
///
/// # Errors
///
/// Returns [`SimError::InvalidWalk`] for an empty message,
/// [`SimError::Deadlock`] if the co-simulation wedges, and
/// [`SimError::Protocol`] if the delivered message differs from the source.
pub fn measure_message(
    machine: &Machine,
    profile: LibraryProfile,
    words: u64,
) -> SimResult<Throughput> {
    if words == 0 {
        return Err(SimError::InvalidWalk {
            detail: "empty messages have no throughput".to_string(),
        });
    }
    let mut a = Node::new(machine.node);
    let mut b = Node::new(machine.node);
    let src = a.alloc_walk(AccessPattern::Contiguous, words, None)?;
    let sys_a = a.alloc_walk(AccessPattern::Contiguous, words, None)?;
    // Keep layouts identical.
    let dst = b.alloc_walk(AccessPattern::Contiguous, words, None)?;
    let sys_b = b.alloc_walk(AccessPattern::Contiguous, words, None)?;
    a.mem.fill(src.region(), (0..words).map(|i| i ^ 0xFEED));

    let mut cpu_a = a.cpu();
    cpu_a.t += profile.per_message_cycles;
    let send_walk = if profile.system_buffering {
        LocalCopier::new(src.clone(), sys_a.clone()).run(&mut cpu_a, &mut a.path, &mut a.mem)?;
        sys_a
    } else {
        src.clone()
    };
    let recv_walk = if profile.system_buffering {
        sys_b.clone()
    } else {
        dst.clone()
    };

    // Figure 1 measures a single communicating pair: congestion 1.
    let mut link = Link::new(machine.link(1.0));
    let mut sender = CpuSender::new(send_walk, None);
    let mut deposit = DepositEngine::new(
        machine.node.deposit,
        DepositMode::Stream(recv_walk.clone()),
        words,
    );
    let mut sender_done = false;
    let mut deposit_done = false;
    let mut watchdog = Watchdog::new(64 * words + 100_000);
    while !(sender_done && deposit_done) {
        watchdog.tick("message driver", cpu_a.t.max(deposit.t))?;
        let mut order = vec![(link.time(), 2usize)];
        if !sender_done {
            order.push((cpu_a.t, 0));
        }
        if !deposit_done {
            order.push((deposit.t, 1));
        }
        order.sort_unstable();
        let mut progressed = false;
        for &(_, id) in &order {
            let s = match id {
                0 => {
                    let s = sender.step(&mut cpu_a, &mut a.path, &a.mem, &mut a.tx)?;
                    sender_done |= s == Step::Done;
                    s
                }
                1 => {
                    let s = deposit.step(&mut b.path, &mut b.mem, &mut b.rx)?;
                    deposit_done |= s == Step::Done;
                    s
                }
                2 => link.step(&mut a.tx, &mut b.rx),
                _ => unreachable!(),
            };
            if matches!(s, Step::Progressed | Step::Done) {
                progressed = true;
                break;
            }
        }
        if !(progressed || (sender_done && deposit_done)) {
            return Err(SimError::Deadlock {
                detail: "message transfer wedged".to_string(),
                at: cpu_a.t.max(deposit.t),
            });
        }
    }

    let mut end = deposit.t.max(cpu_a.t).max(link.time());
    if profile.system_buffering {
        let mut cpu_b = b.cpu();
        cpu_b.t = end + profile.per_message_cycles;
        LocalCopier::new(sys_b, dst.clone()).run(&mut cpu_b, &mut b.path, &mut b.mem)?;
        end = cpu_b.t;
    }
    for i in 0..words {
        if b.mem.read(dst.addr(i)) != a.mem.read(src.addr(i)) {
            return Err(SimError::Protocol {
                detail: format!("message corrupted at element {i}"),
                at: end,
            });
        }
    }
    Ok(machine.clock().throughput(words * 8, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_level_beats_pvm_at_every_size() {
        let m = Machine::t3d();
        for words in [64u64, 1024, 16384] {
            let pvm = measure_message(&m, LibraryProfile::pvm(&m), words).unwrap();
            let low = measure_message(&m, LibraryProfile::low_level(&m), words).unwrap();
            assert!(
                low > pvm,
                "{words} words: low-level {low} must beat PVM {pvm}"
            );
        }
    }

    #[test]
    fn pvm_gap_narrows_with_message_size() {
        let m = Machine::paragon();
        let ratio = |words| {
            let pvm = measure_message(&m, LibraryProfile::pvm(&m), words)
                .unwrap()
                .as_mbps();
            let low = measure_message(&m, LibraryProfile::low_level(&m), words)
                .unwrap()
                .as_mbps();
            low / pvm
        };
        assert!(
            ratio(128) > ratio(16384),
            "per-message overhead dominates small sizes"
        );
    }

    #[test]
    fn throughput_grows_with_size_then_saturates() {
        let m = Machine::t3d();
        let profile = LibraryProfile::low_level(&m);
        let small = measure_message(&m, profile, 16).unwrap().as_mbps();
        let mid = measure_message(&m, profile, 4096).unwrap().as_mbps();
        let large = measure_message(&m, profile, 32768).unwrap().as_mbps();
        assert!(mid > 2.0 * small);
        assert!(large >= mid * 0.9, "saturation, not collapse");
        // Asymptote is bounded by the wire at congestion 1.
        assert!(large < 170.0);
    }
}
