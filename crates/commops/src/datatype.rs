//! MPI-style derived datatypes.
//!
//! The copy-transfer model is, in hindsight, the performance theory behind
//! MPI's derived datatypes: a datatype describes a non-contiguous layout,
//! and an implementation can either `MPI_Pack` it into a contiguous buffer
//! and send (the paper's *buffer packing*) or hand the layout to
//! communication hardware that gathers/scatters directly (the paper's
//! *chained* transfers). This module provides the three classic type
//! constructors in 64-bit-word units and the bridge from a datatype to a
//! simulated transfer, so the pack-vs-direct question can be answered on
//! the simulated machines.

use memcomm_machines::Machine;
use memcomm_memsim::{SimError, SimResult};
use memcomm_model::{classify_offsets, AccessPattern};

use crate::exchange::{run_exchange_specs, ExchangeConfig, ExchangeResult, Style};
use crate::layout::WalkSpec;

/// An MPI-style derived datatype over 64-bit words.
///
/// # Examples
///
/// A column of an `n × n` row-major matrix is the classic
/// `MPI_Type_vector(n, 1, n)`:
///
/// ```rust
/// use memcomm_commops::datatype::Datatype;
/// use memcomm_model::AccessPattern;
///
/// let column = Datatype::vector(1024, 1, 1024);
/// assert_eq!(column.total_words(), 1024);
/// assert_eq!(column.access_pattern(), AccessPattern::Strided(1024));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datatype {
    /// `count` consecutive words (`MPI_Type_contiguous`).
    Contiguous {
        /// Number of words.
        count: u64,
    },
    /// `count` blocks of `blocklen` words whose starts are `stride` words
    /// apart (`MPI_Type_vector`).
    Vector {
        /// Number of blocks.
        count: u64,
        /// Words per block.
        blocklen: u64,
        /// Words between block starts.
        stride: u64,
    },
    /// Blocks at arbitrary word displacements (`MPI_Type_indexed`).
    Indexed {
        /// Starting displacement of each block.
        displacements: Vec<u64>,
        /// Length of each block in words.
        blocklens: Vec<u64>,
    },
}

impl Datatype {
    /// A contiguous type of `count` words.
    ///
    /// # Panics
    ///
    /// Panics for an empty type.
    pub fn contiguous(count: u64) -> Self {
        assert!(count >= 1, "datatypes describe at least one word");
        Datatype::Contiguous { count }
    }

    /// A vector type: `count` blocks of `blocklen` words, `stride` words
    /// apart.
    ///
    /// # Panics
    ///
    /// Panics for empty blocks or a stride smaller than the block length
    /// (which would make blocks overlap).
    pub fn vector(count: u64, blocklen: u64, stride: u64) -> Self {
        assert!(
            count >= 1 && blocklen >= 1,
            "vector blocks must be non-empty"
        );
        assert!(
            stride >= blocklen,
            "stride {stride} would overlap blocks of {blocklen}"
        );
        Datatype::Vector {
            count,
            blocklen,
            stride,
        }
    }

    /// An indexed type from `(displacement, blocklen)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched block lists, or overlapping blocks.
    pub fn indexed(displacements: Vec<u64>, blocklens: Vec<u64>) -> Self {
        assert!(!displacements.is_empty(), "indexed type needs blocks");
        assert_eq!(
            displacements.len(),
            blocklens.len(),
            "one blocklen per displacement"
        );
        assert!(
            blocklens.iter().all(|&b| b >= 1),
            "blocks must be non-empty"
        );
        let mut spans: Vec<(u64, u64)> = displacements
            .iter()
            .zip(&blocklens)
            .map(|(&d, &b)| (d, d + b))
            .collect();
        spans.sort_unstable();
        assert!(
            spans.windows(2).all(|w| w[0].1 <= w[1].0),
            "indexed blocks must not overlap"
        );
        Datatype::Indexed {
            displacements,
            blocklens,
        }
    }

    /// Total payload words the type describes (`MPI_Type_size`).
    pub fn total_words(&self) -> u64 {
        match self {
            Datatype::Contiguous { count } => *count,
            Datatype::Vector {
                count, blocklen, ..
            } => count * blocklen,
            Datatype::Indexed { blocklens, .. } => blocklens.iter().sum(),
        }
    }

    /// Span from the first to one past the last word touched
    /// (`MPI_Type_extent`, in words).
    pub fn extent_words(&self) -> u64 {
        match self {
            Datatype::Contiguous { count } => *count,
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => (count - 1) * stride + blocklen,
            Datatype::Indexed {
                displacements,
                blocklens,
            } => displacements
                .iter()
                .zip(blocklens)
                .map(|(&d, &b)| d + b)
                .max()
                .expect("validated non-empty"),
        }
    }

    /// The word offsets the type touches, in type order — the datatype's
    /// "type map".
    pub fn offsets(&self) -> Vec<u64> {
        match self {
            Datatype::Contiguous { count } => (0..*count).collect(),
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => (0..*count)
                .flat_map(|b| (0..*blocklen).map(move |k| b * stride + k))
                .collect(),
            Datatype::Indexed {
                displacements,
                blocklens,
            } => displacements
                .iter()
                .zip(blocklens)
                .flat_map(|(&d, &b)| (0..b).map(move |k| d + k))
                .collect(),
        }
    }

    /// The access pattern the type exhibits — what the copy-transfer model
    /// needs to know about it.
    pub fn access_pattern(&self) -> AccessPattern {
        classify_offsets(&self.offsets())
    }

    /// The walk specification for driving a simulated transfer with this
    /// type.
    pub fn walk_spec(&self) -> WalkSpec {
        match self.access_pattern() {
            AccessPattern::Indexed => WalkSpec::Offsets(
                self.offsets()
                    .into_iter()
                    .map(|o| u32::try_from(o).expect("datatype extents fit node memory"))
                    .collect(),
            ),
            pattern => WalkSpec::Pattern(pattern),
        }
    }
}

/// How a datatype transfer is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatatypeMethod {
    /// `MPI_Pack` → send contiguous → `MPI_Unpack`: the paper's buffer
    /// packing.
    Pack,
    /// Hand the layout to the communication system (deposit engine /
    /// co-processor): the paper's chained transfer.
    Direct,
}

/// Exchanges one `send_type`-described region per node into the peer's
/// `recv_type`-described region, on the simulated machine, and returns the
/// per-node measurement. The two types must describe the same number of
/// words (as MPI requires matching type signatures).
///
/// # Errors
///
/// Returns [`SimError::InvalidWalk`] if the type sizes disagree, and
/// propagates co-simulation errors from
/// [`run_exchange_specs`].
pub fn run_datatype_exchange(
    machine: &Machine,
    send_type: &Datatype,
    recv_type: &Datatype,
    method: DatatypeMethod,
    cfg: &ExchangeConfig,
) -> SimResult<ExchangeResult> {
    if send_type.total_words() != recv_type.total_words() {
        return Err(SimError::InvalidWalk {
            detail: format!(
                "type signatures must match: send {} words, receive {}",
                send_type.total_words(),
                recv_type.total_words()
            ),
        });
    }
    let style = match method {
        DatatypeMethod::Pack => Style::BufferPacking,
        DatatypeMethod::Direct => Style::Chained,
    };
    let cfg = ExchangeConfig {
        words: send_type.total_words(),
        ..*cfg
    };
    run_exchange_specs(
        machine,
        &send_type.walk_spec(),
        &recv_type.walk_spec(),
        style,
        &cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_map_and_sizes() {
        let t = Datatype::vector(3, 2, 5);
        assert_eq!(t.total_words(), 6);
        assert_eq!(t.extent_words(), 12);
        assert_eq!(t.offsets(), vec![0, 1, 5, 6, 10, 11]);
        assert_eq!(t.access_pattern(), AccessPattern::Indexed);
    }

    #[test]
    fn unit_blocklen_vector_is_strided() {
        assert_eq!(
            Datatype::vector(100, 1, 64).access_pattern(),
            AccessPattern::Strided(64)
        );
        assert_eq!(
            Datatype::vector(100, 1, 1).access_pattern(),
            AccessPattern::Contiguous
        );
    }

    #[test]
    fn contiguous_type_is_contiguous() {
        let t = Datatype::contiguous(64);
        assert_eq!(t.access_pattern(), AccessPattern::Contiguous);
        assert_eq!(t.extent_words(), 64);
    }

    #[test]
    fn indexed_type_collects_blocks() {
        let t = Datatype::indexed(vec![10, 0, 30], vec![2, 2, 1]);
        assert_eq!(t.total_words(), 5);
        assert_eq!(t.extent_words(), 31);
        assert_eq!(t.offsets(), vec![10, 11, 0, 1, 30]);
        assert_eq!(t.access_pattern(), AccessPattern::Indexed);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_vector_rejected() {
        let _ = Datatype::vector(4, 3, 2);
    }

    #[test]
    #[should_panic(expected = "not overlap")]
    fn overlapping_indexed_rejected() {
        let _ = Datatype::indexed(vec![0, 1], vec![2, 2]);
    }

    #[test]
    fn direct_send_beats_pack_for_columns() {
        // The MPI question, answered the paper's way: sending a matrix
        // column with a datatype-aware (chained) path vs MPI_Pack.
        let m = Machine::t3d();
        let column = Datatype::vector(1024, 1, 1024);
        let rows = Datatype::contiguous(1024);
        let cfg = ExchangeConfig::default();
        let pack = run_datatype_exchange(&m, &rows, &column, DatatypeMethod::Pack, &cfg).unwrap();
        let direct =
            run_datatype_exchange(&m, &rows, &column, DatatypeMethod::Direct, &cfg).unwrap();
        assert!(pack.verified && direct.verified);
        assert!(
            direct.per_node(m.clock()) > pack.per_node(m.clock()),
            "direct {} vs pack {}",
            direct.per_node(m.clock()),
            pack.per_node(m.clock())
        );
    }

    #[test]
    fn irregular_datatype_round_trips_through_the_simulator() {
        let m = Machine::t3d();
        // A jagged boundary: uneven blocks at uneven displacements.
        let displacements: Vec<u64> = (0..64).map(|i| i * 7 + (i % 3) * 2).collect();
        let blocklens = vec![2u64; 64];
        let t = Datatype::indexed(displacements, blocklens);
        let peer = Datatype::contiguous(t.total_words());
        let cfg = ExchangeConfig::default();
        let r = run_datatype_exchange(&m, &t, &peer, DatatypeMethod::Direct, &cfg).unwrap();
        assert!(
            r.verified,
            "datatype scatter/gather must move the right words"
        );
    }
}
